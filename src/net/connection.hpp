// One accepted TCP connection of the explanation server.
//
// A Connection owns the fd, the incremental frame decoder, the outgoing byte
// buffer, and — the part that makes pipelining safe — an *ordered slot
// pipeline*: every decoded frame allocates one response slot in arrival
// order, slots are fulfilled whenever their answer is ready (synchronously
// for rejections, asynchronously for served explanations), and bytes leave
// the connection strictly head-of-line.  That reproduces the stdin loop's
// "responses are printed in request order" contract over a socket, including
// its barrier semantics: a `stats` or `quit` frame is a barrier slot that
// only resolves once everything before it has been answered and staged.
//
// All methods are event-loop-thread-only; completions from the service's
// dispatcher thread are marshalled onto the loop by the server before they
// touch a Connection.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/chaos.hpp"
#include "serve/ndjson.hpp"

namespace xnfv::net {

/// Outcome of a non-blocking read/write pass.
enum class IoStatus : std::uint8_t {
    ok,           ///< made progress; buffer state updated
    would_block,  ///< kernel buffer empty/full; wait for the next event
    peer_closed,  ///< orderly FIN from the peer
    error,        ///< hard socket error; connection must be dropped
};

class Connection {
public:
    /// One pipeline entry.  `response` slots are fulfilled out of order and
    /// drained in order; `stats` and `quit` are barriers resolved by the
    /// server only when they reach the head of the line.
    struct Slot {
        enum class Kind : std::uint8_t { response, stats, quit };
        Kind kind = Kind::response;
        bool ready = false;
        std::string line;  ///< rendered JSON, no trailing newline
        /// Idempotent request id this slot's response is recorded under in
        /// the dedup window when it completes (0 = no rid on the request).
        std::uint64_t rid = 0;
    };

    /// Verdict of the per-connection retry-dedup window for an arriving rid.
    enum class DedupVerdict : std::uint8_t {
        fresh,     ///< first sighting; slot tagged, request must be computed
        replayed,  ///< already completed; slot fulfilled from the record
        attached,  ///< original still pending; slot fulfilled when it lands
    };

    Connection(std::uint64_t id, int fd, std::size_t max_line_bytes);
    ~Connection();

    Connection(const Connection&) = delete;
    Connection& operator=(const Connection&) = delete;

    [[nodiscard]] std::uint64_t id() const noexcept { return id_; }
    [[nodiscard]] int fd() const noexcept { return fd_; }

    /// Reads until EAGAIN, feeding every chunk through the frame decoder.
    /// Completed frames are appended to `frames`; byte counters and
    /// last_activity are updated.
    IoStatus read_some(std::vector<serve::Frame>& frames);

    /// Appends one ready-to-send line (newline added here) to the output
    /// buffer.  Does not write to the socket — the server flushes.
    void queue_output(const std::string& line);

    /// Writes buffered output until done or EAGAIN.
    IoStatus flush();

    [[nodiscard]] std::size_t output_bytes() const noexcept {
        return outbuf_.size() - out_off_;
    }
    [[nodiscard]] bool output_empty() const noexcept {
        return out_off_ == outbuf_.size();
    }

    /// Allocates the next pipeline slot; returns its sequence number.
    std::uint64_t push_slot(Slot::Kind kind);
    /// Marks slot `seq` ready with its rendered line.  Out-of-window seqs
    /// (already popped — possible only after a forced close) are ignored.
    /// A slot carrying a rid records its line in the dedup window and
    /// fulfills any duplicate slots attached while it was pending.
    void fulfill(std::uint64_t seq, std::string line);

    /// Admits slot `seq` (already pushed) under idempotent id `rid`:
    /// either tags it as the original, replays the recorded response, or
    /// attaches it to the still-pending original.  rid 0 is always fresh.
    DedupVerdict dedup_admit(std::uint64_t rid, std::uint64_t seq);

    [[nodiscard]] bool pipeline_empty() const noexcept { return slots_.empty(); }
    /// Head of the pipeline, or nullptr when empty.
    [[nodiscard]] Slot* front_slot() noexcept {
        return slots_.empty() ? nullptr : &slots_.front();
    }
    void pop_front_slot();

    void close() noexcept;
    [[nodiscard]] bool closed() const noexcept { return fd_ < 0; }

    // --- server-driven state -------------------------------------------
    serve::LineDecoder decoder;
    std::chrono::steady_clock::time_point last_activity{};
    std::uint64_t bytes_in = 0;
    std::uint64_t bytes_out = 0;
    std::uint64_t requests = 0;        ///< frames answered on this connection
    std::uint64_t next_request_id = 1; ///< default `id` counter (stdin parity)
    std::string default_model;         ///< session default set by `use` ("" = service default)
    bool saw_quit = false;             ///< frames after `quit` are ignored
    bool close_after_flush = false;    ///< drop once the outbuf drains
    bool peer_eof = false;             ///< peer half-closed; finish writes, then drop
    bool lingering = false;            ///< drain FIN sent; discard input until peer EOF
    std::uint32_t interest = 0;        ///< epoll mask currently registered

    /// Socket chaos seam: when set, read_some/flush poll the injector with
    /// this connection's own counters (deterministic per-stream schedule).
    NetFaultInjector* chaos = nullptr;
    NetFaultCounters fault_counters;
    /// Retry-dedup window capacity (completed rid records retained); 0
    /// disables the window and every rid is treated as fresh.
    std::size_t dedup_window = 0;

private:
    /// One remembered rid: the recorded response once done, or the list of
    /// duplicate slots waiting for the original while it is pending.
    struct DedupEntry {
        bool done = false;
        std::string line;
        std::vector<std::uint64_t> waiting;
    };

    std::uint64_t id_;
    int fd_;
    std::deque<Slot> slots_;
    std::uint64_t base_seq_ = 0;  ///< seq of slots_.front()
    std::string outbuf_;
    std::size_t out_off_ = 0;
    std::unordered_map<std::uint64_t, DedupEntry> dedup_;
    std::deque<std::uint64_t> dedup_order_;  ///< insertion order for eviction
};

}  // namespace xnfv::net
