#include "net/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace xnfv::net {

bool set_nonblocking(int fd) noexcept {
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags < 0) return false;
    return ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

void set_nodelay(int fd) noexcept {
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

TcpListener::~TcpListener() { close(); }

bool TcpListener::listen(const std::string& host, std::uint16_t port,
                         std::string* error, bool reuseport) {
    const auto fail = [this, error](const std::string& what) {
        if (error) *error = what + ": " + std::strerror(errno);
        close();
        return false;
    };
    close();

    // Try IPv4 first, then an IPv6 literal.
    sockaddr_storage addr{};
    socklen_t addr_len = 0;
    if (auto* v4 = reinterpret_cast<sockaddr_in*>(&addr);
        ::inet_pton(AF_INET, host.c_str(), &v4->sin_addr) == 1) {
        v4->sin_family = AF_INET;
        v4->sin_port = htons(port);
        addr_len = sizeof(sockaddr_in);
    } else if (auto* v6 = reinterpret_cast<sockaddr_in6*>(&addr);
               ::inet_pton(AF_INET6, host.c_str(), &v6->sin6_addr) == 1) {
        v6->sin6_family = AF_INET6;
        v6->sin6_port = htons(port);
        addr_len = sizeof(sockaddr_in6);
    } else {
        if (error) *error = "not a numeric address: '" + host + "'";
        return false;
    }

    fd_ = ::socket(addr.ss_family, SOCK_STREAM, 0);
    if (fd_ < 0) return fail("socket");
    int one = 1;
    ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (reuseport &&
        ::setsockopt(fd_, SOL_SOCKET, SO_REUSEPORT, &one, sizeof(one)) != 0)
        return fail("setsockopt(SO_REUSEPORT)");
    if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), addr_len) != 0)
        return fail("bind");
    // Deep backlog: a 10k-connection storm must not shed SYNs just because
    // the accept loop is a few milliseconds behind.
    if (::listen(fd_, 4096) != 0) return fail("listen");
    if (!set_nonblocking(fd_)) return fail("fcntl");

    // Recover the actual port for the port==0 (ephemeral) case.
    sockaddr_storage bound{};
    socklen_t bound_len = sizeof(bound);
    if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &bound_len) == 0) {
        port_ = bound.ss_family == AF_INET6
                    ? ntohs(reinterpret_cast<sockaddr_in6*>(&bound)->sin6_port)
                    : ntohs(reinterpret_cast<sockaddr_in*>(&bound)->sin_port);
    } else {
        port_ = port;
    }
    return true;
}

int TcpListener::accept() noexcept {
    // EINTR here used to surface as "no connection pending", delaying the
    // accept by a full event-loop round under signal storms.
    const int fd = retry_on_eintr([this] { return ::accept(fd_, nullptr, nullptr); });
    if (fd < 0) return -1;
    if (!set_nonblocking(fd)) {
        ::close(fd);
        return -1;
    }
    set_nodelay(fd);
    return fd;
}

void TcpListener::close() noexcept {
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    port_ = 0;
}

}  // namespace xnfv::net
