#include "net/sharded_server.hpp"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "serve/registry.hpp"

#ifdef __linux__
#include <pthread.h>
#include <sched.h>
#endif

namespace xnfv::net {

namespace {

[[nodiscard]] std::size_t resolve_shards(std::size_t requested) {
    if (requested > 0) return requested;
    const auto hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

void pin_to_cpu([[maybe_unused]] std::thread& thread,
                [[maybe_unused]] std::size_t cpu) {
#ifdef __linux__
    const auto ncpu = std::thread::hardware_concurrency();
    if (ncpu == 0) return;
    cpu_set_t set;
    CPU_ZERO(&set);
    CPU_SET(cpu % ncpu, &set);
    // Best-effort: a denied affinity call (cgroup cpuset, RT policy) just
    // leaves the shard floating, which is still correct.
    ::pthread_setaffinity_np(thread.native_handle(), sizeof(set), &set);
#endif
}

/// mean over shards weighted by per-shard sample count.
[[nodiscard]] double weighted_mean(double acc_mean, std::uint64_t acc_n,
                                   double mean, std::uint64_t n) {
    const auto total = acc_n + n;
    if (total == 0) return 0.0;
    return (acc_mean * static_cast<double>(acc_n) +
            mean * static_cast<double>(n)) /
           static_cast<double>(total);
}

}  // namespace

ShardedServer::ShardedServer(std::shared_ptr<const xnfv::ml::Model> model,
                             xnfv::xai::BackgroundData background,
                             serve::ServiceConfig service_config,
                             ShardedServerConfig config)
    : config_(std::move(config)),
      model_(std::move(model)),
      background_(std::move(background)) {
    const std::size_t n = resolve_shards(config_.shards);
    config_.shards = n;
    budget_ = config_.net.budget
                  ? config_.net.budget
                  : std::make_shared<ConnectionBudget>(config_.net.max_connections);

    // Partition the cache: the fleet's total capacity stays what was asked
    // for, spread over per-shard slices (each internally hash-sharded), and
    // each slice carries its own drift epoch.  The per-shard config is
    // retained so the supervisor can rebuild a dead shard identically.
    per_shard_ = std::move(service_config);
    per_shard_.cache_capacity =
        std::max<std::size_t>(16, per_shard_.cache_capacity / n);

    shards_.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        shards_.push_back(std::make_unique<Shard>());
        build_shard_locked(i);
    }
}

void ShardedServer::build_shard_locked(std::size_t index) {
    auto& shard = *shards_[index];
    // Every model's snapshot file gets the shard suffix (the service
    // composes `<base>[.<fingerprint>].shardK`), keeping shard slices
    // distinct per model without rewriting the base path.  A respawned
    // shard's fresh service reloads exactly its own slice.
    serve::ServiceConfig cfg = per_shard_;
    if (!cfg.snapshot_path.empty() && config_.shards > 1)
        cfg.snapshot_suffix = ".shard" + std::to_string(index);
    shard.service =
        std::make_unique<serve::ExplanationService>(model_, background_, cfg);

    ServerConfig net = config_.net;
    net.reuseport = config_.shards > 1;
    net.budget = budget_;
    shard.server =
        std::make_unique<ExplanationServer>(*shard.service, std::move(net));
    shard.server->set_stats_provider([this] { return stats(); });
    // An admin op (load/swap/retire) reaching any shard must apply to
    // every shard's service, serialized so two concurrent ops cannot
    // interleave half-applied fleets.  Mutating ops are appended to the
    // admin log the supervisor replays into a respawned shard.
    shard.server->set_admin_provider([this](const serve::JsonValue& req) {
        const std::lock_guard<std::mutex> admin_lock(admin_mutex_);
        const std::lock_guard<std::mutex> shards_lock(shards_mutex_);
        if (req.get_string("op", "") == "stats_reset") {
            // Fleet-wide measurement window: zero every shard's service and
            // connection metrics under the same locks an admin op holds, so
            // a reset can never interleave with a half-applied fleet.  Not
            // logged — a respawned shard starts its metrics at zero anyway.
            for (const auto& s : shards_) {
                s->service->stats_reset();
                s->server->reset_net_metrics();
            }
            serve::JsonWriter w;
            w.field("ok", true);
            w.field("op", "stats_reset");
            return w.finish();
        }
        std::vector<serve::ExplanationService*> services;
        services.reserve(shards_.size());
        for (const auto& s : shards_) services.push_back(s->service.get());
        auto response = serve::handle_model_admin(req, services);
        const auto op = req.get_string("op", "");
        if (op == "load" || op == "swap" || op == "retire")
            admin_log_.push_back(req);
        return response;
    });
    if (row_lookup_) shard.server->set_row_lookup(row_lookup_);
}

ShardedServer::~ShardedServer() { stop_services(); }

void ShardedServer::set_row_lookup(RowLookup lookup) {
    const std::lock_guard<std::mutex> lock(shards_mutex_);
    row_lookup_ = std::move(lookup);
    for (auto& shard : shards_) shard->server->set_row_lookup(row_lookup_);
}

bool ShardedServer::start(std::string* error) {
    // Shard 0 resolves an ephemeral port; siblings then join its reuseport
    // group on the concrete port.  Anything bound before a failure is closed
    // when the object is destroyed.
    if (!shards_[0]->server->start(error)) return false;
    port_ = shards_[0]->server->port();
    for (std::size_t i = 1; i < shards_.size(); ++i) {
        auto& server = *shards_[i]->server;
        // Rebind the sibling's config onto the learned port.
        if (!server.bind_port(port_, error)) return false;
    }
    return true;
}

void ShardedServer::run() {
    {
        const std::lock_guard<std::mutex> lock(shards_mutex_);
        for (std::size_t i = 0; i < shards_.size(); ++i) {
            auto& shard = *shards_[i];
            shard.thread = std::thread([&shard] { shard.server->run(); });
            if (config_.pin_threads && shards_.size() > 1)
                pin_to_cpu(shard.thread, i);
        }
    }
    // The caller's thread becomes the shard supervisor; it returns once
    // every shard has drained.
    supervise();
}

void ShardedServer::supervise() {
    bool drain_sent = false;
    for (;;) {
        std::this_thread::sleep_for(config_.heartbeat_interval);
        const bool draining = draining_.load(std::memory_order_acquire);
        if (draining && !drain_sent) {
            // The signal handler only stored a flag (taking locks there is
            // not async-signal-safe once respawns can swap servers); the
            // actual fan-out happens here, one interval later at most.
            const std::lock_guard<std::mutex> lock(shards_mutex_);
            for (auto& shard : shards_) shard->server->request_drain();
            drain_sent = true;
        }
        bool all_done = true;
        std::vector<std::size_t> dead;
        {
            const std::lock_guard<std::mutex> lock(shards_mutex_);
            for (std::size_t i = 0; i < shards_.size(); ++i) {
                auto& shard = *shards_[i];
                // A shard is down when its run() returned (its exit path
                // already closed every connection and released every budget
                // slot) or when a previous respawn failed to rebind.
                const bool down =
                    shard.server->finished() || !shard.thread.joinable();
                if (!down) all_done = false;
                else if (!draining) dead.push_back(i);
            }
        }
        if (draining) {
            if (all_done) break;
            continue;
        }
        for (const auto i : dead) {
            // admin_mutex_ before shards_mutex_, matching the admin
            // provider, because the respawn replays the admin log.
            const std::lock_guard<std::mutex> admin_lock(admin_mutex_);
            const std::lock_guard<std::mutex> shards_lock(shards_mutex_);
            respawn_shard_locked(i);
        }
    }
    const std::lock_guard<std::mutex> lock(shards_mutex_);
    for (auto& shard : shards_)
        if (shard->thread.joinable()) shard->thread.join();
}

void ShardedServer::respawn_shard_locked(std::size_t index) {
    auto& shard = *shards_[index];
    if (shard.thread.joinable()) shard.thread.join();
    // Tear down in dependency order: the server first (detaching its
    // completion channel so in-flight completions land harmlessly), then
    // the service (drains its dispatcher and writes the .shardK cache
    // snapshot the replacement reloads).
    shard.server.reset();
    if (shard.service) shard.service->stop();
    shard.service.reset();
    build_shard_locked(index);
    // Re-apply every mutating admin op so tenants loaded after boot exist
    // on the replacement shard too (responses are discarded; an op that
    // fails against fresh state — e.g. a retire of a never-loaded model —
    // failed against the fleet originally as well).
    for (const auto& req : admin_log_) {
        const std::vector<serve::ExplanationService*> services{shard.service.get()};
        (void)serve::handle_model_admin(req, services);
    }
    std::string error;
    if (!shard.server->bind_port(port_, &error)) {
        // Shard stays threadless; the next supervisor pass retries.
        std::fprintf(stderr, "shard %zu respawn: bind failed: %s\n", index,
                     error.c_str());
        return;
    }
    shard.thread = std::thread([&shard] { shard.server->run(); });
    if (config_.pin_threads && shards_.size() > 1)
        pin_to_cpu(shard.thread, index);
    shard_respawns_.inc();
    // A drain requested mid-respawn must reach the replacement too.
    if (draining_.load(std::memory_order_acquire)) shard.server->request_drain();
}

void ShardedServer::request_drain() noexcept {
    draining_.store(true, std::memory_order_release);
}

void ShardedServer::stop_services() {
    if (services_stopped_.exchange(true)) return;
    for (auto& shard : shards_) {
        if (shard->thread.joinable()) {
            // run() was abandoned mid-serve (exception on the caller's
            // side); drain so the joins below cannot deadlock.
            shard->server->request_drain();
            shard->thread.join();
        }
        shard->service->stop();
    }
}

std::uint16_t ShardedServer::port() const noexcept {
    return shards_[0]->server->port();
}

serve::ServiceStats ShardedServer::stats() const {
    serve::ServiceStats agg;
    std::uint64_t batch_n = 0, svc_n = 0, compute_n = 0, probe_n = 0, conn_n = 0;
    const std::lock_guard<std::mutex> lock(shards_mutex_);
    for (const auto& shard : shards_) {
        const auto s = shard->server->stats();
        agg.requests_accepted += s.requests_accepted;
        agg.requests_rejected += s.requests_rejected;
        agg.requests_completed += s.requests_completed;
        agg.requests_degraded += s.requests_degraded;
        agg.batches += s.batches;
        agg.cache_hits += s.cache_hits;
        agg.cache_misses += s.cache_misses;
        agg.cache_evictions += s.cache_evictions;
        agg.cache_entries += s.cache_entries;
        for (std::size_t i = 0; i < serve::kNumServeErrors; ++i)
            agg.errors_by_reason[i] += s.errors_by_reason[i];
        agg.worker_respawns += s.worker_respawns;
        agg.worker_stalls += s.worker_stalls;
        agg.faults_injected += s.faults_injected;
        agg.snapshot_writes += s.snapshot_writes;
        agg.snapshot_records_loaded += s.snapshot_records_loaded;
        agg.snapshot_records_skipped += s.snapshot_records_skipped;
        agg.queue_depth += s.queue_depth;
        agg.queue_depth_max += s.queue_depth_max;
        agg.batch_size_mean =
            weighted_mean(agg.batch_size_mean, batch_n, s.batch_size_mean, s.batches);
        batch_n += s.batches;
        agg.batch_size_max = std::max(agg.batch_size_max, s.batch_size_max);
        // Latency quantiles cannot be merged exactly from snapshots; the
        // worst shard is the conservative fleet answer.
        agg.service_us_p50 = std::max(agg.service_us_p50, s.service_us_p50);
        agg.service_us_p95 = std::max(agg.service_us_p95, s.service_us_p95);
        agg.service_us_p99 = std::max(agg.service_us_p99, s.service_us_p99);
        agg.service_us_mean = weighted_mean(agg.service_us_mean, svc_n,
                                            s.service_us_mean, s.requests_completed);
        svc_n += s.requests_completed;
        agg.compute_us_mean = weighted_mean(agg.compute_us_mean, compute_n,
                                            s.compute_us_mean, s.cache_misses);
        compute_n += s.cache_misses;
        agg.model_evals += s.model_evals;
        agg.probe_rows_p50 = std::max(agg.probe_rows_p50, s.probe_rows_p50);
        agg.probe_rows_mean = weighted_mean(agg.probe_rows_mean, probe_n,
                                            s.probe_rows_mean, s.cache_misses);
        probe_n += s.cache_misses;
        agg.probe_rows_max = std::max(agg.probe_rows_max, s.probe_rows_max);
        agg.fast_path_hits += s.fast_path_hits;
        // Per-explainer merge by name: counts sum; quantiles take the worst
        // shard (same convention as the fleet latency quantiles above) and
        // means weight by each shard's request count for that explainer.
        for (const auto& e : s.explainers) {
            serve::ExplainerSliceStats* acc = nullptr;
            for (auto& existing : agg.explainers)
                if (existing.name == e.name) { acc = &existing; break; }
            if (acc == nullptr) {
                agg.explainers.push_back(e);
                continue;
            }
            acc->compute_us_mean = weighted_mean(acc->compute_us_mean, acc->requests,
                                                 e.compute_us_mean, e.requests);
            acc->requests += e.requests;
            acc->fast_path_hits += e.fast_path_hits;
            acc->compute_us_p50 = std::max(acc->compute_us_p50, e.compute_us_p50);
            acc->compute_us_p99 = std::max(acc->compute_us_p99, e.compute_us_p99);
        }
        agg.drift_checks += s.drift_checks;
        agg.drift_flushes += s.drift_flushes;
        agg.cache_epoch = std::max(agg.cache_epoch, s.cache_epoch);
        agg.adaptive_wait_us = std::max(agg.adaptive_wait_us, s.adaptive_wait_us);
        agg.connections_accepted += s.connections_accepted;
        agg.connections_active += s.connections_active;
        agg.connections_active_max += s.connections_active_max;
        agg.connections_rejected += s.connections_rejected;
        agg.connections_closed_idle += s.connections_closed_idle;
        agg.connections_closed_backpressure += s.connections_closed_backpressure;
        agg.net_bytes_in += s.net_bytes_in;
        agg.net_bytes_out += s.net_bytes_out;
        agg.net_requests += s.net_requests;
        agg.net_retry_duplicates += s.net_retry_duplicates;
        agg.conn_requests_p50 = std::max(agg.conn_requests_p50, s.conn_requests_p50);
        agg.conn_requests_mean =
            weighted_mean(agg.conn_requests_mean, conn_n, s.conn_requests_mean,
                          s.connections_accepted);
        conn_n += s.connections_accepted;
        agg.conn_requests_max = std::max(agg.conn_requests_max, s.conn_requests_max);

        // Per-model merge by name: traffic counters sum across shards;
        // registry-level facts (swaps, weight, quota, fingerprint) are
        // replicated on every shard by the admin fan-out, so they take the
        // max/first instead of a sum that would multiply them by the shard
        // count.  Registration order is identical on every shard, so
        // appending unseen names preserves it.
        for (const auto& m : s.models) {
            serve::ModelServiceStats* acc = nullptr;
            for (auto& existing : agg.models)
                if (existing.name == m.name) { acc = &existing; break; }
            if (acc == nullptr) {
                agg.models.push_back(m);
                continue;
            }
            acc->admitted += m.admitted;
            acc->rejected_quota += m.rejected_quota;
            acc->evals += m.evals;
            acc->completed += m.completed;
            acc->cache_entries += m.cache_entries;
            acc->cache_evictions += m.cache_evictions;
            acc->queued += m.queued;
            acc->swaps = std::max(acc->swaps, m.swaps);
            acc->cache_epoch = std::max(acc->cache_epoch, m.cache_epoch);
            // Breaker: counters sum; the merged state takes the most severe
            // shard (open > half-open > closed).
            acc->breaker_opens += m.breaker_opens;
            acc->breaker_rejected += m.breaker_rejected;
            if (acc->breaker_state == 1 || m.breaker_state == 1)
                acc->breaker_state = 1;
            else if (acc->breaker_state == 2 || m.breaker_state == 2)
                acc->breaker_state = 2;
        }
        agg.models_registered = std::max(agg.models_registered, s.models_registered);
        agg.model_swaps = std::max(agg.model_swaps, s.model_swaps);
    }
    agg.net_enabled = true;
    agg.net_shards = shards_.size();
    // The chaos injector is one fleet-global object shared by every shard,
    // so its counters must not be summed once per shard: overwrite the
    // merged values with the single source of truth.
    if (config_.net.chaos) {
        agg.net_faults_injected = config_.net.chaos->total_fired();
        agg.errors_by_reason[static_cast<std::size_t>(
            serve::ServeError::net_fault_injected)] = agg.net_faults_injected;
    }
    agg.net_shard_respawns = shard_respawns_.value();
    agg.errors_by_reason[static_cast<std::size_t>(serve::ServeError::shard_respawn)] =
        agg.net_shard_respawns;
    return agg;
}

}  // namespace xnfv::net
