#include "net/sharded_server.hpp"

#include <algorithm>
#include <utility>

#ifdef __linux__
#include <pthread.h>
#include <sched.h>
#endif

namespace xnfv::net {

namespace {

[[nodiscard]] std::size_t resolve_shards(std::size_t requested) {
    if (requested > 0) return requested;
    const auto hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

void pin_to_cpu([[maybe_unused]] std::thread& thread,
                [[maybe_unused]] std::size_t cpu) {
#ifdef __linux__
    const auto ncpu = std::thread::hardware_concurrency();
    if (ncpu == 0) return;
    cpu_set_t set;
    CPU_ZERO(&set);
    CPU_SET(cpu % ncpu, &set);
    // Best-effort: a denied affinity call (cgroup cpuset, RT policy) just
    // leaves the shard floating, which is still correct.
    ::pthread_setaffinity_np(thread.native_handle(), sizeof(set), &set);
#endif
}

/// mean over shards weighted by per-shard sample count.
[[nodiscard]] double weighted_mean(double acc_mean, std::uint64_t acc_n,
                                   double mean, std::uint64_t n) {
    const auto total = acc_n + n;
    if (total == 0) return 0.0;
    return (acc_mean * static_cast<double>(acc_n) +
            mean * static_cast<double>(n)) /
           static_cast<double>(total);
}

}  // namespace

ShardedServer::ShardedServer(std::shared_ptr<const xnfv::ml::Model> model,
                             xnfv::xai::BackgroundData background,
                             serve::ServiceConfig service_config,
                             ShardedServerConfig config)
    : config_(std::move(config)) {
    const std::size_t n = resolve_shards(config_.shards);
    config_.shards = n;
    budget_ = config_.net.budget
                  ? config_.net.budget
                  : std::make_shared<ConnectionBudget>(config_.net.max_connections);

    // Partition the cache: the fleet's total capacity stays what was asked
    // for, spread over per-shard slices (each internally hash-sharded), and
    // each slice carries its own drift epoch.
    serve::ServiceConfig per_shard = std::move(service_config);
    per_shard.cache_capacity =
        std::max<std::size_t>(16, per_shard.cache_capacity / n);

    shards_.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        auto shard = std::make_unique<Shard>();
        // Every model's snapshot file gets the shard suffix (the service
        // composes `<base>[.<fingerprint>].shardK`), keeping shard slices
        // distinct per model without rewriting the base path.
        if (!per_shard.snapshot_path.empty() && n > 1)
            per_shard.snapshot_suffix = ".shard" + std::to_string(i);
        shard->service = std::make_unique<serve::ExplanationService>(
            model, background, per_shard);

        ServerConfig net = config_.net;
        net.reuseport = n > 1;
        net.budget = budget_;
        shard->server = std::make_unique<ExplanationServer>(*shard->service,
                                                            std::move(net));
        shard->server->set_stats_provider([this] { return stats(); });
        // An admin op (load/swap/retire) reaching any shard must apply to
        // every shard's service, serialized so two concurrent ops cannot
        // interleave half-applied fleets.
        shard->server->set_admin_provider([this](const serve::JsonValue& req) {
            const std::lock_guard<std::mutex> lock(admin_mutex_);
            std::vector<serve::ExplanationService*> services;
            services.reserve(shards_.size());
            for (const auto& s : shards_) services.push_back(s->service.get());
            return serve::handle_model_admin(req, services);
        });
        shards_.push_back(std::move(shard));
    }
}

ShardedServer::~ShardedServer() { stop_services(); }

void ShardedServer::set_row_lookup(RowLookup lookup) {
    for (auto& shard : shards_) shard->server->set_row_lookup(lookup);
}

bool ShardedServer::start(std::string* error) {
    // Shard 0 resolves an ephemeral port; siblings then join its reuseport
    // group on the concrete port.  Anything bound before a failure is closed
    // when the object is destroyed.
    if (!shards_[0]->server->start(error)) return false;
    const std::uint16_t port = shards_[0]->server->port();
    for (std::size_t i = 1; i < shards_.size(); ++i) {
        auto& server = *shards_[i]->server;
        // Rebind the sibling's config onto the learned port.
        if (!server.bind_port(port, error)) return false;
    }
    return true;
}

void ShardedServer::run() {
    for (std::size_t i = 0; i < shards_.size(); ++i) {
        auto& shard = *shards_[i];
        shard.thread = std::thread([&shard] { shard.server->run(); });
        if (config_.pin_threads && shards_.size() > 1)
            pin_to_cpu(shard.thread, i);
    }
    for (auto& shard : shards_)
        if (shard->thread.joinable()) shard->thread.join();
}

void ShardedServer::request_drain() noexcept {
    for (auto& shard : shards_) shard->server->request_drain();
}

void ShardedServer::stop_services() {
    if (services_stopped_.exchange(true)) return;
    for (auto& shard : shards_) {
        if (shard->thread.joinable()) {
            // run() was abandoned mid-serve (exception on the caller's
            // side); drain so the joins below cannot deadlock.
            shard->server->request_drain();
            shard->thread.join();
        }
        shard->service->stop();
    }
}

std::uint16_t ShardedServer::port() const noexcept {
    return shards_[0]->server->port();
}

serve::ServiceStats ShardedServer::stats() const {
    serve::ServiceStats agg;
    std::uint64_t batch_n = 0, svc_n = 0, compute_n = 0, probe_n = 0, conn_n = 0;
    for (const auto& shard : shards_) {
        const auto s = shard->server->stats();
        agg.requests_accepted += s.requests_accepted;
        agg.requests_rejected += s.requests_rejected;
        agg.requests_completed += s.requests_completed;
        agg.requests_degraded += s.requests_degraded;
        agg.batches += s.batches;
        agg.cache_hits += s.cache_hits;
        agg.cache_misses += s.cache_misses;
        agg.cache_evictions += s.cache_evictions;
        agg.cache_entries += s.cache_entries;
        for (std::size_t i = 0; i < serve::kNumServeErrors; ++i)
            agg.errors_by_reason[i] += s.errors_by_reason[i];
        agg.worker_respawns += s.worker_respawns;
        agg.worker_stalls += s.worker_stalls;
        agg.faults_injected += s.faults_injected;
        agg.snapshot_writes += s.snapshot_writes;
        agg.snapshot_records_loaded += s.snapshot_records_loaded;
        agg.snapshot_records_skipped += s.snapshot_records_skipped;
        agg.queue_depth += s.queue_depth;
        agg.queue_depth_max += s.queue_depth_max;
        agg.batch_size_mean =
            weighted_mean(agg.batch_size_mean, batch_n, s.batch_size_mean, s.batches);
        batch_n += s.batches;
        agg.batch_size_max = std::max(agg.batch_size_max, s.batch_size_max);
        // Latency quantiles cannot be merged exactly from snapshots; the
        // worst shard is the conservative fleet answer.
        agg.service_us_p50 = std::max(agg.service_us_p50, s.service_us_p50);
        agg.service_us_p95 = std::max(agg.service_us_p95, s.service_us_p95);
        agg.service_us_p99 = std::max(agg.service_us_p99, s.service_us_p99);
        agg.service_us_mean = weighted_mean(agg.service_us_mean, svc_n,
                                            s.service_us_mean, s.requests_completed);
        svc_n += s.requests_completed;
        agg.compute_us_mean = weighted_mean(agg.compute_us_mean, compute_n,
                                            s.compute_us_mean, s.cache_misses);
        compute_n += s.cache_misses;
        agg.model_evals += s.model_evals;
        agg.probe_rows_p50 = std::max(agg.probe_rows_p50, s.probe_rows_p50);
        agg.probe_rows_mean = weighted_mean(agg.probe_rows_mean, probe_n,
                                            s.probe_rows_mean, s.cache_misses);
        probe_n += s.cache_misses;
        agg.probe_rows_max = std::max(agg.probe_rows_max, s.probe_rows_max);
        agg.drift_checks += s.drift_checks;
        agg.drift_flushes += s.drift_flushes;
        agg.cache_epoch = std::max(agg.cache_epoch, s.cache_epoch);
        agg.adaptive_wait_us = std::max(agg.adaptive_wait_us, s.adaptive_wait_us);
        agg.connections_accepted += s.connections_accepted;
        agg.connections_active += s.connections_active;
        agg.connections_active_max += s.connections_active_max;
        agg.connections_rejected += s.connections_rejected;
        agg.connections_closed_idle += s.connections_closed_idle;
        agg.connections_closed_backpressure += s.connections_closed_backpressure;
        agg.net_bytes_in += s.net_bytes_in;
        agg.net_bytes_out += s.net_bytes_out;
        agg.net_requests += s.net_requests;
        agg.conn_requests_p50 = std::max(agg.conn_requests_p50, s.conn_requests_p50);
        agg.conn_requests_mean =
            weighted_mean(agg.conn_requests_mean, conn_n, s.conn_requests_mean,
                          s.connections_accepted);
        conn_n += s.connections_accepted;
        agg.conn_requests_max = std::max(agg.conn_requests_max, s.conn_requests_max);

        // Per-model merge by name: traffic counters sum across shards;
        // registry-level facts (swaps, weight, quota, fingerprint) are
        // replicated on every shard by the admin fan-out, so they take the
        // max/first instead of a sum that would multiply them by the shard
        // count.  Registration order is identical on every shard, so
        // appending unseen names preserves it.
        for (const auto& m : s.models) {
            serve::ModelServiceStats* acc = nullptr;
            for (auto& existing : agg.models)
                if (existing.name == m.name) { acc = &existing; break; }
            if (acc == nullptr) {
                agg.models.push_back(m);
                continue;
            }
            acc->admitted += m.admitted;
            acc->rejected_quota += m.rejected_quota;
            acc->evals += m.evals;
            acc->completed += m.completed;
            acc->cache_entries += m.cache_entries;
            acc->cache_evictions += m.cache_evictions;
            acc->queued += m.queued;
            acc->swaps = std::max(acc->swaps, m.swaps);
            acc->cache_epoch = std::max(acc->cache_epoch, m.cache_epoch);
        }
        agg.models_registered = std::max(agg.models_registered, s.models_registered);
        agg.model_swaps = std::max(agg.model_swaps, s.model_swaps);
    }
    agg.net_enabled = true;
    agg.net_shards = shards_.size();
    return agg;
}

}  // namespace xnfv::net
