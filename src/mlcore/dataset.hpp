// Tabular dataset container shared by the ML substrate, the NFV dataset
// builder and the XAI engine.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "mlcore/matrix.hpp"
#include "mlcore/rng.hpp"

namespace xnfv::ml {

/// Whether the label column is continuous or a {0,1} class.
enum class Task { regression, binary_classification };

/// A labelled tabular dataset: feature matrix X (n x d), label vector y (n),
/// feature names, and the task type.  Invariant: x.rows() == y.size() and
/// feature_names.size() == x.cols() (enforced by validate()).
struct Dataset {
    Matrix x;
    std::vector<double> y;
    std::vector<std::string> feature_names;
    Task task = Task::regression;

    [[nodiscard]] std::size_t size() const noexcept { return y.size(); }
    [[nodiscard]] std::size_t num_features() const noexcept { return x.cols(); }

    /// Throws std::invalid_argument if the invariants above are broken.
    void validate() const;

    /// Adds one sample.  `features` must match num_features() (or define it
    /// on the first call).
    void add(std::span<const double> features, double label);

    /// Per-feature column means.
    [[nodiscard]] std::vector<double> feature_means() const;

    /// Per-feature column standard deviations (population).
    [[nodiscard]] std::vector<double> feature_stddevs() const;

    /// Per-feature (min, max) pairs.
    [[nodiscard]] std::vector<std::pair<double, double>> feature_ranges() const;

    /// Returns a dataset containing the given row indices (may repeat).
    [[nodiscard]] Dataset subset(std::span<const std::size_t> indices) const;

    /// Fraction of positive labels (classification convenience).
    [[nodiscard]] double positive_rate() const;
};

/// Random (seeded) train/test split. `test_fraction` in (0, 1).
struct TrainTestSplit {
    Dataset train;
    Dataset test;
};
[[nodiscard]] TrainTestSplit train_test_split(const Dataset& d, double test_fraction, Rng& rng);

/// Writes the dataset as CSV with a header row (`feature names..., label`).
void write_csv(const Dataset& d, std::ostream& os);
void write_csv_file(const Dataset& d, const std::string& path);

/// Reads a dataset from CSV produced by write_csv (last column = label).
/// Throws std::runtime_error on malformed input.
[[nodiscard]] Dataset read_csv(std::istream& is, Task task);
[[nodiscard]] Dataset read_csv_file(const std::string& path, Task task);

}  // namespace xnfv::ml
