// Linear models: ridge-regularized linear regression (closed form) and
// logistic regression (gradient descent).  These serve both as baselines in
// the evaluation (T1) and as the surrogate family used by LIME.
#pragma once

#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "mlcore/dataset.hpp"
#include "mlcore/model.hpp"

namespace xnfv::ml {

/// y ≈ intercept + x . coefficients, fit by ridge-regularized least squares.
class LinearRegression final : public Model {
public:
    struct Config {
        double l2 = 1e-6;  ///< ridge strength (applied to coefficients, not intercept)
    };

    LinearRegression() = default;
    explicit LinearRegression(Config config) : config_(config) {}

    /// Fits on the dataset (task must be regression-compatible; labels are
    /// used as-is).  Throws on empty data.
    void fit(const Dataset& d);

    [[nodiscard]] double predict(std::span<const double> x) const override;
    /// Matrix-level kernel: avoids one virtual call and one shape check per
    /// row; arithmetic identical to predict().
    void predict_batch(const Matrix& x, std::span<double> out) const override;
    using Model::predict_batch;
    [[nodiscard]] std::size_t num_features() const override { return coef_.size(); }
    [[nodiscard]] std::string name() const override { return "linear_regression"; }

    [[nodiscard]] const std::vector<double>& coefficients() const noexcept { return coef_; }
    [[nodiscard]] double intercept() const noexcept { return intercept_; }

    /// Serializes the fitted model as line-based text (see mlcore/serialize.hpp).
    void save(std::ostream& os) const;
    /// Restores state written by save(), replacing any current state.
    /// Throws std::runtime_error on malformed input.
    void load(std::istream& is);

private:
    Config config_{};
    std::vector<double> coef_;
    double intercept_ = 0.0;
};

/// P(y=1|x) = sigmoid(intercept + x . coefficients), fit by full-batch
/// gradient descent with L2 regularization.
class LogisticRegression final : public Model {
public:
    struct Config {
        double learning_rate = 0.1;
        double l2 = 1e-4;
        int epochs = 500;
        double tolerance = 1e-8;  ///< stop when loss improvement falls below this
    };

    LogisticRegression() = default;
    explicit LogisticRegression(Config config) : config_(config) {}

    /// Fits on a binary-classification dataset (labels in {0,1}).
    void fit(const Dataset& d);

    /// Positive-class probability.
    [[nodiscard]] double predict(std::span<const double> x) const override;
    /// Matrix-level kernel; arithmetic identical to predict().
    void predict_batch(const Matrix& x, std::span<double> out) const override;
    using Model::predict_batch;
    [[nodiscard]] std::size_t num_features() const override { return coef_.size(); }
    [[nodiscard]] std::string name() const override { return "logistic_regression"; }

    [[nodiscard]] const std::vector<double>& coefficients() const noexcept { return coef_; }
    [[nodiscard]] double intercept() const noexcept { return intercept_; }

    /// Serializes the fitted model as line-based text (see mlcore/serialize.hpp).
    void save(std::ostream& os) const;
    /// Restores state written by save(), replacing any current state.
    /// Throws std::runtime_error on malformed input.
    void load(std::istream& is);

private:
    Config config_{};
    std::vector<double> coef_;
    double intercept_ = 0.0;
};

/// Numerically stable logistic sigmoid.
[[nodiscard]] double sigmoid(double z) noexcept;

}  // namespace xnfv::ml
