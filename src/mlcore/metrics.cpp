#include "mlcore/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace xnfv::ml {

namespace {

void check_sizes(std::span<const double> a, std::span<const double> b, const char* who) {
    if (a.size() != b.size() || a.empty())
        throw std::invalid_argument(std::string(who) + ": size mismatch or empty input");
}

/// Ranks with average rank for ties; rank 1 = smallest.
std::vector<double> average_ranks(std::span<const double> v) {
    const std::size_t n = v.size();
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(),
              [&](std::size_t i, std::size_t j) { return v[i] < v[j]; });
    std::vector<double> ranks(n);
    std::size_t i = 0;
    while (i < n) {
        std::size_t j = i;
        while (j + 1 < n && v[order[j + 1]] == v[order[i]]) ++j;
        const double avg = 0.5 * static_cast<double>(i + j) + 1.0;
        for (std::size_t k = i; k <= j; ++k) ranks[order[k]] = avg;
        i = j + 1;
    }
    return ranks;
}

}  // namespace

double mse(std::span<const double> y_true, std::span<const double> y_pred) {
    check_sizes(y_true, y_pred, "mse");
    double s = 0.0;
    for (std::size_t i = 0; i < y_true.size(); ++i) {
        const double d = y_true[i] - y_pred[i];
        s += d * d;
    }
    return s / static_cast<double>(y_true.size());
}

double rmse(std::span<const double> y_true, std::span<const double> y_pred) {
    return std::sqrt(mse(y_true, y_pred));
}

double mae(std::span<const double> y_true, std::span<const double> y_pred) {
    check_sizes(y_true, y_pred, "mae");
    double s = 0.0;
    for (std::size_t i = 0; i < y_true.size(); ++i) s += std::abs(y_true[i] - y_pred[i]);
    return s / static_cast<double>(y_true.size());
}

double r2_score(std::span<const double> y_true, std::span<const double> y_pred) {
    check_sizes(y_true, y_pred, "r2_score");
    double mean = 0.0;
    for (double v : y_true) mean += v;
    mean /= static_cast<double>(y_true.size());
    double ss_res = 0.0, ss_tot = 0.0;
    for (std::size_t i = 0; i < y_true.size(); ++i) {
        ss_res += (y_true[i] - y_pred[i]) * (y_true[i] - y_pred[i]);
        ss_tot += (y_true[i] - mean) * (y_true[i] - mean);
    }
    if (ss_tot == 0.0) return 0.0;
    return 1.0 - ss_res / ss_tot;
}

double ConfusionMatrix::accuracy() const noexcept {
    const double total = static_cast<double>(tp + fp + tn + fn);
    return total == 0.0 ? 0.0 : static_cast<double>(tp + tn) / total;
}

double ConfusionMatrix::precision() const noexcept {
    return (tp + fp) == 0 ? 0.0 : static_cast<double>(tp) / static_cast<double>(tp + fp);
}

double ConfusionMatrix::recall() const noexcept {
    return (tp + fn) == 0 ? 0.0 : static_cast<double>(tp) / static_cast<double>(tp + fn);
}

double ConfusionMatrix::f1() const noexcept {
    const double p = precision();
    const double r = recall();
    return (p + r) == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
}

ConfusionMatrix confusion_matrix(
    std::span<const double> y_true, std::span<const double> y_prob, double threshold) {
    check_sizes(y_true, y_prob, "confusion_matrix");
    ConfusionMatrix cm;
    for (std::size_t i = 0; i < y_true.size(); ++i) {
        const bool truth = y_true[i] > 0.5;
        const bool pred = y_prob[i] >= threshold;
        if (truth && pred) ++cm.tp;
        else if (!truth && pred) ++cm.fp;
        else if (!truth && !pred) ++cm.tn;
        else ++cm.fn;
    }
    return cm;
}

double accuracy(std::span<const double> y_true, std::span<const double> y_prob,
                double threshold) {
    return confusion_matrix(y_true, y_prob, threshold).accuracy();
}

double roc_auc(std::span<const double> y_true, std::span<const double> y_prob) {
    check_sizes(y_true, y_prob, "roc_auc");
    const auto ranks = average_ranks(y_prob);
    double rank_sum_pos = 0.0;
    std::size_t n_pos = 0;
    for (std::size_t i = 0; i < y_true.size(); ++i) {
        if (y_true[i] > 0.5) {
            rank_sum_pos += ranks[i];
            ++n_pos;
        }
    }
    const std::size_t n_neg = y_true.size() - n_pos;
    if (n_pos == 0 || n_neg == 0) return 0.5;
    const double np = static_cast<double>(n_pos);
    const double nn = static_cast<double>(n_neg);
    return (rank_sum_pos - np * (np + 1.0) / 2.0) / (np * nn);
}

double log_loss(std::span<const double> y_true, std::span<const double> y_prob, double eps) {
    check_sizes(y_true, y_prob, "log_loss");
    double s = 0.0;
    for (std::size_t i = 0; i < y_true.size(); ++i) {
        const double p = std::clamp(y_prob[i], eps, 1.0 - eps);
        s += y_true[i] > 0.5 ? -std::log(p) : -std::log(1.0 - p);
    }
    return s / static_cast<double>(y_true.size());
}

double spearman(std::span<const double> a, std::span<const double> b) {
    if (a.size() != b.size()) throw std::invalid_argument("spearman: size mismatch");
    if (a.size() < 2) return 0.0;
    const auto ra = average_ranks(a);
    const auto rb = average_ranks(b);
    // Pearson correlation of the ranks (valid with ties).
    double ma = 0.0, mb = 0.0;
    for (std::size_t i = 0; i < ra.size(); ++i) {
        ma += ra[i];
        mb += rb[i];
    }
    ma /= static_cast<double>(ra.size());
    mb /= static_cast<double>(rb.size());
    double num = 0.0, va = 0.0, vb = 0.0;
    for (std::size_t i = 0; i < ra.size(); ++i) {
        num += (ra[i] - ma) * (rb[i] - mb);
        va += (ra[i] - ma) * (ra[i] - ma);
        vb += (rb[i] - mb) * (rb[i] - mb);
    }
    if (va == 0.0 || vb == 0.0) return 0.0;
    return num / std::sqrt(va * vb);
}

double topk_overlap(std::span<const double> a, std::span<const double> b, std::size_t k) {
    if (a.size() != b.size()) throw std::invalid_argument("topk_overlap: size mismatch");
    if (k == 0 || a.empty()) return 0.0;
    k = std::min(k, a.size());
    auto topk = [k](std::span<const double> v) {
        std::vector<std::size_t> idx(v.size());
        std::iota(idx.begin(), idx.end(), std::size_t{0});
        std::partial_sort(idx.begin(), idx.begin() + static_cast<std::ptrdiff_t>(k), idx.end(),
                          [&](std::size_t i, std::size_t j) { return v[i] > v[j]; });
        idx.resize(k);
        std::sort(idx.begin(), idx.end());
        return idx;
    };
    const auto ta = topk(a);
    const auto tb = topk(b);
    std::vector<std::size_t> inter;
    std::set_intersection(ta.begin(), ta.end(), tb.begin(), tb.end(),
                          std::back_inserter(inter));
    return static_cast<double>(inter.size()) / static_cast<double>(k);
}

}  // namespace xnfv::ml
