// Random forest: bagged CART trees with per-split feature subsampling.
#pragma once

#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "mlcore/dataset.hpp"
#include "mlcore/model.hpp"
#include "mlcore/rng.hpp"
#include "mlcore/tree.hpp"

namespace xnfv::ml {

/// Random forest over DecisionTree.  For classification the prediction is
/// the mean of the trees' leaf probabilities (soft voting).
class RandomForest final : public Model {
public:
    struct Config {
        std::size_t num_trees = 100;
        DecisionTree::Config tree{};  ///< tree.max_features 0 = sqrt(d) default
        /// Fraction of rows drawn (with replacement) per tree.
        double bootstrap_fraction = 1.0;
    };

    RandomForest() = default;
    explicit RandomForest(Config config) : config_(config) {}

    void fit(const Dataset& d, Rng& rng);

    [[nodiscard]] double predict(std::span<const double> x) const override;
    /// Blocked inference over one flattened SoA copy of all trees; bitwise
    /// identical to the per-row predict() loop (see flat_tree.hpp).
    void predict_batch(const Matrix& x, std::span<double> out) const override;
    using Model::predict_batch;
    [[nodiscard]] std::size_t num_features() const override { return num_features_; }
    [[nodiscard]] std::string name() const override { return "random_forest"; }

    [[nodiscard]] const std::vector<DecisionTree>& trees() const noexcept { return trees_; }

    /// Mean of per-tree impurity importances, re-normalized to sum to 1.
    [[nodiscard]] std::vector<double> feature_importances() const;

    /// Serializes the fitted model as line-based text (see mlcore/serialize.hpp).
    void save(std::ostream& os) const;
    /// Restores state written by save(), replacing any current state.
    /// Throws std::runtime_error on malformed input.
    void load(std::istream& is);


private:
    void rebuild_flat();

    Config config_{};
    std::vector<DecisionTree> trees_;
    FlatEnsemble flat_;  ///< all trees concatenated, rebuilt by fit()/load()
    std::size_t num_features_ = 0;
};

}  // namespace xnfv::ml
