// Feature preprocessing: standardization, min-max scaling, one-hot encoding.
#pragma once

#include <span>
#include <vector>

#include "mlcore/dataset.hpp"
#include "mlcore/matrix.hpp"

namespace xnfv::ml {

/// Z-score standardizer: fit on training data, apply everywhere.
/// Features with zero variance are passed through unscaled (centered only).
class Standardizer {
public:
    /// Learns per-column mean and stddev from X.
    void fit(const Matrix& x);

    /// (x - mean) / stddev per column; fit() must have been called.
    [[nodiscard]] Matrix transform(const Matrix& x) const;
    [[nodiscard]] std::vector<double> transform_row(std::span<const double> x) const;

    /// Inverse mapping for a transformed row.
    [[nodiscard]] std::vector<double> inverse_row(std::span<const double> z) const;

    [[nodiscard]] const std::vector<double>& means() const noexcept { return mean_; }
    [[nodiscard]] const std::vector<double>& stddevs() const noexcept { return stddev_; }
    [[nodiscard]] bool fitted() const noexcept { return !mean_.empty(); }

private:
    std::vector<double> mean_;
    std::vector<double> stddev_;
};

/// Min-max scaler to [0, 1]; constant features map to 0.
class MinMaxScaler {
public:
    void fit(const Matrix& x);
    [[nodiscard]] Matrix transform(const Matrix& x) const;
    [[nodiscard]] std::vector<double> transform_row(std::span<const double> x) const;
    [[nodiscard]] bool fitted() const noexcept { return !lo_.empty(); }

private:
    std::vector<double> lo_;
    std::vector<double> hi_;
};

/// One-hot encodes an integer-valued column into `cardinality` binary
/// columns.  Values outside [0, cardinality) map to all-zeros.
[[nodiscard]] Matrix one_hot(std::span<const double> column, std::size_t cardinality);

/// Applies a standardizer to the feature matrix of a dataset, returning a
/// new dataset (labels untouched).
[[nodiscard]] Dataset standardize(const Dataset& d, const Standardizer& s);

}  // namespace xnfv::ml
