#include "mlcore/matrix.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

namespace xnfv::ml {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix Matrix::from_rows(const std::vector<std::vector<double>>& rows) {
    Matrix m;
    for (const auto& r : rows) m.push_row(r);
    return m;
}

Matrix Matrix::identity(std::size_t n) {
    Matrix m(n, n, 0.0);
    for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
    return m;
}

std::vector<double> Matrix::col(std::size_t c) const {
    if (c >= cols_) throw std::out_of_range("Matrix::col: index out of range");
    std::vector<double> out(rows_);
    for (std::size_t r = 0; r < rows_; ++r) out[r] = (*this)(r, c);
    return out;
}

void Matrix::push_row(std::span<const double> values) {
    if (rows_ == 0 && cols_ == 0) {
        cols_ = values.size();
    } else if (values.size() != cols_) {
        throw std::invalid_argument("Matrix::push_row: row length mismatch");
    }
    data_.insert(data_.end(), values.begin(), values.end());
    ++rows_;
}

Matrix Matrix::transposed() const {
    Matrix t(cols_, rows_);
    for (std::size_t r = 0; r < rows_; ++r)
        for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
    return t;
}

Matrix Matrix::matmul(const Matrix& other) const {
    if (cols_ != other.rows_)
        throw std::invalid_argument("Matrix::matmul: inner dimensions differ");
    Matrix out(rows_, other.cols_, 0.0);
    // i-k-j loop order keeps the inner loop contiguous in both operands.
    for (std::size_t i = 0; i < rows_; ++i) {
        for (std::size_t k = 0; k < cols_; ++k) {
            const double a = (*this)(i, k);
            if (a == 0.0) continue;
            const auto rhs = other.row(k);
            auto dst = out.row(i);
            for (std::size_t j = 0; j < other.cols_; ++j) dst[j] += a * rhs[j];
        }
    }
    return out;
}

std::vector<double> Matrix::matvec(std::span<const double> v) const {
    if (v.size() != cols_)
        throw std::invalid_argument("Matrix::matvec: size mismatch");
    std::vector<double> out(rows_, 0.0);
    for (std::size_t r = 0; r < rows_; ++r) out[r] = dot(row(r), v);
    return out;
}

Matrix Matrix::take_rows(std::span<const std::size_t> indices) const {
    Matrix out(indices.size(), cols_);
    for (std::size_t i = 0; i < indices.size(); ++i) {
        if (indices[i] >= rows_)
            throw std::out_of_range("Matrix::take_rows: index out of range");
        const auto src = row(indices[i]);
        auto dst = out.row(i);
        std::copy(src.begin(), src.end(), dst.begin());
    }
    return out;
}

Matrix Matrix::take_cols(std::span<const std::size_t> indices) const {
    Matrix out(rows_, indices.size());
    for (std::size_t c = 0; c < indices.size(); ++c)
        if (indices[c] >= cols_)
            throw std::out_of_range("Matrix::take_cols: index out of range");
    for (std::size_t r = 0; r < rows_; ++r)
        for (std::size_t c = 0; c < indices.size(); ++c)
            out(r, c) = (*this)(r, indices[c]);
    return out;
}

std::string Matrix::to_string(int precision) const {
    std::ostringstream os;
    os.precision(precision);
    for (std::size_t r = 0; r < rows_; ++r) {
        os << '[';
        for (std::size_t c = 0; c < cols_; ++c) {
            if (c) os << ", ";
            os << (*this)(r, c);
        }
        os << "]\n";
    }
    return os.str();
}

namespace {

/// In-place Cholesky factorization A = L L^T into the lower triangle.
/// Returns false if a non-positive pivot is encountered.
bool cholesky_inplace(Matrix& a) {
    const std::size_t n = a.rows();
    for (std::size_t j = 0; j < n; ++j) {
        double d = a(j, j);
        for (std::size_t k = 0; k < j; ++k) d -= a(j, k) * a(j, k);
        if (d <= 0.0 || !std::isfinite(d)) return false;
        const double ljj = std::sqrt(d);
        a(j, j) = ljj;
        for (std::size_t i = j + 1; i < n; ++i) {
            double s = a(i, j);
            for (std::size_t k = 0; k < j; ++k) s -= a(i, k) * a(j, k);
            a(i, j) = s / ljj;
        }
    }
    return true;
}

std::vector<double> cholesky_solve(const Matrix& l, std::span<const double> b) {
    const std::size_t n = l.rows();
    std::vector<double> y(n);
    // Forward substitution L y = b.
    for (std::size_t i = 0; i < n; ++i) {
        double s = b[i];
        for (std::size_t k = 0; k < i; ++k) s -= l(i, k) * y[k];
        y[i] = s / l(i, i);
    }
    // Back substitution L^T x = y.
    std::vector<double> x(n);
    for (std::size_t ii = n; ii-- > 0;) {
        double s = y[ii];
        for (std::size_t k = ii + 1; k < n; ++k) s -= l(k, ii) * x[k];
        x[ii] = s / l(ii, ii);
    }
    return x;
}

}  // namespace

std::vector<double> solve_spd(const Matrix& a, std::span<const double> b) {
    if (a.rows() != a.cols())
        throw std::invalid_argument("solve_spd: matrix must be square");
    if (b.size() != a.rows())
        throw std::invalid_argument("solve_spd: rhs size mismatch");

    // Progressive diagonal jitter handles the semi-definite systems that
    // arise when LIME/SHAP sampling produces collinear design matrices.
    double jitter = 0.0;
    for (int attempt = 0; attempt < 8; ++attempt) {
        Matrix work = a;
        if (jitter > 0.0)
            for (std::size_t i = 0; i < work.rows(); ++i) work(i, i) += jitter;
        if (cholesky_inplace(work)) return cholesky_solve(work, b);
        jitter = jitter == 0.0 ? 1e-10 : jitter * 100.0;
    }
    throw std::runtime_error("solve_spd: matrix is not positive definite");
}

std::vector<double> weighted_least_squares(
    const Matrix& x, std::span<const double> y, std::span<const double> w, double l2) {
    const std::size_t n = x.rows();
    const std::size_t d = x.cols();
    if (y.size() != n || w.size() != n)
        throw std::invalid_argument("weighted_least_squares: size mismatch");

    // Normal equations: (X^T W X + l2 I) beta = X^T W y.
    Matrix xtwx(d, d, 0.0);
    std::vector<double> xtwy(d, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
        const double wi = w[i];
        if (wi == 0.0) continue;
        const auto xi = x.row(i);
        for (std::size_t a = 0; a < d; ++a) {
            const double wxa = wi * xi[a];
            xtwy[a] += wxa * y[i];
            for (std::size_t bcol = a; bcol < d; ++bcol) xtwx(a, bcol) += wxa * xi[bcol];
        }
    }
    for (std::size_t a = 0; a < d; ++a) {
        xtwx(a, a) += l2;
        for (std::size_t bcol = a + 1; bcol < d; ++bcol) xtwx(bcol, a) = xtwx(a, bcol);
    }
    return solve_spd(xtwx, xtwy);
}

double dot(std::span<const double> a, std::span<const double> b) {
    if (a.size() != b.size()) throw std::invalid_argument("dot: size mismatch");
    double s = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
    return s;
}

double norm2(std::span<const double> a) {
    double s = 0.0;
    for (double v : a) s += v * v;
    return std::sqrt(s);
}

double mean(std::span<const double> a) {
    if (a.empty()) return 0.0;
    double s = 0.0;
    for (double v : a) s += v;
    return s / static_cast<double>(a.size());
}

double variance(std::span<const double> a) {
    if (a.size() < 2) return 0.0;
    const double m = mean(a);
    double s = 0.0;
    for (double v : a) s += (v - m) * (v - m);
    return s / static_cast<double>(a.size());
}

}  // namespace xnfv::ml
