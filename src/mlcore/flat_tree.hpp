// Flattened structure-of-arrays storage for tree ensembles.
//
// DecisionTree keeps its nodes as a vector of TreeNode structs — convenient
// for fitting and for the TreeSHAP walker, but poor for batch inference: each
// descent pointer-chases 48-byte structs and every row pays a virtual
// Model::predict() call.  FlatEnsemble re-packs one or more trees into
// parallel arrays (int32 feature, double threshold, interleaved int32 child
// pair, double leaf value) indexed by a single absolute node id, and its
// accumulate() kernel walks a *block of rows per tree* so each tree's arrays
// stay hot in cache across the whole block.  The descent itself is
// branchless (child pair indexed by the comparison result) and runs eight
// rows in lockstep for exactly depth(tree) steps, so there is no
// data-dependent branch anywhere in the hot loop — see DESIGN.md §11.
// Built eagerly at the end of fit()/load().
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "mlcore/matrix.hpp"

namespace xnfv::ml {

struct TreeNode;

/// One or more flattened trees sharing contiguous SoA node storage.
class FlatEnsemble {
public:
    /// Appends one tree given its flat TreeNode vector (node 0 = root).
    /// Child indices are rebased onto the shared arrays.
    void add_tree(std::span<const TreeNode> nodes);

    void clear() noexcept;
    void reserve(std::size_t trees, std::size_t nodes);

    [[nodiscard]] bool empty() const noexcept { return roots_.empty(); }
    [[nodiscard]] std::size_t num_trees() const noexcept { return roots_.size(); }
    [[nodiscard]] std::size_t num_nodes() const noexcept { return feature_.size(); }

    /// For every row r in [row_begin, row_end):
    ///     acc[r - row_begin] += scale * leaf_value(tree, x.row(r))
    /// summed over trees in insertion order — per row this is exactly the
    /// tree-order sum the scalar predict() loops compute, so results are
    /// bitwise identical to them.  Iteration is tree-major over row blocks of
    /// kRowBlock for cache locality.
    void accumulate(const Matrix& x, std::size_t row_begin, std::size_t row_end,
                    double scale, std::span<double> acc) const;

    /// Rows per inner block of accumulate().  Each tree's node arrays are
    /// streamed through cache once per block, so larger blocks amortize that
    /// cost over more descents; 1024 rows keeps the 8 KiB accumulator stripe
    /// comfortably in L1 while capturing nearly all of the amortization win
    /// measured on multi-hundred-tree ensembles.
    static constexpr std::size_t kRowBlock = 1024;

private:
    std::vector<std::int32_t> feature_;    ///< split feature; -1 marks a leaf
    std::vector<double> threshold_;        ///< left iff x[feature] <= threshold
    /// Interleaved child pairs: kids_[2n] = left, kids_[2n+1] = right, so the
    /// comparison result selects the next node without a branch.  Leaves
    /// store their own id in both slots (a finished lane self-loops).
    std::vector<std::int32_t> kids_;
    std::vector<double> value_;            ///< leaf prediction (junk for internal)
    std::vector<std::int32_t> roots_;      ///< absolute root id per tree
    std::vector<std::int32_t> depth_;      ///< max root-to-leaf depth per tree
};

}  // namespace xnfv::ml
