#include "mlcore/serialize.hpp"

#include <fstream>
#include <istream>
#include <limits>
#include <ostream>
#include <stdexcept>

#include "mlcore/forest.hpp"
#include "mlcore/gbt.hpp"
#include "mlcore/linear.hpp"
#include "mlcore/mlp.hpp"
#include "mlcore/tree.hpp"

namespace xnfv::ml {

namespace {

constexpr int kFormatVersion = 1;

void write_doubles(std::ostream& os, std::span<const double> v) {
    os << v.size();
    for (double x : v) os << ' ' << x;
    os << '\n';
}

std::vector<double> read_doubles(std::istream& is, const char* who) {
    std::size_t n = 0;
    if (!(is >> n)) throw std::runtime_error(std::string(who) + ": bad vector length");
    std::vector<double> v(n);
    for (double& x : v)
        if (!(is >> x)) throw std::runtime_error(std::string(who) + ": bad vector value");
    return v;
}

void expect_token(std::istream& is, const std::string& expected, const char* who) {
    std::string token;
    if (!(is >> token) || token != expected)
        throw std::runtime_error(std::string(who) + ": expected '" + expected +
                                 "', got '" + token + "'");
}

std::ostream& full_precision(std::ostream& os) {
    os.precision(std::numeric_limits<double>::max_digits10);
    return os;
}

}  // namespace

// --- LinearRegression --------------------------------------------------------

void LinearRegression::save(std::ostream& os) const {
    full_precision(os) << "linreg " << intercept_ << '\n';
    write_doubles(os, coef_);
}

void LinearRegression::load(std::istream& is) {
    expect_token(is, "linreg", "LinearRegression::load");
    if (!(is >> intercept_))
        throw std::runtime_error("LinearRegression::load: bad intercept");
    coef_ = read_doubles(is, "LinearRegression::load");
}

// --- LogisticRegression -------------------------------------------------------

void LogisticRegression::save(std::ostream& os) const {
    full_precision(os) << "logreg " << intercept_ << '\n';
    write_doubles(os, coef_);
}

void LogisticRegression::load(std::istream& is) {
    expect_token(is, "logreg", "LogisticRegression::load");
    if (!(is >> intercept_))
        throw std::runtime_error("LogisticRegression::load: bad intercept");
    coef_ = read_doubles(is, "LogisticRegression::load");
}

// --- DecisionTree -------------------------------------------------------------

void DecisionTree::save(std::ostream& os) const {
    full_precision(os) << "tree " << num_features_ << ' '
                       << (task_ == Task::binary_classification ? 1 : 0) << ' '
                       << nodes_.size() << '\n';
    for (const TreeNode& n : nodes_)
        os << n.feature << ' ' << n.threshold << ' ' << n.left << ' ' << n.right << ' '
           << n.value << ' ' << n.cover << '\n';
    write_doubles(os, importance_raw_);
}

void DecisionTree::load(std::istream& is) {
    expect_token(is, "tree", "DecisionTree::load");
    std::size_t n_nodes = 0;
    int clf = 0;
    if (!(is >> num_features_ >> clf >> n_nodes))
        throw std::runtime_error("DecisionTree::load: bad header");
    task_ = clf ? Task::binary_classification : Task::regression;
    nodes_.assign(n_nodes, TreeNode{});
    for (TreeNode& n : nodes_) {
        if (!(is >> n.feature >> n.threshold >> n.left >> n.right >> n.value >> n.cover))
            throw std::runtime_error("DecisionTree::load: bad node");
        // Validate child indices to keep predict() crash-free on bad input.
        const auto check = [&](int child) {
            if (child >= 0 && static_cast<std::size_t>(child) >= n_nodes)
                throw std::runtime_error("DecisionTree::load: child index out of range");
        };
        if (!n.is_leaf()) {
            check(n.left);
            check(n.right);
            if (n.left < 0 || n.right < 0)
                throw std::runtime_error("DecisionTree::load: internal node missing child");
            if (static_cast<std::size_t>(n.feature) >= num_features_)
                throw std::runtime_error("DecisionTree::load: feature index out of range");
        }
    }
    importance_raw_ = read_doubles(is, "DecisionTree::load");
    if (importance_raw_.size() != num_features_)
        throw std::runtime_error("DecisionTree::load: importance size mismatch");
    rebuild_flat();
}

// --- RandomForest --------------------------------------------------------------

void RandomForest::save(std::ostream& os) const {
    full_precision(os) << "forest " << num_features_ << ' ' << trees_.size() << '\n';
    for (const DecisionTree& t : trees_) t.save(os);
}

void RandomForest::load(std::istream& is) {
    expect_token(is, "forest", "RandomForest::load");
    std::size_t n_trees = 0;
    if (!(is >> num_features_ >> n_trees))
        throw std::runtime_error("RandomForest::load: bad header");
    trees_.assign(n_trees, DecisionTree{});
    for (DecisionTree& t : trees_) t.load(is);
    rebuild_flat();
}

// --- GradientBoostedTrees -------------------------------------------------------

void GradientBoostedTrees::save(std::ostream& os) const {
    full_precision(os) << "gbt " << num_features_ << ' '
                       << (task_ == Task::binary_classification ? 1 : 0) << ' '
                       << base_score_ << ' ' << config_.learning_rate << ' '
                       << trees_.size() << '\n';
    for (const DecisionTree& t : trees_) t.save(os);
}

void GradientBoostedTrees::load(std::istream& is) {
    expect_token(is, "gbt", "GradientBoostedTrees::load");
    int clf = 0;
    std::size_t n_trees = 0;
    if (!(is >> num_features_ >> clf >> base_score_ >> config_.learning_rate >> n_trees))
        throw std::runtime_error("GradientBoostedTrees::load: bad header");
    task_ = clf ? Task::binary_classification : Task::regression;
    trees_.assign(n_trees, DecisionTree{});
    for (DecisionTree& t : trees_) t.load(is);
    rebuild_flat();
}

// --- Mlp -------------------------------------------------------------------------

void Mlp::save(std::ostream& os) const {
    full_precision(os) << "mlp " << num_inputs_ << ' '
                       << (task_ == Task::binary_classification ? 1 : 0) << ' '
                       << (config_.activation == Activation::relu ? "relu" : "tanh")
                       << ' ' << layers_.size() << '\n';
    for (const Layer& layer : layers_) {
        os << layer.in << ' ' << layer.out << '\n';
        write_doubles(os, layer.w);
        write_doubles(os, layer.b);
    }
}

void Mlp::load(std::istream& is) {
    expect_token(is, "mlp", "Mlp::load");
    int clf = 0;
    std::string act;
    std::size_t n_layers = 0;
    if (!(is >> num_inputs_ >> clf >> act >> n_layers))
        throw std::runtime_error("Mlp::load: bad header");
    task_ = clf ? Task::binary_classification : Task::regression;
    if (act == "relu") config_.activation = Activation::relu;
    else if (act == "tanh") config_.activation = Activation::tanh;
    else throw std::runtime_error("Mlp::load: unknown activation '" + act + "'");
    layers_.assign(n_layers, Layer{});
    config_.hidden_layers.clear();
    for (std::size_t li = 0; li < n_layers; ++li) {
        Layer& layer = layers_[li];
        if (!(is >> layer.in >> layer.out))
            throw std::runtime_error("Mlp::load: bad layer header");
        layer.w = read_doubles(is, "Mlp::load");
        layer.b = read_doubles(is, "Mlp::load");
        if (layer.w.size() != layer.in * layer.out || layer.b.size() != layer.out)
            throw std::runtime_error("Mlp::load: layer shape mismatch");
        // Optimizer state is not persisted; fresh zeros are fine for predict.
        layer.mw.assign(layer.w.size(), 0.0);
        layer.vw.assign(layer.w.size(), 0.0);
        layer.mb.assign(layer.b.size(), 0.0);
        layer.vb.assign(layer.b.size(), 0.0);
        if (li + 1 < n_layers) config_.hidden_layers.push_back(layer.out);
    }
    adam_step_ = 0;
}

// --- Tagged dispatch ---------------------------------------------------------------

void save_model(const Model& model, std::ostream& os) {
    full_precision(os) << "xnfv-model " << kFormatVersion << ' ' << model.name() << '\n';
    if (const auto* m = dynamic_cast<const LinearRegression*>(&model)) return m->save(os);
    if (const auto* m = dynamic_cast<const LogisticRegression*>(&model)) return m->save(os);
    if (const auto* m = dynamic_cast<const GradientBoostedTrees*>(&model)) return m->save(os);
    if (const auto* m = dynamic_cast<const RandomForest*>(&model)) return m->save(os);
    if (const auto* m = dynamic_cast<const DecisionTree*>(&model)) return m->save(os);
    if (const auto* m = dynamic_cast<const Mlp*>(&model)) return m->save(os);
    throw std::invalid_argument("save_model: unsupported model type '" + model.name() + "'");
}

void save_model_file(const Model& model, const std::string& path) {
    std::ofstream os(path);
    if (!os) throw std::runtime_error("save_model_file: cannot open " + path);
    save_model(model, os);
}

std::unique_ptr<Model> load_model(std::istream& is) {
    expect_token(is, "xnfv-model", "load_model");
    int version = 0;
    std::string tag;
    if (!(is >> version >> tag)) throw std::runtime_error("load_model: bad header");
    if (version != kFormatVersion)
        throw std::runtime_error("load_model: unsupported version " +
                                 std::to_string(version));
    const auto finish = [&](auto model) -> std::unique_ptr<Model> {
        model->load(is);
        return model;
    };
    if (tag == "linear_regression") return finish(std::make_unique<LinearRegression>());
    if (tag == "logistic_regression") return finish(std::make_unique<LogisticRegression>());
    if (tag == "decision_tree") return finish(std::make_unique<DecisionTree>());
    if (tag == "random_forest") return finish(std::make_unique<RandomForest>());
    if (tag == "gbt") return finish(std::make_unique<GradientBoostedTrees>());
    if (tag == "mlp") return finish(std::make_unique<Mlp>());
    throw std::runtime_error("load_model: unknown model tag '" + tag + "'");
}

std::unique_ptr<Model> load_model_file(const std::string& path) {
    std::ifstream is(path);
    if (!is) throw std::runtime_error("load_model_file: cannot open " + path);
    return load_model(is);
}

}  // namespace xnfv::ml
