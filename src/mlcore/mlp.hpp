// Multilayer perceptron trained with mini-batch Adam.
//
// Scalar output; MSE loss for regression, binary cross-entropy (with a
// sigmoid output) for classification.  Inputs should be standardized by the
// caller — the NFV pipelines do this with ml::Standardizer.
#pragma once

#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "mlcore/dataset.hpp"
#include "mlcore/model.hpp"
#include "mlcore/rng.hpp"

namespace xnfv::ml {

enum class Activation { relu, tanh };

class Mlp final : public Model {
public:
    struct Config {
        std::vector<std::size_t> hidden_layers{32, 32};
        Activation activation = Activation::relu;
        double learning_rate = 1e-3;
        double l2 = 1e-5;
        std::size_t batch_size = 32;
        int epochs = 100;
        /// Adam moment decay parameters.
        double beta1 = 0.9;
        double beta2 = 0.999;
    };

    Mlp() = default;
    explicit Mlp(Config config) : config_(std::move(config)) {}

    /// Trains from scratch; any previous weights are discarded.
    void fit(const Dataset& d, Rng& rng);

    /// Regression: output value.  Classification: sigmoid(output) probability.
    [[nodiscard]] double predict(std::span<const double> x) const override;
    /// Matrix-level forward pass reusing per-chunk activation scratch; the
    /// per-row arithmetic is identical to predict().
    void predict_batch(const Matrix& x, std::span<double> out) const override;
    using Model::predict_batch;
    [[nodiscard]] std::size_t num_features() const override { return num_inputs_; }
    [[nodiscard]] std::string name() const override { return "mlp"; }

    /// Analytic gradient of predict() with respect to the inputs (for
    /// classification this includes the sigmoid derivative, i.e. it is the
    /// gradient of the *probability*).  Exact up to floating point; the
    /// gradient-based explainers use this instead of finite differences.
    [[nodiscard]] std::vector<double> input_gradient(std::span<const double> x) const;

    /// Mean training loss of the final epoch (for convergence tests).
    [[nodiscard]] double final_train_loss() const noexcept { return final_loss_; }

    /// Serializes the fitted model as line-based text (see mlcore/serialize.hpp).
    void save(std::ostream& os) const;
    /// Restores state written by save(), replacing any current state.
    /// Throws std::runtime_error on malformed input.
    void load(std::istream& is);


private:
    /// One fully connected layer: weights (out x in), biases (out), plus Adam
    /// moment accumulators of matching shape.
    struct Layer {
        std::size_t in = 0, out = 0;
        std::vector<double> w, b;
        std::vector<double> mw, vw, mb, vb;  // Adam first/second moments
    };

    [[nodiscard]] double forward(std::span<const double> x,
                                 std::vector<std::vector<double>>* activations) const;
    /// forward() without activation recording, reusing caller-owned buffers
    /// (predict_batch's inner loop); same arithmetic as forward().
    [[nodiscard]] double forward_reuse(std::span<const double> x, std::vector<double>& cur,
                                       std::vector<double>& nxt) const;
    [[nodiscard]] double activate(double z) const noexcept;
    [[nodiscard]] double activate_grad(double a) const noexcept;

    Config config_{};
    std::vector<Layer> layers_;
    std::size_t num_inputs_ = 0;
    Task task_ = Task::regression;
    double final_loss_ = 0.0;
    long long adam_step_ = 0;
};

}  // namespace xnfv::ml
