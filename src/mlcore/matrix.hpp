// Minimal dense linear algebra used by the ML substrate and the XAI engine.
//
// The library needs only a handful of operations: row-major storage with
// cheap row views, matrix-vector and matrix-matrix products, transpose, and
// symmetric positive (semi-)definite solves for (weighted) least squares.
// Shapes are validated with exceptions rather than assertions because bad
// shapes are programmer-facing errors we want surfaced in Release builds too.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace xnfv::ml {

/// Dense row-major matrix of doubles.
class Matrix {
public:
    Matrix() = default;

    /// rows x cols matrix filled with `fill`.
    Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

    /// Builds from nested initializer-style data; all rows must be equal length.
    static Matrix from_rows(const std::vector<std::vector<double>>& rows);

    /// Identity matrix of size n.
    static Matrix identity(std::size_t n);

    [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
    [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
    [[nodiscard]] bool empty() const noexcept { return data_.empty(); }

    [[nodiscard]] double& operator()(std::size_t r, std::size_t c) noexcept {
        return data_[r * cols_ + c];
    }
    [[nodiscard]] double operator()(std::size_t r, std::size_t c) const noexcept {
        return data_[r * cols_ + c];
    }

    /// Mutable / immutable view of one row.
    [[nodiscard]] std::span<double> row(std::size_t r) noexcept {
        return {data_.data() + r * cols_, cols_};
    }
    [[nodiscard]] std::span<const double> row(std::size_t r) const noexcept {
        return {data_.data() + r * cols_, cols_};
    }

    /// Copies one column out.
    [[nodiscard]] std::vector<double> col(std::size_t c) const;

    /// Appends a row (must match cols(), or sets cols() if empty).
    void push_row(std::span<const double> values);

    /// Reshapes to rows x cols reusing existing capacity (shrinking never
    /// frees).  Element values are unspecified afterwards — this is the
    /// scratch-buffer primitive the explainers use to recycle probe
    /// matrices across coalition blocks without reallocating.
    void resize(std::size_t rows, std::size_t cols) {
        rows_ = rows;
        cols_ = cols;
        data_.resize(rows * cols);
    }

    /// Raw storage access (row-major).
    [[nodiscard]] std::span<const double> data() const noexcept { return data_; }
    [[nodiscard]] std::span<double> data() noexcept { return data_; }

    /// Matrix transpose.
    [[nodiscard]] Matrix transposed() const;

    /// this * other. Shapes must agree.
    [[nodiscard]] Matrix matmul(const Matrix& other) const;

    /// this * v. v.size() must equal cols().
    [[nodiscard]] std::vector<double> matvec(std::span<const double> v) const;

    /// Selects a subset of rows (indices may repeat; used for bootstrap).
    [[nodiscard]] Matrix take_rows(std::span<const std::size_t> indices) const;

    /// Selects a subset of columns.
    [[nodiscard]] Matrix take_cols(std::span<const std::size_t> indices) const;

    /// Human-readable dump (for debugging / small matrices).
    [[nodiscard]] std::string to_string(int precision = 4) const;

private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<double> data_;
};

/// Solves A x = b for symmetric positive definite A via Cholesky with a
/// diagonal jitter fallback (A is modified copies internally, inputs are
/// untouched).  Throws std::invalid_argument on shape mismatch and
/// std::runtime_error if A is not SPD even after jitter.
[[nodiscard]] std::vector<double> solve_spd(const Matrix& a, std::span<const double> b);

/// Solves the ridge-regularized weighted least squares problem
///     min_beta  sum_i w_i (x_i . beta - y_i)^2 + l2 * |beta|^2
/// where X is n x d, w and y are length n.  Returns beta of length d.
/// This is the work-horse of both LIME and KernelSHAP.
[[nodiscard]] std::vector<double> weighted_least_squares(
    const Matrix& x, std::span<const double> y, std::span<const double> w, double l2 = 0.0);

/// Dot product; sizes must match.
[[nodiscard]] double dot(std::span<const double> a, std::span<const double> b);

/// Euclidean norm.
[[nodiscard]] double norm2(std::span<const double> a);

/// Mean of a vector (0 for empty input).
[[nodiscard]] double mean(std::span<const double> a);

/// Population variance of a vector (0 for inputs shorter than 2).
[[nodiscard]] double variance(std::span<const double> a);

}  // namespace xnfv::ml
