#include "mlcore/flat_tree.hpp"

#include <algorithm>

#include "mlcore/tree.hpp"

namespace xnfv::ml {

void FlatEnsemble::clear() noexcept {
    feature_.clear();
    threshold_.clear();
    kids_.clear();
    value_.clear();
    roots_.clear();
    depth_.clear();
}

void FlatEnsemble::reserve(std::size_t trees, std::size_t nodes) {
    roots_.reserve(trees);
    depth_.reserve(trees);
    feature_.reserve(nodes);
    threshold_.reserve(nodes);
    kids_.reserve(2 * nodes);
    value_.reserve(nodes);
}

void FlatEnsemble::add_tree(std::span<const TreeNode> nodes) {
    const auto base = static_cast<std::int32_t>(feature_.size());
    roots_.push_back(base);
    for (const TreeNode& n : nodes) {
        const auto self = static_cast<std::int32_t>(feature_.size());
        feature_.push_back(n.feature);
        threshold_.push_back(n.threshold);
        // Leaves self-loop: a lane that has already reached its leaf can keep
        // "stepping" until the deepest lane finishes, without a branch.
        kids_.push_back(n.is_leaf() ? self : base + n.left);
        kids_.push_back(n.is_leaf() ? self : base + n.right);
        value_.push_back(n.value);
    }
    // Max root-to-leaf depth, iteratively (mutable_nodes() callers may hand
    // us trees whose node order no longer guarantees children-after-parent).
    std::int32_t max_depth = 0;
    std::vector<std::pair<std::int32_t, std::int32_t>> stack{{0, 0}};
    while (!stack.empty()) {
        const auto [id, d] = stack.back();
        stack.pop_back();
        const TreeNode& n = nodes[static_cast<std::size_t>(id)];
        if (n.is_leaf()) {
            max_depth = std::max(max_depth, d);
        } else {
            stack.emplace_back(n.left, d + 1);
            stack.emplace_back(n.right, d + 1);
        }
    }
    depth_.push_back(max_depth);
}

void FlatEnsemble::accumulate(const Matrix& x, std::size_t row_begin,
                              std::size_t row_end, double scale,
                              std::span<double> acc) const {
    const std::int32_t* const feat = feature_.data();
    const double* const thr = threshold_.data();
    const std::int32_t* const kids = kids_.data();
    const double* const val = value_.data();

    // Leaf feature ids are -1; masking the sign away yields a safe (and
    // irrelevant, because leaf children self-loop) row index, so a finished
    // lane can keep stepping without a branch.
    const auto safe = [](std::int32_t f) noexcept { return f & ~(f >> 31); };

    constexpr std::size_t kLanes = 8;
    for (std::size_t b0 = row_begin; b0 < row_end; b0 += kRowBlock) {
        const std::size_t b1 = std::min(b0 + kRowBlock, row_end);
        for (std::size_t t = 0; t < roots_.size(); ++t) {
            const std::int32_t root = roots_[t];
            const std::int32_t depth = depth_[t];
            std::size_t r = b0;
            // Eight independent descents in flight per tree: a single row's
            // traversal is a serial chain of data-dependent loads, so
            // interleaving rows is what fills the memory pipeline.  The step
            // count is the tree's max depth — a fixed trip count with a
            // branchless body (`!(x <= thr)` indexes the child pair, exactly
            // the scalar walk's comparison), so the random split outcomes
            // never touch the branch predictor.  Lanes that reach their leaf
            // early self-loop until the deepest lane lands.
            for (; r + kLanes <= b1; r += kLanes) {
                const double* rw[kLanes];
                std::int32_t n[kLanes];
                for (std::size_t k = 0; k < kLanes; ++k) {
                    rw[k] = x.row(r + k).data();
                    n[k] = root;
                }
                for (std::int32_t s = 0; s < depth; ++s)
                    for (std::size_t k = 0; k < kLanes; ++k)
                        n[k] = kids[2 * n[k] +
                                    static_cast<std::int32_t>(
                                        !(rw[k][safe(feat[n[k]])] <= thr[n[k]]))];
                for (std::size_t k = 0; k < kLanes; ++k)
                    acc[r + k - row_begin] += scale * val[n[k]];
            }
            for (; r < b1; ++r) {
                const double* const row = x.row(r).data();
                std::int32_t m = root;
                for (std::int32_t s = 0; s < depth; ++s)
                    m = kids[2 * m + static_cast<std::int32_t>(
                                         !(row[safe(feat[m])] <= thr[m]))];
                acc[r - row_begin] += scale * val[m];
            }
        }
    }
}

}  // namespace xnfv::ml
