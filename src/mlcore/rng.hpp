// Deterministic random number generation for the whole project.
//
// Everything in xnfv that needs randomness takes an explicit `Rng&` so that
// experiments are reproducible from a single seed.  The generator is
// xoshiro256** (Blackman & Vigna), seeded via SplitMix64, which is fast,
// has a 256-bit state and passes BigCrush.  We deliberately do not use
// std::mt19937 + std::*_distribution because their output is not guaranteed
// to be identical across standard library implementations; our distributions
// are implemented here so results are bit-stable everywhere.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

namespace xnfv::ml {

/// Deterministic 64-bit PRNG (xoshiro256**) with a self-contained set of
/// distribution samplers.  Copyable; copies evolve independently.
class Rng {
public:
    /// Seeds the four 64-bit state words from `seed` via SplitMix64.
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept { reseed(seed); }

    /// Re-initializes the state as if freshly constructed with `seed`.
    void reseed(std::uint64_t seed) noexcept;

    /// Next raw 64-bit value.
    [[nodiscard]] std::uint64_t next_u64() noexcept;

    /// Uniform double in [0, 1).
    [[nodiscard]] double uniform() noexcept;

    /// Uniform double in [lo, hi).
    [[nodiscard]] double uniform(double lo, double hi) noexcept;

    /// Uniform integer in [0, n).  n must be > 0.
    [[nodiscard]] std::size_t uniform_index(std::size_t n) noexcept;

    /// Uniform integer in [lo, hi] inclusive.
    [[nodiscard]] long long uniform_int(long long lo, long long hi) noexcept;

    /// Standard normal via Box–Muller (cached spare value).
    [[nodiscard]] double normal() noexcept;

    /// Normal with given mean and standard deviation.
    [[nodiscard]] double normal(double mean, double stddev) noexcept;

    /// Exponential with rate lambda (mean 1/lambda).
    [[nodiscard]] double exponential(double lambda) noexcept;

    /// Pareto (heavy tail) with scale x_m > 0 and shape alpha > 0.
    [[nodiscard]] double pareto(double x_m, double alpha) noexcept;

    /// Lognormal: exp(normal(mu, sigma)).
    [[nodiscard]] double lognormal(double mu, double sigma) noexcept;

    /// Poisson-distributed count with given mean (Knuth for small means,
    /// normal approximation above 64).
    [[nodiscard]] std::uint64_t poisson(double mean) noexcept;

    /// Bernoulli trial with success probability p.
    [[nodiscard]] bool bernoulli(double p) noexcept;

    /// Samples an index according to non-negative `weights` (need not be
    /// normalized).  Returns weights.size()-1 if all weights are zero.
    [[nodiscard]] std::size_t weighted_index(std::span<const double> weights) noexcept;

    /// In-place Fisher–Yates shuffle.
    template <typename T>
    void shuffle(std::vector<T>& v) noexcept {
        for (std::size_t i = v.size(); i > 1; --i) {
            using std::swap;
            swap(v[i - 1], v[uniform_index(i)]);
        }
    }

    /// k distinct indices drawn uniformly from [0, n) (partial Fisher–Yates).
    [[nodiscard]] std::vector<std::size_t> sample_without_replacement(std::size_t n, std::size_t k);

    /// Same draw sequence as above but refills `out` in place, reusing its
    /// capacity — for hot loops that sample every iteration.
    void sample_without_replacement(std::size_t n, std::size_t k, std::vector<std::size_t>& out);

    /// Derives an independent child generator; useful for giving each worker
    /// or each experiment repetition its own stream.
    [[nodiscard]] Rng split() noexcept;

    /// Stateless stream derivation keyed by (seed, stream_index): every call
    /// with the same pair yields an identical generator, independent of any
    /// Rng instance's state.  This is what the parallel loops use — task i
    /// draws from stream(call_seed, i), so its randomness does not depend on
    /// which thread runs it or in what order.
    [[nodiscard]] static Rng stream(std::uint64_t seed,
                                    std::uint64_t stream_index) noexcept;

private:
    std::uint64_t s_[4]{};
    double spare_normal_ = std::numeric_limits<double>::quiet_NaN();
    bool has_spare_ = false;
};

}  // namespace xnfv::ml
