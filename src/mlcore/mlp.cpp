#include "mlcore/mlp.hpp"

#include <cmath>
#include <numeric>
#include <stdexcept>

#include "core/parallel.hpp"
#include "mlcore/linear.hpp"  // sigmoid

namespace xnfv::ml {

double Mlp::activate(double z) const noexcept {
    return config_.activation == Activation::relu ? (z > 0.0 ? z : 0.0) : std::tanh(z);
}

// Derivative expressed in terms of the activation value `a` (both ReLU and
// tanh admit this form), which avoids storing pre-activations.
double Mlp::activate_grad(double a) const noexcept {
    return config_.activation == Activation::relu ? (a > 0.0 ? 1.0 : 0.0) : 1.0 - a * a;
}

void Mlp::fit(const Dataset& d, Rng& rng) {
    if (d.size() == 0) throw std::invalid_argument("Mlp::fit: empty dataset");
    d.validate();
    num_inputs_ = d.num_features();
    task_ = d.task;
    adam_step_ = 0;

    // Layer sizes: input -> hidden... -> 1.
    std::vector<std::size_t> sizes{num_inputs_};
    for (std::size_t h : config_.hidden_layers) {
        if (h == 0) throw std::invalid_argument("Mlp: zero-width hidden layer");
        sizes.push_back(h);
    }
    sizes.push_back(1);

    layers_.clear();
    for (std::size_t li = 0; li + 1 < sizes.size(); ++li) {
        Layer layer;
        layer.in = sizes[li];
        layer.out = sizes[li + 1];
        layer.w.resize(layer.in * layer.out);
        layer.b.assign(layer.out, 0.0);
        // He/Xavier-style initialization keyed to the activation.
        const double scale = config_.activation == Activation::relu
                                 ? std::sqrt(2.0 / static_cast<double>(layer.in))
                                 : std::sqrt(1.0 / static_cast<double>(layer.in));
        for (double& w : layer.w) w = rng.normal(0.0, scale);
        layer.mw.assign(layer.w.size(), 0.0);
        layer.vw.assign(layer.w.size(), 0.0);
        layer.mb.assign(layer.b.size(), 0.0);
        layer.vb.assign(layer.b.size(), 0.0);
        layers_.push_back(std::move(layer));
    }

    const std::size_t n = d.size();
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), std::size_t{0});

    // Per-layer gradient accumulators, allocated once.
    std::vector<std::vector<double>> gw(layers_.size()), gb(layers_.size());
    for (std::size_t li = 0; li < layers_.size(); ++li) {
        gw[li].assign(layers_[li].w.size(), 0.0);
        gb[li].assign(layers_[li].b.size(), 0.0);
    }

    std::vector<std::vector<double>> acts;  // activations[0] = input copy
    std::vector<std::vector<double>> delta(layers_.size());

    for (int epoch = 0; epoch < config_.epochs; ++epoch) {
        rng.shuffle(order);
        double epoch_loss = 0.0;
        std::size_t batch_start = 0;
        while (batch_start < n) {
            const std::size_t batch_end =
                std::min(batch_start + config_.batch_size, n);
            const double inv_batch =
                1.0 / static_cast<double>(batch_end - batch_start);
            for (auto& g : gw) std::fill(g.begin(), g.end(), 0.0);
            for (auto& g : gb) std::fill(g.begin(), g.end(), 0.0);

            for (std::size_t bi = batch_start; bi < batch_end; ++bi) {
                const std::size_t row = order[bi];
                const double out = forward(d.x.row(row), &acts);

                // dL/d(output) for MSE is (out - y); for BCE-with-sigmoid it
                // is (sigmoid(out) - y) — identical algebraic form.
                double dout;
                if (task_ == Task::binary_classification) {
                    const double p = sigmoid(out);
                    dout = p - d.y[row];
                    const double pc = std::clamp(p, 1e-12, 1.0 - 1e-12);
                    epoch_loss +=
                        d.y[row] > 0.5 ? -std::log(pc) : -std::log(1.0 - pc);
                } else {
                    dout = out - d.y[row];
                    epoch_loss += 0.5 * dout * dout;
                }

                // Backward pass.
                for (std::size_t li = layers_.size(); li-- > 0;) {
                    const Layer& layer = layers_[li];
                    auto& dl = delta[li];
                    if (li + 1 == layers_.size()) {
                        dl.assign(1, dout);
                    } else {
                        // delta = (W_next^T delta_next) * act'(a)
                        const Layer& next = layers_[li + 1];
                        const auto& dnext = delta[li + 1];
                        dl.assign(layer.out, 0.0);
                        for (std::size_t o = 0; o < next.out; ++o) {
                            const double dn = dnext[o];
                            for (std::size_t i2 = 0; i2 < next.in; ++i2)
                                dl[i2] += next.w[o * next.in + i2] * dn;
                        }
                        const auto& a = acts[li + 1];
                        for (std::size_t i2 = 0; i2 < layer.out; ++i2)
                            dl[i2] *= activate_grad(a[i2]);
                    }
                    const auto& input = acts[li];
                    for (std::size_t o = 0; o < layer.out; ++o) {
                        const double dv = dl[o];
                        gb[li][o] += dv;
                        for (std::size_t i2 = 0; i2 < layer.in; ++i2)
                            gw[li][o * layer.in + i2] += dv * input[i2];
                    }
                }
            }

            // Adam update.
            ++adam_step_;
            const double bc1 =
                1.0 - std::pow(config_.beta1, static_cast<double>(adam_step_));
            const double bc2 =
                1.0 - std::pow(config_.beta2, static_cast<double>(adam_step_));
            for (std::size_t li = 0; li < layers_.size(); ++li) {
                Layer& layer = layers_[li];
                auto update = [&](std::vector<double>& param, std::vector<double>& m,
                                  std::vector<double>& v, const std::vector<double>& g,
                                  bool weight_decay) {
                    for (std::size_t k = 0; k < param.size(); ++k) {
                        double grad = g[k] * inv_batch;
                        if (weight_decay) grad += config_.l2 * param[k];
                        m[k] = config_.beta1 * m[k] + (1.0 - config_.beta1) * grad;
                        v[k] = config_.beta2 * v[k] + (1.0 - config_.beta2) * grad * grad;
                        const double mhat = m[k] / bc1;
                        const double vhat = v[k] / bc2;
                        param[k] -= config_.learning_rate * mhat /
                                    (std::sqrt(vhat) + 1e-8);
                    }
                };
                update(layer.w, layer.mw, layer.vw, gw[li], /*weight_decay=*/true);
                update(layer.b, layer.mb, layer.vb, gb[li], /*weight_decay=*/false);
            }
            batch_start = batch_end;
        }
        final_loss_ = epoch_loss / static_cast<double>(n);
    }
}

double Mlp::forward(std::span<const double> x,
                    std::vector<std::vector<double>>* activations) const {
    if (activations) {
        activations->resize(layers_.size() + 1);
        (*activations)[0].assign(x.begin(), x.end());
    }
    std::vector<double> cur(x.begin(), x.end());
    std::vector<double> nxt;
    for (std::size_t li = 0; li < layers_.size(); ++li) {
        const Layer& layer = layers_[li];
        nxt.assign(layer.out, 0.0);
        for (std::size_t o = 0; o < layer.out; ++o) {
            double z = layer.b[o];
            const double* wrow = layer.w.data() + o * layer.in;
            for (std::size_t i = 0; i < layer.in; ++i) z += wrow[i] * cur[i];
            // The final (scalar) layer is linear; hidden layers use the
            // configured nonlinearity.
            nxt[o] = (li + 1 == layers_.size()) ? z : activate(z);
        }
        if (activations) (*activations)[li + 1] = nxt;
        cur.swap(nxt);
    }
    return cur[0];
}

double Mlp::forward_reuse(std::span<const double> x, std::vector<double>& cur,
                          std::vector<double>& nxt) const {
    // Mirrors forward(..., nullptr) expression-for-expression so the result
    // is bitwise identical; the only difference is buffer reuse.
    cur.assign(x.begin(), x.end());
    for (std::size_t li = 0; li < layers_.size(); ++li) {
        const Layer& layer = layers_[li];
        nxt.assign(layer.out, 0.0);
        for (std::size_t o = 0; o < layer.out; ++o) {
            double z = layer.b[o];
            const double* wrow = layer.w.data() + o * layer.in;
            for (std::size_t i = 0; i < layer.in; ++i) z += wrow[i] * cur[i];
            nxt[o] = (li + 1 == layers_.size()) ? z : activate(z);
        }
        cur.swap(nxt);
    }
    return cur[0];
}

std::vector<double> Mlp::input_gradient(std::span<const double> x) const {
    if (layers_.empty()) throw std::logic_error("Mlp::input_gradient before fit");
    if (x.size() != num_inputs_)
        throw std::invalid_argument("Mlp::input_gradient: size mismatch");

    std::vector<std::vector<double>> acts;
    const double out = forward(x, &acts);

    // Backward pass: delta over each layer's outputs, then one more
    // propagation step through the first layer's weights to the inputs.
    std::vector<double> delta{1.0};  // d(out)/d(out)
    if (task_ == Task::binary_classification) {
        const double p = sigmoid(out);
        delta[0] = p * (1.0 - p);  // chain through the output sigmoid
    }
    for (std::size_t li = layers_.size(); li-- > 0;) {
        const Layer& layer = layers_[li];
        std::vector<double> prev(layer.in, 0.0);
        for (std::size_t o = 0; o < layer.out; ++o) {
            const double dv = delta[o];
            if (dv == 0.0) continue;
            const double* wrow = layer.w.data() + o * layer.in;
            for (std::size_t i = 0; i < layer.in; ++i) prev[i] += wrow[i] * dv;
        }
        if (li > 0) {
            // Chain through the previous layer's activation function.
            const auto& a = acts[li];
            for (std::size_t i = 0; i < prev.size(); ++i) prev[i] *= activate_grad(a[i]);
        }
        delta = std::move(prev);
    }
    return delta;
}

double Mlp::predict(std::span<const double> x) const {
    if (layers_.empty()) throw std::logic_error("Mlp::predict before fit");
    if (x.size() != num_inputs_)
        throw std::invalid_argument("Mlp::predict: size mismatch");
    const double out = forward(x, nullptr);
    return task_ == Task::binary_classification ? sigmoid(out) : out;
}

void Mlp::predict_batch(const Matrix& x, std::span<double> out) const {
    if (x.rows() == 0) return;
    if (out.size() != x.rows())
        throw std::invalid_argument("Mlp::predict_batch: output size mismatch");
    if (layers_.empty()) throw std::logic_error("Mlp::predict before fit");
    if (x.cols() != num_inputs_)
        throw std::invalid_argument("Mlp::predict: size mismatch");
    const std::size_t threads = x.rows() < 64 ? 1 : 0;
    xnfv::parallel_for_chunks(x.rows(), threads, [&](std::size_t begin, std::size_t end) {
        std::vector<double> cur, nxt;
        for (std::size_t r = begin; r < end; ++r) {
            const double o = forward_reuse(x.row(r), cur, nxt);
            out[r] = task_ == Task::binary_classification ? sigmoid(o) : o;
        }
    });
}

}  // namespace xnfv::ml
