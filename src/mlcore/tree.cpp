#include "mlcore/tree.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>
#include <stdexcept>

#include "core/parallel.hpp"

namespace xnfv::ml {

namespace {

/// Impurity of a label multiset given its count, sum and sum of squares.
/// For regression this is the variance; for binary classification Gini
/// impurity 2p(1-p).  Both are computed from the same sufficient statistics.
double impurity(Task task, double n, double sum, double sum_sq) {
    if (n <= 0.0) return 0.0;
    const double mu = sum / n;
    if (task == Task::binary_classification) {
        return 2.0 * mu * (1.0 - mu);
    }
    return std::max(0.0, sum_sq / n - mu * mu);
}

}  // namespace

struct DecisionTree::BuildContext {
    const Dataset& d;
    Rng* rng;
    /// Scratch buffer reused across nodes for sorting row indices by feature.
    std::vector<std::size_t> scratch;
};

void DecisionTree::fit(const Dataset& d, Rng* rng) {
    std::vector<std::size_t> rows(d.size());
    std::iota(rows.begin(), rows.end(), std::size_t{0});
    fit_rows(d, rows, rng);
}

void DecisionTree::fit_rows(const Dataset& d, std::span<const std::size_t> rows, Rng* rng) {
    if (rows.empty()) throw std::invalid_argument("DecisionTree::fit: no rows");
    d.validate();
    nodes_.clear();
    num_features_ = d.num_features();
    task_ = d.task;
    importance_raw_.assign(num_features_, 0.0);
    if (config_.max_features > 0 && rng == nullptr)
        throw std::invalid_argument("DecisionTree::fit: max_features needs an Rng");

    BuildContext ctx{.d = d, .rng = rng, .scratch = {}};
    std::vector<std::size_t> mutable_rows(rows.begin(), rows.end());
    build_node(ctx, mutable_rows, 0);
    rebuild_flat();
}

void DecisionTree::rebuild_flat() {
    flat_.clear();
    if (!nodes_.empty()) {
        flat_.reserve(1, nodes_.size());
        flat_.add_tree(nodes_);
    }
}

int DecisionTree::build_node(BuildContext& ctx, std::vector<std::size_t>& rows, int depth) {
    const Dataset& d = ctx.d;
    const double n = static_cast<double>(rows.size());
    double sum = 0.0, sum_sq = 0.0;
    for (std::size_t r : rows) {
        sum += d.y[r];
        sum_sq += d.y[r] * d.y[r];
    }
    const double node_impurity = impurity(task_, n, sum, sum_sq);

    const int node_index = static_cast<int>(nodes_.size());
    nodes_.push_back(TreeNode{.value = sum / n, .cover = n});

    const bool can_split = depth < config_.max_depth &&
                           rows.size() >= config_.min_samples_split &&
                           node_impurity > 0.0;
    if (!can_split) return node_index;

    // Candidate features: all, or a random subset (forest mode).
    std::vector<std::size_t> features;
    if (config_.max_features > 0 && config_.max_features < num_features_) {
        features = ctx.rng->sample_without_replacement(num_features_, config_.max_features);
    } else {
        features.resize(num_features_);
        std::iota(features.begin(), features.end(), std::size_t{0});
    }

    // Exhaustive best-split search: for each candidate feature, sort the
    // node's rows by that feature and scan split points between distinct
    // values, tracking prefix label statistics.
    double best_gain = config_.min_impurity_decrease;
    std::size_t best_feature = 0;
    double best_threshold = 0.0;

    auto& sorted = ctx.scratch;
    for (std::size_t f : features) {
        sorted = rows;
        std::sort(sorted.begin(), sorted.end(), [&](std::size_t a, std::size_t b) {
            return d.x(a, f) < d.x(b, f);
        });
        double left_n = 0.0, left_sum = 0.0, left_sq = 0.0;
        for (std::size_t i = 0; i + 1 < sorted.size(); ++i) {
            const double yi = d.y[sorted[i]];
            left_n += 1.0;
            left_sum += yi;
            left_sq += yi * yi;
            const double xv = d.x(sorted[i], f);
            const double xnext = d.x(sorted[i + 1], f);
            if (xv == xnext) continue;  // can't split between equal values
            const std::size_t left_count = i + 1;
            const std::size_t right_count = sorted.size() - left_count;
            if (left_count < config_.min_samples_leaf ||
                right_count < config_.min_samples_leaf)
                continue;
            const double right_n = n - left_n;
            const double right_sum = sum - left_sum;
            const double right_sq = sum_sq - left_sq;
            const double gain =
                node_impurity - (left_n / n) * impurity(task_, left_n, left_sum, left_sq) -
                (right_n / n) * impurity(task_, right_n, right_sum, right_sq);
            if (gain > best_gain) {
                best_gain = gain;
                best_feature = f;
                // Midpoint threshold is robust to unseen values between the
                // two training points.
                best_threshold = 0.5 * (xv + xnext);
            }
        }
    }

    if (best_gain <= config_.min_impurity_decrease) return node_index;

    std::vector<std::size_t> left_rows, right_rows;
    left_rows.reserve(rows.size());
    right_rows.reserve(rows.size());
    for (std::size_t r : rows) {
        (d.x(r, best_feature) <= best_threshold ? left_rows : right_rows).push_back(r);
    }
    // Defensive: a degenerate partition means the threshold failed to
    // separate anything (can only happen with NaN inputs); keep the leaf.
    if (left_rows.empty() || right_rows.empty()) return node_index;

    rows.clear();
    rows.shrink_to_fit();  // release before recursing to bound peak memory

    importance_raw_[best_feature] += n * best_gain;
    const int left_child = build_node(ctx, left_rows, depth + 1);
    const int right_child = build_node(ctx, right_rows, depth + 1);
    TreeNode& me = nodes_[node_index];
    me.feature = static_cast<int>(best_feature);
    me.threshold = best_threshold;
    me.left = left_child;
    me.right = right_child;
    return node_index;
}

double DecisionTree::predict(std::span<const double> x) const {
    return nodes_[leaf_index(x)].value;
}

void DecisionTree::predict_batch(const Matrix& x, std::span<double> out) const {
    if (x.rows() == 0) return;
    if (out.size() != x.rows())
        throw std::invalid_argument("DecisionTree::predict_batch: output size mismatch");
    if (nodes_.empty()) throw std::logic_error("DecisionTree::predict before fit");
    if (x.cols() != num_features_)
        throw std::invalid_argument("DecisionTree::predict: size mismatch");
    if (flat_.empty()) {  // stale after mutable_nodes(); scalar path is still correct
        Model::predict_batch(x, out);
        return;
    }
    const std::size_t threads = x.rows() < 64 ? 1 : 0;
    xnfv::parallel_for_chunks(x.rows(), threads, [&](std::size_t begin, std::size_t end) {
        auto slice = out.subspan(begin, end - begin);
        std::fill(slice.begin(), slice.end(), 0.0);
        flat_.accumulate(x, begin, end, 1.0, slice);
    });
}

std::size_t DecisionTree::leaf_index(std::span<const double> x) const {
    if (nodes_.empty()) throw std::logic_error("DecisionTree::predict before fit");
    if (x.size() != num_features_)
        throw std::invalid_argument("DecisionTree::predict: size mismatch");
    std::size_t idx = 0;
    while (!nodes_[idx].is_leaf()) {
        const TreeNode& nd = nodes_[idx];
        idx = static_cast<std::size_t>(
            x[static_cast<std::size_t>(nd.feature)] <= nd.threshold ? nd.left : nd.right);
    }
    return idx;
}

int DecisionTree::depth() const noexcept {
    if (nodes_.empty()) return 0;
    // Iterative depth computation over the flat array.
    std::vector<std::pair<std::size_t, int>> stack{{0, 1}};
    int best = 0;
    while (!stack.empty()) {
        const auto [idx, dep] = stack.back();
        stack.pop_back();
        best = std::max(best, dep);
        const TreeNode& nd = nodes_[idx];
        if (!nd.is_leaf()) {
            stack.emplace_back(static_cast<std::size_t>(nd.left), dep + 1);
            stack.emplace_back(static_cast<std::size_t>(nd.right), dep + 1);
        }
    }
    return best - 1;  // root alone = depth 0
}

std::size_t DecisionTree::num_leaves() const noexcept {
    std::size_t leaves = 0;
    for (const auto& nd : nodes_) leaves += nd.is_leaf() ? 1 : 0;
    return leaves;
}

std::vector<double> DecisionTree::feature_importances() const {
    std::vector<double> out = importance_raw_;
    double total = 0.0;
    for (double v : out) total += v;
    if (total > 0.0)
        for (double& v : out) v /= total;
    return out;
}

std::string DecisionTree::to_text(std::span<const std::string> names) const {
    std::ostringstream os;
    os.precision(4);
    auto fname = [&](int f) {
        const auto idx = static_cast<std::size_t>(f);
        return idx < names.size() ? names[idx] : "x[" + std::to_string(f) + "]";
    };
    std::vector<std::pair<std::size_t, int>> stack{{0, 0}};
    // Depth-first, right child pushed first so the left branch prints first.
    std::vector<std::tuple<std::size_t, int, bool>> work{{0, 0, false}};
    work.clear();
    work.emplace_back(0, 0, true);
    while (!work.empty()) {
        auto [idx, indent, is_left] = work.back();
        work.pop_back();
        for (int i = 0; i < indent; ++i) os << "  ";
        const TreeNode& nd = nodes_[idx];
        if (nd.is_leaf()) {
            os << "leaf value=" << nd.value << " cover=" << nd.cover << '\n';
        } else {
            os << fname(nd.feature) << " <= " << nd.threshold << " ? (cover=" << nd.cover
               << ")\n";
            work.emplace_back(static_cast<std::size_t>(nd.right), indent + 1, false);
            work.emplace_back(static_cast<std::size_t>(nd.left), indent + 1, true);
        }
        (void)is_left;
    }
    return os.str();
}

}  // namespace xnfv::ml
