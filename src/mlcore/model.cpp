#include "mlcore/model.hpp"

namespace xnfv::ml {

std::vector<double> Model::predict_batch(const Matrix& x) const {
    std::vector<double> out;
    out.reserve(x.rows());
    for (std::size_t r = 0; r < x.rows(); ++r) out.push_back(predict(x.row(r)));
    return out;
}

}  // namespace xnfv::ml
