#include "mlcore/model.hpp"

#include <stdexcept>

#include "core/parallel.hpp"

namespace xnfv::ml {

void Model::predict_batch(const Matrix& x, std::span<double> out) const {
    // Rows are independent and predict() is const/thread-safe for every
    // model family, so the default batch path is row-parallel; each task
    // writes only its own output slot, keeping results identical for any
    // thread count.  Tiny batches stay inline to avoid pool overhead.
    if (x.rows() == 0) return;
    if (out.size() != x.rows())
        throw std::invalid_argument("Model::predict_batch: output size mismatch");
    const std::size_t threads = x.rows() < 64 ? 1 : 0;  // 0 = default_threads()
    xnfv::parallel_for(x.rows(), threads, [&](std::size_t r) { out[r] = predict(x.row(r)); });
}

std::vector<double> Model::predict_batch(const Matrix& x) const {
    std::vector<double> out(x.rows());
    predict_batch(x, std::span<double>(out));
    return out;
}

}  // namespace xnfv::ml
