// Model persistence: line-based, human-inspectable text format.
//
// Every trainable model implements save()/load(); these free functions add
// a type tag so a model can be restored without knowing its concrete type —
// the "train once, explain later" workflow of the xnfv CLI.
//
// Format sketch (whitespace separated, max-precision doubles):
//     xnfv-model 1 random_forest
//     <payload written by RandomForest::save>
//
// The format stores *inference* state only (weights, trees, link), not
// optimizer state or training configuration: a loaded model predicts
// identically but cannot resume training.
#pragma once

#include <iosfwd>
#include <memory>
#include <string>

#include "mlcore/model.hpp"

namespace xnfv::ml {

/// Writes `model` with a type tag.  Supported: linear_regression,
/// logistic_regression, decision_tree, random_forest, gbt, mlp.  Throws
/// std::invalid_argument for unsupported model types (e.g. LambdaModel).
void save_model(const Model& model, std::ostream& os);
void save_model_file(const Model& model, const std::string& path);

/// Restores a model written by save_model.  Throws std::runtime_error on
/// malformed input or unknown tags.
[[nodiscard]] std::unique_ptr<Model> load_model(std::istream& is);
[[nodiscard]] std::unique_ptr<Model> load_model_file(const std::string& path);

}  // namespace xnfv::ml
