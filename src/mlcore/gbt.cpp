#include "mlcore/gbt.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "core/parallel.hpp"
#include "mlcore/linear.hpp"  // sigmoid

namespace xnfv::ml {

void GradientBoostedTrees::fit(const Dataset& d, Rng& rng) {
    if (d.size() == 0) throw std::invalid_argument("GBT::fit: empty dataset");
    d.validate();
    num_features_ = d.num_features();
    task_ = d.task;
    trees_.clear();
    trees_.reserve(config_.num_rounds);

    const std::size_t n = d.size();

    // Base score: mean for regression, prior log-odds for classification.
    if (task_ == Task::binary_classification) {
        double pos = 0.0;
        for (double v : d.y) pos += v;
        const double p = std::clamp(pos / static_cast<double>(n), 1e-6, 1.0 - 1e-6);
        base_score_ = std::log(p / (1.0 - p));
    } else {
        double sum = 0.0;
        for (double v : d.y) sum += v;
        base_score_ = sum / static_cast<double>(n);
    }

    std::vector<double> margin(n, base_score_);

    // Working dataset whose labels are replaced by pseudo-residuals each
    // round.  Declared as regression so the trees split on variance.
    Dataset work;
    work.task = Task::regression;
    work.feature_names = d.feature_names;
    work.x = d.x;
    work.y.assign(n, 0.0);

    const auto n_sub = std::max<std::size_t>(
        1, static_cast<std::size_t>(config_.subsample * static_cast<double>(n)));

    for (std::size_t round = 0; round < config_.num_rounds; ++round) {
        // Negative gradient of the loss w.r.t. the margin.
        for (std::size_t i = 0; i < n; ++i) {
            if (task_ == Task::binary_classification) {
                work.y[i] = d.y[i] - sigmoid(margin[i]);
            } else {
                work.y[i] = d.y[i] - margin[i];
            }
        }

        Rng tree_rng = rng.split();
        std::vector<std::size_t> rows;
        if (n_sub < n) {
            rows = tree_rng.sample_without_replacement(n, n_sub);
        } else {
            rows.resize(n);
            std::iota(rows.begin(), rows.end(), std::size_t{0});
        }

        DecisionTree tree(config_.tree);
        tree.fit_rows(work, rows, config_.tree.max_features > 0 ? &tree_rng : nullptr);

        if (task_ == Task::binary_classification) {
            // Newton leaf refinement: leaf value = sum(g) / sum(h) with
            // g = y - p and h = p(1-p), computed over the fitted rows.
            auto& nodes = tree.mutable_nodes();
            std::vector<double> g_sum(nodes.size(), 0.0);
            std::vector<double> h_sum(nodes.size(), 0.0);
            for (std::size_t r : rows) {
                const std::size_t leaf = tree.leaf_index(d.x.row(r));
                const double p = sigmoid(margin[r]);
                g_sum[leaf] += d.y[r] - p;
                h_sum[leaf] += std::max(p * (1.0 - p), 1e-12);
            }
            for (std::size_t li = 0; li < nodes.size(); ++li) {
                if (nodes[li].is_leaf() && h_sum[li] > 0.0)
                    nodes[li].value = g_sum[li] / h_sum[li];
            }
        }

        for (std::size_t i = 0; i < n; ++i)
            margin[i] += config_.learning_rate * tree.predict(d.x.row(i));
        trees_.push_back(std::move(tree));
    }
    rebuild_flat();
}

void GradientBoostedTrees::rebuild_flat() {
    flat_.clear();
    std::size_t total_nodes = 0;
    for (const auto& t : trees_) total_nodes += t.nodes().size();
    flat_.reserve(trees_.size(), total_nodes);
    for (const auto& t : trees_) flat_.add_tree(t.nodes());
}

double GradientBoostedTrees::predict_margin(std::span<const double> x) const {
    if (trees_.empty()) throw std::logic_error("GBT::predict before fit");
    double m = base_score_;
    for (const auto& t : trees_) m += config_.learning_rate * t.predict(x);
    return m;
}

double GradientBoostedTrees::predict(std::span<const double> x) const {
    const double m = predict_margin(x);
    return task_ == Task::binary_classification ? sigmoid(m) : m;
}

void GradientBoostedTrees::predict_batch(const Matrix& x, std::span<double> out) const {
    if (x.rows() == 0) return;
    if (out.size() != x.rows())
        throw std::invalid_argument("GBT::predict_batch: output size mismatch");
    if (trees_.empty()) throw std::logic_error("GBT::predict before fit");
    if (x.cols() != num_features_)
        throw std::invalid_argument("DecisionTree::predict: size mismatch");
    const std::size_t threads = x.rows() < 64 ? 1 : 0;
    xnfv::parallel_for_chunks(x.rows(), threads, [&](std::size_t begin, std::size_t end) {
        auto slice = out.subspan(begin, end - begin);
        std::fill(slice.begin(), slice.end(), base_score_);
        // acc += learning_rate * leaf, tree by tree — the same expression
        // and order as the scalar predict_margin() loop.
        flat_.accumulate(x, begin, end, config_.learning_rate, slice);
        if (task_ == Task::binary_classification)
            for (double& v : slice) v = sigmoid(v);
    });
}

std::vector<double> GradientBoostedTrees::feature_importances() const {
    std::vector<double> acc(num_features_, 0.0);
    for (const auto& t : trees_) {
        const auto imp = t.feature_importances();
        for (std::size_t i = 0; i < acc.size(); ++i) acc[i] += imp[i];
    }
    double total = 0.0;
    for (double v : acc) total += v;
    if (total > 0.0)
        for (double& v : acc) v /= total;
    return acc;
}

}  // namespace xnfv::ml
