// CART decision trees (regression and binary classification).
//
// The tree exposes its full node structure (feature, threshold, children,
// leaf value, training cover) because the XAI engine's TreeSHAP-style
// explainer computes conditional expectations by walking it directly.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "mlcore/dataset.hpp"
#include "mlcore/flat_tree.hpp"
#include "mlcore/model.hpp"
#include "mlcore/rng.hpp"

namespace xnfv::ml {

/// One node of a binary decision tree, stored in a flat vector.
/// Internal nodes route left when x[feature] <= threshold.
struct TreeNode {
    int feature = -1;        ///< split feature; -1 marks a leaf
    double threshold = 0.0;  ///< split threshold (left: x[f] <= threshold)
    int left = -1;           ///< index of left child in the node vector
    int right = -1;          ///< index of right child
    double value = 0.0;      ///< prediction at this node (mean label of cover)
    double cover = 0.0;      ///< number of training samples that reached the node

    [[nodiscard]] bool is_leaf() const noexcept { return feature < 0; }
};

/// CART tree.  For binary classification the leaf value is the positive-class
/// fraction, so predict() returns a probability; splits minimize Gini
/// impurity, which for binary labels coincides with variance reduction up to
/// a constant factor but is computed in its own right for clarity.
class DecisionTree final : public Model {
public:
    struct Config {
        int max_depth = 8;
        std::size_t min_samples_leaf = 5;
        std::size_t min_samples_split = 10;
        /// Number of features considered per split; 0 means all.  Used by
        /// random forests for decorrelation.
        std::size_t max_features = 0;
        /// Minimum impurity decrease required to accept a split.
        double min_impurity_decrease = 1e-12;
    };

    DecisionTree() = default;
    explicit DecisionTree(Config config) : config_(config) {}

    /// Fits the tree.  `rng` is only consulted when max_features > 0.
    void fit(const Dataset& d, Rng* rng = nullptr);

    /// Fits on an explicit subset of rows (bootstrap support for forests).
    void fit_rows(const Dataset& d, std::span<const std::size_t> rows, Rng* rng = nullptr);

    [[nodiscard]] double predict(std::span<const double> x) const override;
    /// Blocked inference over the flattened node arrays (see flat_tree.hpp);
    /// bitwise identical to the per-row predict() loop.
    void predict_batch(const Matrix& x, std::span<double> out) const override;
    using Model::predict_batch;
    [[nodiscard]] std::size_t num_features() const override { return num_features_; }
    [[nodiscard]] std::string name() const override { return "decision_tree"; }

    /// Index of the leaf reached by x (for tests / surrogate printing).
    [[nodiscard]] std::size_t leaf_index(std::span<const double> x) const;

    /// Flat node array; node 0 is the root.  Empty before fit().
    [[nodiscard]] const std::vector<TreeNode>& nodes() const noexcept { return nodes_; }

    /// Mutable node access.  Exists so gradient boosting can refine leaf
    /// values with a Newton step after the structure is grown; do not alter
    /// the topology through this.  Invalidates the flattened inference cache
    /// (predict_batch falls back to the scalar loop until the next
    /// fit()/load()); callers owning the tree may call rebuild_flat() after
    /// their edits to restore the fast path.
    [[nodiscard]] std::vector<TreeNode>& mutable_nodes() noexcept {
        flat_.clear();
        return nodes_;
    }

    /// Re-derives the flattened SoA arrays from nodes().  Called internally
    /// by fit()/load(); public only for callers that edited mutable_nodes().
    void rebuild_flat();

    [[nodiscard]] int depth() const noexcept;
    [[nodiscard]] std::size_t num_leaves() const noexcept;

    /// Impurity-decrease feature importances, normalized to sum to 1
    /// (all-zero if the tree is a stump with no splits).
    [[nodiscard]] std::vector<double> feature_importances() const;

    /// Renders an indented text form of the tree using `names` (may be empty).
    [[nodiscard]] std::string to_text(std::span<const std::string> names = {}) const;

    /// Serializes the fitted model as line-based text (see mlcore/serialize.hpp).
    void save(std::ostream& os) const;
    /// Restores state written by save(), replacing any current state.
    /// Throws std::runtime_error on malformed input.
    void load(std::istream& is);


private:
    struct BuildContext;
    int build_node(BuildContext& ctx, std::vector<std::size_t>& rows, int depth);

    Config config_{};
    std::vector<TreeNode> nodes_;
    FlatEnsemble flat_;  ///< SoA mirror of nodes_ for blocked inference
    std::size_t num_features_ = 0;
    Task task_ = Task::regression;
    std::vector<double> importance_raw_;
};

}  // namespace xnfv::ml
