#include "mlcore/dataset.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace xnfv::ml {

void Dataset::validate() const {
    if (x.rows() != y.size())
        throw std::invalid_argument("Dataset: x.rows() != y.size()");
    if (!feature_names.empty() && feature_names.size() != x.cols())
        throw std::invalid_argument("Dataset: feature_names size != x.cols()");
    if (task == Task::binary_classification)
        for (double v : y)
            if (v != 0.0 && v != 1.0)
                throw std::invalid_argument("Dataset: classification labels must be 0/1");
}

void Dataset::add(std::span<const double> features, double label) {
    x.push_row(features);
    y.push_back(label);
}

std::vector<double> Dataset::feature_means() const {
    std::vector<double> m(num_features(), 0.0);
    if (size() == 0) return m;
    for (std::size_t r = 0; r < x.rows(); ++r) {
        const auto row = x.row(r);
        for (std::size_t c = 0; c < m.size(); ++c) m[c] += row[c];
    }
    for (double& v : m) v /= static_cast<double>(size());
    return m;
}

std::vector<double> Dataset::feature_stddevs() const {
    std::vector<double> sd(num_features(), 0.0);
    if (size() < 2) return sd;
    const auto m = feature_means();
    for (std::size_t r = 0; r < x.rows(); ++r) {
        const auto row = x.row(r);
        for (std::size_t c = 0; c < sd.size(); ++c) {
            const double dlt = row[c] - m[c];
            sd[c] += dlt * dlt;
        }
    }
    for (double& v : sd) v = std::sqrt(v / static_cast<double>(size()));
    return sd;
}

std::vector<std::pair<double, double>> Dataset::feature_ranges() const {
    std::vector<std::pair<double, double>> out(
        num_features(),
        {std::numeric_limits<double>::infinity(), -std::numeric_limits<double>::infinity()});
    for (std::size_t r = 0; r < x.rows(); ++r) {
        const auto row = x.row(r);
        for (std::size_t c = 0; c < out.size(); ++c) {
            out[c].first = std::min(out[c].first, row[c]);
            out[c].second = std::max(out[c].second, row[c]);
        }
    }
    return out;
}

Dataset Dataset::subset(std::span<const std::size_t> indices) const {
    Dataset out;
    out.task = task;
    out.feature_names = feature_names;
    out.x = x.take_rows(indices);
    out.y.reserve(indices.size());
    for (std::size_t i : indices) out.y.push_back(y.at(i));
    return out;
}

double Dataset::positive_rate() const {
    if (y.empty()) return 0.0;
    double pos = 0.0;
    for (double v : y) pos += (v > 0.5) ? 1.0 : 0.0;
    return pos / static_cast<double>(y.size());
}

TrainTestSplit train_test_split(const Dataset& d, double test_fraction, Rng& rng) {
    if (test_fraction <= 0.0 || test_fraction >= 1.0)
        throw std::invalid_argument("train_test_split: fraction must be in (0,1)");
    std::vector<std::size_t> idx(d.size());
    for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
    rng.shuffle(idx);
    const auto n_test = static_cast<std::size_t>(
        std::round(test_fraction * static_cast<double>(d.size())));
    const std::span<const std::size_t> all{idx};
    return TrainTestSplit{
        .train = d.subset(all.subspan(n_test)),
        .test = d.subset(all.first(n_test)),
    };
}

void write_csv(const Dataset& d, std::ostream& os) {
    for (std::size_t c = 0; c < d.num_features(); ++c) {
        const std::string name =
            c < d.feature_names.size() ? d.feature_names[c] : "f" + std::to_string(c);
        os << name << ',';
    }
    os << "label\n";
    os.precision(10);
    for (std::size_t r = 0; r < d.size(); ++r) {
        const auto row = d.x.row(r);
        for (double v : row) os << v << ',';
        os << d.y[r] << '\n';
    }
}

void write_csv_file(const Dataset& d, const std::string& path) {
    std::ofstream os(path);
    if (!os) throw std::runtime_error("write_csv_file: cannot open " + path);
    write_csv(d, os);
}

Dataset read_csv(std::istream& is, Task task) {
    Dataset d;
    d.task = task;
    std::string line;
    if (!std::getline(is, line)) throw std::runtime_error("read_csv: empty input");

    // Header row: everything up to the last column is a feature name.
    {
        std::stringstream ss(line);
        std::string cell;
        std::vector<std::string> names;
        while (std::getline(ss, cell, ',')) names.push_back(cell);
        if (names.size() < 2) throw std::runtime_error("read_csv: need >= 2 columns");
        names.pop_back();  // drop "label"
        d.feature_names = std::move(names);
    }

    std::vector<double> row;
    std::size_t line_no = 1;
    while (std::getline(is, line)) {
        ++line_no;
        if (line.empty()) continue;
        row.clear();
        std::stringstream ss(line);
        std::string cell;
        while (std::getline(ss, cell, ',')) {
            try {
                row.push_back(std::stod(cell));
            } catch (const std::exception&) {
                throw std::runtime_error("read_csv: bad number at line " +
                                         std::to_string(line_no));
            }
        }
        if (row.size() != d.feature_names.size() + 1)
            throw std::runtime_error("read_csv: wrong column count at line " +
                                     std::to_string(line_no));
        const double label = row.back();
        row.pop_back();
        d.add(row, label);
    }
    d.validate();
    return d;
}

Dataset read_csv_file(const std::string& path, Task task) {
    std::ifstream is(path);
    if (!is) throw std::runtime_error("read_csv_file: cannot open " + path);
    return read_csv(is, task);
}

}  // namespace xnfv::ml
