// k-fold cross-validation over any trainable model.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "mlcore/dataset.hpp"
#include "mlcore/model.hpp"
#include "mlcore/rng.hpp"

namespace xnfv::ml {

/// Result of one cross-validation run: one score per fold.
struct CvResult {
    std::vector<double> fold_scores;

    [[nodiscard]] double mean() const;
    [[nodiscard]] double stddev() const;
};

/// Trains via `fit` on each training fold and scores via `score` on the held
/// out fold.  `fit(train)` must return a model ready to predict; `score`
/// receives (model, test_fold) and returns a scalar (higher = better by
/// convention of the caller).  Folds are shuffled with `rng`.
[[nodiscard]] CvResult k_fold_cv(
    const Dataset& d, std::size_t k, Rng& rng,
    const std::function<std::unique_ptr<Model>(const Dataset&)>& fit,
    const std::function<double(const Model&, const Dataset&)>& score);

}  // namespace xnfv::ml
