#include "mlcore/rng.hpp"

#include <cmath>
#include <numbers>

namespace xnfv::ml {

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
}

/// SplitMix64 step: used only for seeding.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
    state += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

}  // namespace

void Rng::reseed(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : s_) word = splitmix64(sm);
    // All-zero state is the one invalid state for xoshiro; splitmix64 cannot
    // produce four zero outputs in a row, but be defensive anyway.
    if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
    has_spare_ = false;
}

std::uint64_t Rng::next_u64() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

double Rng::uniform() noexcept {
    // 53 random mantissa bits -> uniform in [0, 1).
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
}

namespace {
// 128-bit multiply for Lemire's multiply-shift range mapping; the GCC/Clang
// extension is wrapped so -Wpedantic stays clean.
__extension__ using uint128 = unsigned __int128;
}  // namespace

std::size_t Rng::uniform_index(std::size_t n) noexcept {
    // Lemire's multiply-shift rejection-free mapping has negligible bias for
    // the n values used here; keep the simple multiply-shift form.
    return static_cast<std::size_t>((static_cast<uint128>(next_u64()) * n) >> 64);
}

long long Rng::uniform_int(long long lo, long long hi) noexcept {
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<long long>((static_cast<uint128>(next_u64()) * span) >> 64);
}

double Rng::normal() noexcept {
    if (has_spare_) {
        has_spare_ = false;
        return spare_normal_;
    }
    // Box–Muller; u1 is kept away from 0 so log() is finite.
    double u1 = uniform();
    if (u1 < 1e-300) u1 = 1e-300;
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * std::numbers::pi * u2;
    spare_normal_ = r * std::sin(theta);
    has_spare_ = true;
    return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) noexcept {
    return mean + stddev * normal();
}

double Rng::exponential(double lambda) noexcept {
    double u = uniform();
    if (u < 1e-300) u = 1e-300;
    return -std::log(u) / lambda;
}

double Rng::pareto(double x_m, double alpha) noexcept {
    double u = uniform();
    if (u < 1e-300) u = 1e-300;
    return x_m / std::pow(u, 1.0 / alpha);
}

double Rng::lognormal(double mu, double sigma) noexcept {
    return std::exp(normal(mu, sigma));
}

std::uint64_t Rng::poisson(double mean) noexcept {
    if (mean <= 0.0) return 0;
    if (mean > 64.0) {
        // Normal approximation with continuity correction; adequate for the
        // traffic-generation use case (counts per interval).
        const double v = normal(mean, std::sqrt(mean));
        return v <= 0.0 ? 0 : static_cast<std::uint64_t>(v + 0.5);
    }
    const double limit = std::exp(-mean);
    double prod = uniform();
    std::uint64_t k = 0;
    while (prod > limit) {
        ++k;
        prod *= uniform();
    }
    return k;
}

bool Rng::bernoulli(double p) noexcept {
    return uniform() < p;
}

std::size_t Rng::weighted_index(std::span<const double> weights) noexcept {
    double total = 0.0;
    for (double w : weights) total += w > 0.0 ? w : 0.0;
    if (total <= 0.0) return weights.empty() ? 0 : weights.size() - 1;
    double target = uniform() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        const double w = weights[i] > 0.0 ? weights[i] : 0.0;
        if (target < w) return i;
        target -= w;
    }
    return weights.size() - 1;
}

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n, std::size_t k) {
    std::vector<std::size_t> pool;
    sample_without_replacement(n, k, pool);
    return pool;
}

void Rng::sample_without_replacement(std::size_t n, std::size_t k,
                                     std::vector<std::size_t>& out) {
    if (k > n) k = n;
    out.resize(n);  // the full pool doubles as scratch for the partial shuffle
    for (std::size_t i = 0; i < n; ++i) out[i] = i;
    for (std::size_t i = 0; i < k; ++i) {
        const std::size_t j = i + uniform_index(n - i);
        std::swap(out[i], out[j]);
    }
    out.resize(k);
}

Rng Rng::split() noexcept {
    return Rng{next_u64() ^ 0xd1b54a32d192ed03ULL};
}

Rng Rng::stream(std::uint64_t seed, std::uint64_t stream_index) noexcept {
    // Two SplitMix64 rounds over the (seed, index) pair decorrelate adjacent
    // stream indices; the Rng constructor applies further SplitMix rounds on
    // top, so even stream(0, 0) and stream(0, 1) share no state structure.
    std::uint64_t state = seed;
    const std::uint64_t a = splitmix64(state);
    state ^= (stream_index + 1) * 0x9e3779b97f4a7c15ULL;
    const std::uint64_t b = splitmix64(state);
    return Rng{a ^ b};
}

}  // namespace xnfv::ml
