// Evaluation metrics for regression and binary classification.
#pragma once

#include <cstddef>
#include <span>

namespace xnfv::ml {

// --- Regression ------------------------------------------------------------

[[nodiscard]] double mse(std::span<const double> y_true, std::span<const double> y_pred);
[[nodiscard]] double rmse(std::span<const double> y_true, std::span<const double> y_pred);
[[nodiscard]] double mae(std::span<const double> y_true, std::span<const double> y_pred);

/// Coefficient of determination; 1 is perfect, 0 matches predicting the mean,
/// negative is worse than the mean.  Returns 0 when y_true has no variance.
[[nodiscard]] double r2_score(std::span<const double> y_true, std::span<const double> y_pred);

// --- Binary classification --------------------------------------------------
// y_true holds 0/1 labels; y_prob holds positive-class probabilities.

struct ConfusionMatrix {
    std::size_t tp = 0, fp = 0, tn = 0, fn = 0;

    [[nodiscard]] double accuracy() const noexcept;
    [[nodiscard]] double precision() const noexcept;  ///< 0 when tp+fp == 0
    [[nodiscard]] double recall() const noexcept;     ///< 0 when tp+fn == 0
    [[nodiscard]] double f1() const noexcept;         ///< harmonic mean; 0 if either is 0
};

[[nodiscard]] ConfusionMatrix confusion_matrix(
    std::span<const double> y_true, std::span<const double> y_prob, double threshold = 0.5);

[[nodiscard]] double accuracy(
    std::span<const double> y_true, std::span<const double> y_prob, double threshold = 0.5);

/// Area under the ROC curve via the rank-sum (Mann–Whitney) formulation.
/// Returns 0.5 when one class is absent.
[[nodiscard]] double roc_auc(std::span<const double> y_true, std::span<const double> y_prob);

/// Mean negative log likelihood with probability clipping at `eps`.
[[nodiscard]] double log_loss(
    std::span<const double> y_true, std::span<const double> y_prob, double eps = 1e-12);

// --- Rank statistics (used for attribution agreement, T2) -------------------

/// Spearman rank correlation between two equally sized score vectors.
/// Average ranks are used for ties.  Returns 0 for size < 2.
[[nodiscard]] double spearman(std::span<const double> a, std::span<const double> b);

/// |top-k(a) ∩ top-k(b)| / k where top-k is by descending score.
[[nodiscard]] double topk_overlap(std::span<const double> a, std::span<const double> b,
                                  std::size_t k);

}  // namespace xnfv::ml
