#include "mlcore/crossval.hpp"

#include <cmath>
#include <numeric>
#include <stdexcept>

namespace xnfv::ml {

double CvResult::mean() const {
    if (fold_scores.empty()) return 0.0;
    double s = 0.0;
    for (double v : fold_scores) s += v;
    return s / static_cast<double>(fold_scores.size());
}

double CvResult::stddev() const {
    if (fold_scores.size() < 2) return 0.0;
    const double m = mean();
    double s = 0.0;
    for (double v : fold_scores) s += (v - m) * (v - m);
    return std::sqrt(s / static_cast<double>(fold_scores.size()));
}

CvResult k_fold_cv(const Dataset& d, std::size_t k, Rng& rng,
                   const std::function<std::unique_ptr<Model>(const Dataset&)>& fit,
                   const std::function<double(const Model&, const Dataset&)>& score) {
    if (k < 2) throw std::invalid_argument("k_fold_cv: k must be >= 2");
    if (d.size() < k) throw std::invalid_argument("k_fold_cv: fewer samples than folds");

    std::vector<std::size_t> idx(d.size());
    std::iota(idx.begin(), idx.end(), std::size_t{0});
    rng.shuffle(idx);

    CvResult result;
    result.fold_scores.reserve(k);
    for (std::size_t fold = 0; fold < k; ++fold) {
        std::vector<std::size_t> train_idx, test_idx;
        for (std::size_t i = 0; i < idx.size(); ++i) {
            (i % k == fold ? test_idx : train_idx).push_back(idx[i]);
        }
        const Dataset train = d.subset(train_idx);
        const Dataset test = d.subset(test_idx);
        const auto model = fit(train);
        result.fold_scores.push_back(score(*model, test));
    }
    return result;
}

}  // namespace xnfv::ml
