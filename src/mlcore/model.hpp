// The model abstraction every explainer consumes.
//
// Explanation methods in xnfv::xai only need a scalar-valued function of a
// feature vector: for regression models this is the predicted value, for
// binary classifiers the predicted probability of the positive class.  All
// trainable models in mlcore implement this interface.
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "mlcore/dataset.hpp"
#include "mlcore/matrix.hpp"

namespace xnfv::ml {

/// Abstract scalar-output predictive model.
class Model {
public:
    Model() = default;
    Model(const Model&) = default;
    Model& operator=(const Model&) = default;
    Model(Model&&) = default;
    Model& operator=(Model&&) = default;
    virtual ~Model() = default;

    /// Predicted value (regression) or positive-class probability
    /// (classification) for a single feature vector of length num_features().
    [[nodiscard]] virtual double predict(std::span<const double> x) const = 0;

    /// Batch prediction into a caller-provided buffer; out.size() must equal
    /// x.rows().  The default loops over predict() row-parallel; model
    /// families with cache-friendly batch kernels override it.  Overrides
    /// must produce bitwise-identical values to the per-row predict() loop —
    /// every explainer relies on this to keep attributions independent of
    /// how probe rows are blocked (enforced by test_predict_batch).
    virtual void predict_batch(const Matrix& x, std::span<double> out) const;

    /// Convenience wrapper allocating a fresh result vector.
    [[nodiscard]] std::vector<double> predict_batch(const Matrix& x) const;

    /// Number of input features the model was trained on.
    [[nodiscard]] virtual std::size_t num_features() const = 0;

    /// Short human-readable identifier ("random_forest", "mlp", ...).
    [[nodiscard]] virtual std::string name() const = 0;
};

/// Adapts an arbitrary callable to the Model interface.  Used in tests and
/// to explain functions with known ground-truth attributions.
class LambdaModel final : public Model {
public:
    using Fn = std::function<double(std::span<const double>)>;

    LambdaModel(std::size_t num_features, Fn fn, std::string name = "lambda")
        : fn_(std::move(fn)), num_features_(num_features), name_(std::move(name)) {}

    [[nodiscard]] double predict(std::span<const double> x) const override { return fn_(x); }
    [[nodiscard]] std::size_t num_features() const override { return num_features_; }
    [[nodiscard]] std::string name() const override { return name_; }

private:
    Fn fn_;
    std::size_t num_features_;
    std::string name_;
};

/// Hard 0/1 class decision from a probability model at threshold 0.5.
[[nodiscard]] inline double hard_label(double probability) noexcept {
    return probability >= 0.5 ? 1.0 : 0.0;
}

}  // namespace xnfv::ml
