#include "mlcore/preprocess.hpp"

#include <cmath>
#include <stdexcept>

namespace xnfv::ml {

void Standardizer::fit(const Matrix& x) {
    const std::size_t d = x.cols();
    mean_.assign(d, 0.0);
    stddev_.assign(d, 0.0);
    if (x.rows() == 0) return;
    for (std::size_t r = 0; r < x.rows(); ++r) {
        const auto row = x.row(r);
        for (std::size_t c = 0; c < d; ++c) mean_[c] += row[c];
    }
    for (double& v : mean_) v /= static_cast<double>(x.rows());
    for (std::size_t r = 0; r < x.rows(); ++r) {
        const auto row = x.row(r);
        for (std::size_t c = 0; c < d; ++c) {
            const double dlt = row[c] - mean_[c];
            stddev_[c] += dlt * dlt;
        }
    }
    for (double& v : stddev_) {
        v = std::sqrt(v / static_cast<double>(x.rows()));
        if (v == 0.0) v = 1.0;  // constant column: center but don't scale
    }
}

Matrix Standardizer::transform(const Matrix& x) const {
    if (!fitted()) throw std::logic_error("Standardizer::transform before fit");
    if (x.cols() != mean_.size())
        throw std::invalid_argument("Standardizer::transform: column mismatch");
    Matrix out(x.rows(), x.cols());
    for (std::size_t r = 0; r < x.rows(); ++r) {
        const auto src = x.row(r);
        auto dst = out.row(r);
        for (std::size_t c = 0; c < x.cols(); ++c)
            dst[c] = (src[c] - mean_[c]) / stddev_[c];
    }
    return out;
}

std::vector<double> Standardizer::transform_row(std::span<const double> x) const {
    if (!fitted()) throw std::logic_error("Standardizer::transform_row before fit");
    if (x.size() != mean_.size())
        throw std::invalid_argument("Standardizer::transform_row: size mismatch");
    std::vector<double> out(x.size());
    for (std::size_t c = 0; c < x.size(); ++c) out[c] = (x[c] - mean_[c]) / stddev_[c];
    return out;
}

std::vector<double> Standardizer::inverse_row(std::span<const double> z) const {
    if (!fitted()) throw std::logic_error("Standardizer::inverse_row before fit");
    if (z.size() != mean_.size())
        throw std::invalid_argument("Standardizer::inverse_row: size mismatch");
    std::vector<double> out(z.size());
    for (std::size_t c = 0; c < z.size(); ++c) out[c] = z[c] * stddev_[c] + mean_[c];
    return out;
}

void MinMaxScaler::fit(const Matrix& x) {
    const std::size_t d = x.cols();
    lo_.assign(d, std::numeric_limits<double>::infinity());
    hi_.assign(d, -std::numeric_limits<double>::infinity());
    for (std::size_t r = 0; r < x.rows(); ++r) {
        const auto row = x.row(r);
        for (std::size_t c = 0; c < d; ++c) {
            lo_[c] = std::min(lo_[c], row[c]);
            hi_[c] = std::max(hi_[c], row[c]);
        }
    }
}

Matrix MinMaxScaler::transform(const Matrix& x) const {
    if (!fitted()) throw std::logic_error("MinMaxScaler::transform before fit");
    Matrix out(x.rows(), x.cols());
    for (std::size_t r = 0; r < x.rows(); ++r) {
        const auto t = transform_row(x.row(r));
        std::copy(t.begin(), t.end(), out.row(r).begin());
    }
    return out;
}

std::vector<double> MinMaxScaler::transform_row(std::span<const double> x) const {
    if (!fitted()) throw std::logic_error("MinMaxScaler::transform_row before fit");
    if (x.size() != lo_.size())
        throw std::invalid_argument("MinMaxScaler::transform_row: size mismatch");
    std::vector<double> out(x.size());
    for (std::size_t c = 0; c < x.size(); ++c) {
        const double range = hi_[c] - lo_[c];
        out[c] = range == 0.0 ? 0.0 : (x[c] - lo_[c]) / range;
    }
    return out;
}

Matrix one_hot(std::span<const double> column, std::size_t cardinality) {
    Matrix out(column.size(), cardinality, 0.0);
    for (std::size_t r = 0; r < column.size(); ++r) {
        const auto v = static_cast<long long>(column[r]);
        if (v >= 0 && static_cast<std::size_t>(v) < cardinality)
            out(r, static_cast<std::size_t>(v)) = 1.0;
    }
    return out;
}

Dataset standardize(const Dataset& d, const Standardizer& s) {
    Dataset out;
    out.task = d.task;
    out.feature_names = d.feature_names;
    out.y = d.y;
    out.x = s.transform(d.x);
    return out;
}

}  // namespace xnfv::ml
