#include "mlcore/forest.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/parallel.hpp"

namespace xnfv::ml {

void RandomForest::fit(const Dataset& d, Rng& rng) {
    if (d.size() == 0) throw std::invalid_argument("RandomForest::fit: empty dataset");
    if (config_.num_trees == 0)
        throw std::invalid_argument("RandomForest::fit: num_trees must be > 0");
    d.validate();
    num_features_ = d.num_features();

    DecisionTree::Config tree_cfg = config_.tree;
    if (tree_cfg.max_features == 0) {
        // Conventional default: sqrt(d) features per split.
        tree_cfg.max_features = std::max<std::size_t>(
            1, static_cast<std::size_t>(std::sqrt(static_cast<double>(num_features_))));
    }

    const auto n_boot = std::max<std::size_t>(
        1, static_cast<std::size_t>(config_.bootstrap_fraction *
                                    static_cast<double>(d.size())));
    trees_.clear();
    trees_.reserve(config_.num_trees);
    std::vector<std::size_t> rows(n_boot);
    for (std::size_t t = 0; t < config_.num_trees; ++t) {
        Rng tree_rng = rng.split();
        for (auto& r : rows) r = tree_rng.uniform_index(d.size());
        DecisionTree tree(tree_cfg);
        tree.fit_rows(d, rows, &tree_rng);
        trees_.push_back(std::move(tree));
    }
    rebuild_flat();
}

void RandomForest::rebuild_flat() {
    flat_.clear();
    std::size_t total_nodes = 0;
    for (const auto& t : trees_) total_nodes += t.nodes().size();
    flat_.reserve(trees_.size(), total_nodes);
    for (const auto& t : trees_) flat_.add_tree(t.nodes());
}

double RandomForest::predict(std::span<const double> x) const {
    if (trees_.empty()) throw std::logic_error("RandomForest::predict before fit");
    double sum = 0.0;
    for (const auto& t : trees_) sum += t.predict(x);
    return sum / static_cast<double>(trees_.size());
}

void RandomForest::predict_batch(const Matrix& x, std::span<double> out) const {
    if (x.rows() == 0) return;
    if (out.size() != x.rows())
        throw std::invalid_argument("RandomForest::predict_batch: output size mismatch");
    if (trees_.empty()) throw std::logic_error("RandomForest::predict before fit");
    if (x.cols() != num_features_)
        throw std::invalid_argument("DecisionTree::predict: size mismatch");
    const double n_trees = static_cast<double>(trees_.size());
    const std::size_t threads = x.rows() < 64 ? 1 : 0;
    xnfv::parallel_for_chunks(x.rows(), threads, [&](std::size_t begin, std::size_t end) {
        auto slice = out.subspan(begin, end - begin);
        std::fill(slice.begin(), slice.end(), 0.0);
        flat_.accumulate(x, begin, end, 1.0, slice);
        // Same final division the scalar loop performs (sum / T, not
        // sum * (1/T)) so the rounding is identical.
        for (double& v : slice) v /= n_trees;
    });
}

std::vector<double> RandomForest::feature_importances() const {
    std::vector<double> acc(num_features_, 0.0);
    for (const auto& t : trees_) {
        const auto imp = t.feature_importances();
        for (std::size_t i = 0; i < acc.size(); ++i) acc[i] += imp[i];
    }
    double total = 0.0;
    for (double v : acc) total += v;
    if (total > 0.0)
        for (double& v : acc) v /= total;
    return acc;
}

}  // namespace xnfv::ml
