// Gradient-boosted trees.
//
// Regression uses least-squares boosting (each stage fits the residuals);
// binary classification uses logistic-loss boosting in log-odds space with a
// single Newton step per leaf, i.e. the classic Friedman GBM / (non-
// regularized) XGBoost formulation.  The per-tree structure is exposed so
// the TreeSHAP explainer can attribute boosted ensembles exactly in margin
// space.
#pragma once

#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "mlcore/dataset.hpp"
#include "mlcore/model.hpp"
#include "mlcore/rng.hpp"
#include "mlcore/tree.hpp"

namespace xnfv::ml {

class GradientBoostedTrees final : public Model {
public:
    struct Config {
        std::size_t num_rounds = 100;
        double learning_rate = 0.1;
        DecisionTree::Config tree{.max_depth = 4, .min_samples_leaf = 10,
                                  .min_samples_split = 20};
        /// Row subsampling per round (stochastic gradient boosting); 1 = all.
        double subsample = 1.0;
    };

    GradientBoostedTrees() = default;
    explicit GradientBoostedTrees(Config config) : config_(config) {}

    /// Fits on a regression or binary-classification dataset.
    void fit(const Dataset& d, Rng& rng);

    /// Regression: predicted value.  Classification: positive probability.
    [[nodiscard]] double predict(std::span<const double> x) const override;

    /// Blocked inference over one flattened SoA copy of all rounds; bitwise
    /// identical to the per-row predict() loop (see flat_tree.hpp).
    void predict_batch(const Matrix& x, std::span<double> out) const override;
    using Model::predict_batch;

    /// Raw additive score before the logistic link (equals predict() for
    /// regression).  TreeSHAP operates in this space.
    [[nodiscard]] double predict_margin(std::span<const double> x) const;

    [[nodiscard]] std::size_t num_features() const override { return num_features_; }
    [[nodiscard]] std::string name() const override { return "gbt"; }

    [[nodiscard]] const std::vector<DecisionTree>& trees() const noexcept { return trees_; }
    [[nodiscard]] double base_score() const noexcept { return base_score_; }
    [[nodiscard]] double learning_rate() const noexcept { return config_.learning_rate; }
    [[nodiscard]] Task task() const noexcept { return task_; }

    /// Aggregated impurity importances across rounds, normalized.
    [[nodiscard]] std::vector<double> feature_importances() const;

    /// Serializes the fitted model as line-based text (see mlcore/serialize.hpp).
    void save(std::ostream& os) const;
    /// Restores state written by save(), replacing any current state.
    /// Throws std::runtime_error on malformed input.
    void load(std::istream& is);


private:
    void rebuild_flat();

    Config config_{};
    std::vector<DecisionTree> trees_;
    FlatEnsemble flat_;  ///< all rounds concatenated, rebuilt by fit()/load()
    double base_score_ = 0.0;
    std::size_t num_features_ = 0;
    Task task_ = Task::regression;
};

}  // namespace xnfv::ml
