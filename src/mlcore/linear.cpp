#include "mlcore/linear.hpp"

#include <cmath>
#include <stdexcept>

#include "core/parallel.hpp"
#include "mlcore/matrix.hpp"

namespace xnfv::ml {

double sigmoid(double z) noexcept {
    if (z >= 0.0) {
        const double e = std::exp(-z);
        return 1.0 / (1.0 + e);
    }
    const double e = std::exp(z);
    return e / (1.0 + e);
}

void LinearRegression::fit(const Dataset& d) {
    if (d.size() == 0) throw std::invalid_argument("LinearRegression::fit: empty dataset");
    const std::size_t n = d.size();
    const std::size_t p = d.num_features();

    // Augment with an intercept column; exclude it from the ridge penalty by
    // penalizing only the first p coordinates (the solver applies a uniform
    // l2, so we center y and X instead, which is equivalent).
    std::vector<double> xmean = d.feature_means();
    double ymean = 0.0;
    for (double v : d.y) ymean += v;
    ymean /= static_cast<double>(n);

    Matrix xc(n, p);
    std::vector<double> yc(n);
    for (std::size_t r = 0; r < n; ++r) {
        const auto row = d.x.row(r);
        auto dst = xc.row(r);
        for (std::size_t c = 0; c < p; ++c) dst[c] = row[c] - xmean[c];
        yc[r] = d.y[r] - ymean;
    }
    const std::vector<double> w(n, 1.0);
    coef_ = weighted_least_squares(xc, yc, w, config_.l2);
    intercept_ = ymean - dot(coef_, xmean);
}

double LinearRegression::predict(std::span<const double> x) const {
    if (x.size() != coef_.size())
        throw std::invalid_argument("LinearRegression::predict: size mismatch");
    return intercept_ + dot(coef_, x);
}

void LinearRegression::predict_batch(const Matrix& x, std::span<double> out) const {
    if (x.rows() == 0) return;
    if (out.size() != x.rows())
        throw std::invalid_argument("LinearRegression::predict_batch: output size mismatch");
    if (x.cols() != coef_.size())
        throw std::invalid_argument("LinearRegression::predict: size mismatch");
    const std::size_t threads = x.rows() < 64 ? 1 : 0;
    xnfv::parallel_for_chunks(x.rows(), threads, [&](std::size_t begin, std::size_t end) {
        for (std::size_t r = begin; r < end; ++r)
            out[r] = intercept_ + dot(coef_, x.row(r));
    });
}

void LogisticRegression::fit(const Dataset& d) {
    if (d.size() == 0) throw std::invalid_argument("LogisticRegression::fit: empty dataset");
    const std::size_t n = d.size();
    const std::size_t p = d.num_features();
    coef_.assign(p, 0.0);
    intercept_ = 0.0;

    std::vector<double> grad(p);
    double prev_loss = std::numeric_limits<double>::infinity();
    for (int epoch = 0; epoch < config_.epochs; ++epoch) {
        std::fill(grad.begin(), grad.end(), 0.0);
        double grad0 = 0.0;
        double loss = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
            const auto xi = d.x.row(i);
            const double z = intercept_ + dot(coef_, xi);
            const double prob = sigmoid(z);
            const double err = prob - d.y[i];
            grad0 += err;
            for (std::size_t c = 0; c < p; ++c) grad[c] += err * xi[c];
            const double pc = std::clamp(prob, 1e-12, 1.0 - 1e-12);
            loss += d.y[i] > 0.5 ? -std::log(pc) : -std::log(1.0 - pc);
        }
        const double inv_n = 1.0 / static_cast<double>(n);
        loss *= inv_n;
        for (std::size_t c = 0; c < p; ++c) {
            loss += 0.5 * config_.l2 * coef_[c] * coef_[c];
            coef_[c] -= config_.learning_rate * (grad[c] * inv_n + config_.l2 * coef_[c]);
        }
        intercept_ -= config_.learning_rate * grad0 * inv_n;
        if (std::abs(prev_loss - loss) < config_.tolerance) break;
        prev_loss = loss;
    }
}

double LogisticRegression::predict(std::span<const double> x) const {
    if (x.size() != coef_.size())
        throw std::invalid_argument("LogisticRegression::predict: size mismatch");
    return sigmoid(intercept_ + dot(coef_, x));
}

void LogisticRegression::predict_batch(const Matrix& x, std::span<double> out) const {
    if (x.rows() == 0) return;
    if (out.size() != x.rows())
        throw std::invalid_argument("LogisticRegression::predict_batch: output size mismatch");
    if (x.cols() != coef_.size())
        throw std::invalid_argument("LogisticRegression::predict: size mismatch");
    const std::size_t threads = x.rows() < 64 ? 1 : 0;
    xnfv::parallel_for_chunks(x.rows(), threads, [&](std::size_t begin, std::size_t end) {
        for (std::size_t r = begin; r < end; ++r)
            out[r] = sigmoid(intercept_ + dot(coef_, x.row(r)));
    });
}

}  // namespace xnfv::ml
