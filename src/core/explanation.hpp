// Core explanation data types shared by every attribution method.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include <span>

#include "mlcore/dataset.hpp"
#include "mlcore/matrix.hpp"
#include "mlcore/model.hpp"

namespace xnfv::xai {

/// One mutual feature-interaction pair (Friedman H² statistic, see
/// core/interaction.hpp), carried alongside an attribution vector when the
/// caller opted in (`"interactions": k` on the serving path).
struct InteractionPair {
    std::size_t i = 0;   ///< first feature index (i < j)
    std::size_t j = 0;   ///< second feature index
    double h2 = 0.0;     ///< normalized interaction strength in [0, 1]
};

/// A local feature-attribution explanation of one prediction.
///
/// Additive semantics (SHAP-style methods):
///     prediction ≈ base_value + sum(attributions)
/// LIME reports local linear *effects* in the same slot; its attributions
/// satisfy the identity only approximately (that gap is exactly what the
/// fidelity experiments F1/F2 quantify).
struct Explanation {
    std::string method;                 ///< producing explainer ("kernel_shap", ...)
    double prediction = 0.0;            ///< f(x) at the explained point
    double base_value = 0.0;            ///< E[f] over the background
    std::vector<double> attributions;   ///< one signed value per feature
    std::vector<std::string> feature_names;
    /// Top-k mutual interaction pairs, strongest H² first (empty unless the
    /// request asked for interactions; rides the cache with the rest of the
    /// explanation because the cache key covers the interaction config).
    std::vector<InteractionPair> interactions;

    /// |attributions| (magnitude ranking used by deletion curves and top-k).
    [[nodiscard]] std::vector<double> abs_attributions() const;

    /// Indices of the k largest |attribution| features, descending.
    [[nodiscard]] std::vector<std::size_t> top_k(std::size_t k) const;

    /// base_value + sum(attributions): should equal `prediction` for methods
    /// satisfying the efficiency axiom.
    [[nodiscard]] double additive_reconstruction() const;

    /// Operator-readable rendering, features sorted by |attribution|.
    [[nodiscard]] std::string to_string(std::size_t max_rows = 10) const;
};

/// Reference (background) data every explainer marginalizes over.
///
/// Holds a sample of the training distribution plus cached column means; the
/// interventional value functions replace "absent" features with background
/// draws, and mean imputation uses the cached means.
class BackgroundData {
public:
    BackgroundData() = default;

    /// Keeps at most `max_rows` rows of `x` (uniformly strided subsample so
    /// callers can pass a whole training set).
    explicit BackgroundData(const xnfv::ml::Matrix& x, std::size_t max_rows = 256);

    [[nodiscard]] const xnfv::ml::Matrix& samples() const noexcept { return samples_; }
    [[nodiscard]] const std::vector<double>& means() const noexcept { return means_; }
    [[nodiscard]] std::size_t num_features() const noexcept { return samples_.cols(); }
    [[nodiscard]] std::size_t size() const noexcept { return samples_.rows(); }
    [[nodiscard]] bool empty() const noexcept { return samples_.rows() == 0; }

private:
    xnfv::ml::Matrix samples_;
    std::vector<double> means_;
};

/// Abstract local explainer.
class Explainer {
public:
    Explainer() = default;
    Explainer(const Explainer&) = default;
    Explainer& operator=(const Explainer&) = default;
    Explainer(Explainer&&) = default;
    Explainer& operator=(Explainer&&) = default;
    virtual ~Explainer() = default;

    /// Explains model's prediction at x.  Non-const because sampling-based
    /// explainers advance internal RNG state.
    [[nodiscard]] virtual Explanation explain(const xnfv::ml::Model& model,
                                              std::span<const double> x) = 0;

    /// Explains every row of `instances`.  The default is the sequential
    /// loop over explain(); parallel explainers override it with a
    /// row-parallel implementation whose per-row results are *identical* to
    /// the sequential loop for any thread count (each row's RNG stream is
    /// derived up front, in row order).
    [[nodiscard]] virtual std::vector<Explanation> explain_batch(
        const xnfv::ml::Model& model, const xnfv::ml::Matrix& instances);

    [[nodiscard]] virtual std::string name() const = 0;
};

}  // namespace xnfv::xai
