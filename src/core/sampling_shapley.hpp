// Permutation-sampling Shapley estimator (Castro, Gómez & Tejada 2009).
//
// The third Shapley estimator in the library, complementing exact
// enumeration (exponential) and KernelSHAP (weighted regression).  For each
// of `num_permutations` random orderings pi and background draws b, features
// are switched from the background value to the instance value in pi's
// order, crediting each feature with the marginal prediction change:
//
//     phi_i  +=  f(x_{S ∪ i}, b_rest) - f(x_S, b_rest)
//
// This is an unbiased estimator of the interventional Shapley values, and
// within one (permutation, background) run the credits telescope exactly to
// f(x) - f(b) — so the *averaged* attributions satisfy efficiency against
// the averaged base value by construction (test-checked).
//
// Cost: num_permutations * d model evaluations.  Compared to KernelSHAP it
// needs no linear solve and no coalition bookkeeping, but converges slower
// per model call for small d; the A1 ablation bench compares all three.
#pragma once

#include "core/budget.hpp"
#include "core/explanation.hpp"
#include "mlcore/model.hpp"
#include "mlcore/rng.hpp"

namespace xnfv::xai {

class SamplingShapley final : public Explainer {
public:
    struct Config {
        std::size_t num_permutations = 200;
        /// Replay each sampled permutation reversed against the same
        /// background row.  This cancels permutation-*order* noise (relevant
        /// for models with interactions); it does not reduce background-draw
        /// noise, so for purely additive models it is cost-neutral at equal
        /// evaluation budget.
        bool antithetic = true;
        /// Worker threads for the permutation sweep and batch rows; 0 uses
        /// xnfv::default_threads().  Attributions are identical for any
        /// thread count (per-permutation RNG streams, ordered merge).
        std::size_t threads = 0;
        /// Optional cooperative stop signal, polled once per permutation;
        /// fired = explain() aborts with BudgetExceeded.  Must outlive the
        /// call.  Null = never cancelled.
        const CancelToken* cancel = nullptr;
    };

    SamplingShapley(BackgroundData background, xnfv::ml::Rng rng)
        : SamplingShapley(std::move(background), rng, Config{}) {}
    SamplingShapley(BackgroundData background, xnfv::ml::Rng rng, Config config)
        : background_(std::move(background)), rng_(rng), config_(config) {}

    [[nodiscard]] Explanation explain(const xnfv::ml::Model& model,
                                      std::span<const double> x) override;

    /// Row-parallel batch explanation; per-row results match a sequential
    /// explain() loop exactly (per-row seeds are drawn up front, in order).
    [[nodiscard]] std::vector<Explanation> explain_batch(
        const xnfv::ml::Model& model, const xnfv::ml::Matrix& instances) override;

    [[nodiscard]] std::string name() const override { return "sampling_shapley"; }

private:
    [[nodiscard]] Explanation explain_seeded(const xnfv::ml::Model& model,
                                             std::span<const double> x,
                                             std::uint64_t call_seed) const;
    BackgroundData background_;
    xnfv::ml::Rng rng_;
    Config config_{};
};

}  // namespace xnfv::xai
