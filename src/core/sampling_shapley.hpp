// Permutation-sampling Shapley estimator (Castro, Gómez & Tejada 2009).
//
// The third Shapley estimator in the library, complementing exact
// enumeration (exponential) and KernelSHAP (weighted regression).  For each
// of `num_permutations` random orderings pi and background draws b, features
// are switched from the background value to the instance value in pi's
// order, crediting each feature with the marginal prediction change:
//
//     phi_i  +=  f(x_{S ∪ i}, b_rest) - f(x_S, b_rest)
//
// This is an unbiased estimator of the interventional Shapley values, and
// within one (permutation, background) run the credits telescope exactly to
// f(x) - f(b) — so the *averaged* attributions satisfy efficiency against
// the averaged base value by construction (test-checked).
//
// Cost: num_permutations * d model evaluations.  Compared to KernelSHAP it
// needs no linear solve and no coalition bookkeeping, but converges slower
// per model call for small d; the A1 ablation bench compares all three.
#pragma once

#include "core/explanation.hpp"
#include "mlcore/model.hpp"
#include "mlcore/rng.hpp"

namespace xnfv::xai {

class SamplingShapley final : public Explainer {
public:
    struct Config {
        std::size_t num_permutations = 200;
        /// Replay each sampled permutation reversed against the same
        /// background row.  This cancels permutation-*order* noise (relevant
        /// for models with interactions); it does not reduce background-draw
        /// noise, so for purely additive models it is cost-neutral at equal
        /// evaluation budget.
        bool antithetic = true;
    };

    SamplingShapley(BackgroundData background, xnfv::ml::Rng rng)
        : SamplingShapley(std::move(background), rng, Config{}) {}
    SamplingShapley(BackgroundData background, xnfv::ml::Rng rng, Config config)
        : background_(std::move(background)), rng_(rng), config_(config) {}

    [[nodiscard]] Explanation explain(const xnfv::ml::Model& model,
                                      std::span<const double> x) override;

    [[nodiscard]] std::string name() const override { return "sampling_shapley"; }

private:
    BackgroundData background_;
    xnfv::ml::Rng rng_;
    Config config_{};
};

}  // namespace xnfv::xai
