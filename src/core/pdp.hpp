// Partial dependence (PDP) and individual conditional expectation (ICE).
//
// PDP(f, j, v) = E_b[ f(b with b_j := v) ] over a grid of v; ICE keeps the
// per-background curves.  These are the global "shape" explanations used by
// figure F5 (offered load vs predicted latency saturation curve).
#pragma once

#include <vector>

#include "core/explanation.hpp"
#include "mlcore/model.hpp"

namespace xnfv::xai {

struct PdpResult {
    std::size_t feature = 0;
    std::vector<double> grid;      ///< evaluated feature values
    std::vector<double> mean;      ///< PDP curve (per grid point)
    /// ICE curves: ice[i] is the curve of background row i (empty unless
    /// requested).
    std::vector<std::vector<double>> ice;
};

struct PdpOptions {
    std::size_t grid_points = 20;
    bool keep_ice = false;
    /// Grid endpoints as background quantiles (guards against outliers).
    double lo_quantile = 0.02;
    double hi_quantile = 0.98;
    /// Worker threads for the grid sweep; 0 uses xnfv::default_threads().
    /// The sweep is deterministic (no RNG), so any thread count yields the
    /// same curve.
    std::size_t threads = 0;
};

[[nodiscard]] PdpResult partial_dependence(const xnfv::ml::Model& model,
                                           const BackgroundData& background,
                                           std::size_t feature,
                                           const PdpOptions& options = {});

}  // namespace xnfv::xai
