// Objective evaluation of explanation quality.
//
// Implements the standard perturbation-based protocol (Samek et al., IEEE
// TNNLS 2017): delete features in order of attributed relevance and measure
// how fast the prediction collapses toward the background expectation.  A
// good explanation ranks truly load-bearing features first, so its deletion
// curve drops steeply (large AOPC).  Also provides the insertion variant,
// sampling-noise and input-perturbation stability metrics, and top-k
// agreement between two explanations.
#pragma once

#include <functional>

#include "core/explanation.hpp"
#include "mlcore/model.hpp"
#include "mlcore/rng.hpp"

namespace xnfv::xai {

struct DeletionCurve {
    /// curve[k] = model output after deleting the k top-ranked features
    /// (curve[0] = f(x) untouched); deletion = mean-imputation from the
    /// background.
    std::vector<double> curve;
    /// Area over the perturbation curve: mean_k (f(x) - curve[k]), k >= 1.
    double aopc = 0.0;
};

/// Deletes features most-relevant-first according to `ranking` (feature
/// indices, best first; typically explanation.top_k(d)).
[[nodiscard]] DeletionCurve deletion_curve(const xnfv::ml::Model& model,
                                           std::span<const double> x,
                                           std::span<const std::size_t> ranking,
                                           const BackgroundData& background);

/// Insertion variant: start from the background means and re-insert the
/// instance's features most-relevant-first; curve[k] after k insertions.
[[nodiscard]] DeletionCurve insertion_curve(const xnfv::ml::Model& model,
                                            std::span<const double> x,
                                            std::span<const std::size_t> ranking,
                                            const BackgroundData& background);

/// Random-ranking reference for the same instance, averaged over `repeats`
/// shuffles (the null hypothesis an explainer must beat).
[[nodiscard]] DeletionCurve random_deletion_curve(const xnfv::ml::Model& model,
                                                  std::span<const double> x,
                                                  const BackgroundData& background,
                                                  xnfv::ml::Rng& rng,
                                                  std::size_t repeats = 5);

/// An explanation factory: called repeatedly by the stability metrics.
using ExplainFn = std::function<Explanation(std::span<const double>)>;

struct StabilityResult {
    double mean_l2_drift = 0.0;  ///< mean ||phi(x) - phi(x+eps)||_2
    double mean_topk_jaccard = 0.0;  ///< top-3 set overlap under perturbation
};

/// Input-perturbation stability: perturb x by N(0, (eps*sigma_j)^2) and
/// compare attributions.  sigma comes from the background.
[[nodiscard]] StabilityResult input_stability(const ExplainFn& explain,
                                              std::span<const double> x,
                                              const BackgroundData& background,
                                              xnfv::ml::Rng& rng, double eps = 0.05,
                                              std::size_t repeats = 10);

/// Sampling-noise stability: re-run the (stochastic) explainer on the same x
/// and measure attribution variance; deterministic explainers score 0.
[[nodiscard]] double rerun_variance(const ExplainFn& explain, std::span<const double> x,
                                    std::size_t repeats = 10);

}  // namespace xnfv::xai
