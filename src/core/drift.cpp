#include "core/drift.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <sstream>
#include <stdexcept>

#include "mlcore/metrics.hpp"

namespace xnfv::xai {

namespace {

/// mean|phi| normalized to sum 1 (uniform if all-zero).
std::vector<double> normalized_mass(const GlobalAttribution& g) {
    std::vector<double> out = g.mean_abs;
    double total = 0.0;
    for (double v : out) total += v;
    if (total <= 0.0) {
        const double uniform = 1.0 / static_cast<double>(out.size());
        for (double& v : out) v = uniform;
    } else {
        for (double& v : out) v /= total;
    }
    return out;
}

}  // namespace

DriftReport attribution_drift(const GlobalAttribution& reference,
                              const GlobalAttribution& current,
                              const DriftThresholds& thresholds) {
    if (reference.mean_abs.size() != current.mean_abs.size() ||
        reference.mean_abs.empty())
        throw std::invalid_argument("attribution_drift: feature sets differ or empty");

    DriftReport report;
    report.rank_correlation = xnfv::ml::spearman(reference.mean_abs, current.mean_abs);

    const auto ref_top = reference.ranking();
    const auto cur_top = current.ranking();
    const std::size_t k = std::min<std::size_t>(3, ref_top.size());
    const std::set<std::size_t> a(ref_top.begin(), ref_top.begin() + k);
    std::size_t inter = 0;
    for (std::size_t i = 0; i < k; ++i) inter += a.count(cur_top[i]);
    report.top3_jaccard =
        static_cast<double>(inter) / static_cast<double>(2 * k - inter);

    const auto ref_mass = normalized_mass(reference);
    const auto cur_mass = normalized_mass(current);
    std::vector<std::pair<std::size_t, double>> movers;
    double l1 = 0.0;
    for (std::size_t j = 0; j < ref_mass.size(); ++j) {
        const double delta = cur_mass[j] - ref_mass[j];
        l1 += std::abs(delta);
        movers.emplace_back(j, delta);
    }
    report.mass_shift = l1;
    std::sort(movers.begin(), movers.end(), [](const auto& x, const auto& y) {
        return std::abs(x.second) > std::abs(y.second);
    });
    movers.resize(std::min<std::size_t>(5, movers.size()));
    report.top_movers = std::move(movers);

    report.drifted = report.rank_correlation < thresholds.min_rank_correlation ||
                     report.top3_jaccard < thresholds.min_top3_jaccard ||
                     report.mass_shift > thresholds.max_mass_shift;
    return report;
}

std::string DriftReport::to_string(std::span<const std::string> feature_names) const {
    std::ostringstream os;
    os.precision(3);
    os << "attribution drift: " << (drifted ? "DRIFTED" : "stable")
       << " (rank corr " << rank_correlation << ", top3 jaccard " << top3_jaccard
       << ", mass shift " << mass_shift << ")\n";
    for (const auto& [j, delta] : top_movers) {
        const std::string name =
            j < feature_names.size() ? feature_names[j] : "f" + std::to_string(j);
        os << "  " << name << ": " << (delta >= 0.0 ? "+" : "") << delta * 100.0
           << "% share\n";
    }
    return os.str();
}

}  // namespace xnfv::xai
