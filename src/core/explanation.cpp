#include "core/explanation.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

namespace xnfv::xai {

std::vector<double> Explanation::abs_attributions() const {
    std::vector<double> out(attributions.size());
    for (std::size_t i = 0; i < out.size(); ++i) out[i] = std::abs(attributions[i]);
    return out;
}

std::vector<std::size_t> Explanation::top_k(std::size_t k) const {
    std::vector<std::size_t> idx(attributions.size());
    std::iota(idx.begin(), idx.end(), std::size_t{0});
    k = std::min(k, idx.size());
    std::partial_sort(idx.begin(), idx.begin() + static_cast<std::ptrdiff_t>(k), idx.end(),
                      [&](std::size_t a, std::size_t b) {
                          return std::abs(attributions[a]) > std::abs(attributions[b]);
                      });
    idx.resize(k);
    return idx;
}

double Explanation::additive_reconstruction() const {
    double s = base_value;
    for (double v : attributions) s += v;
    return s;
}

std::string Explanation::to_string(std::size_t max_rows) const {
    std::ostringstream os;
    os.precision(4);
    os << method << ": prediction=" << prediction << " base=" << base_value << '\n';
    const auto order = top_k(std::min(max_rows, attributions.size()));
    for (std::size_t i : order) {
        const std::string name =
            i < feature_names.size() ? feature_names[i] : "f" + std::to_string(i);
        os << "  " << name << ": " << (attributions[i] >= 0.0 ? "+" : "")
           << attributions[i] << '\n';
    }
    return os.str();
}

std::vector<Explanation> Explainer::explain_batch(const xnfv::ml::Model& model,
                                                  const xnfv::ml::Matrix& instances) {
    std::vector<Explanation> out;
    out.reserve(instances.rows());
    for (std::size_t r = 0; r < instances.rows(); ++r)
        out.push_back(explain(model, instances.row(r)));
    return out;
}

BackgroundData::BackgroundData(const xnfv::ml::Matrix& x, std::size_t max_rows) {
    if (x.rows() == 0 || max_rows == 0) return;
    if (x.rows() <= max_rows) {
        samples_ = x;
    } else {
        // Deterministic strided subsample keeps the background reproducible
        // without threading an RNG through every constructor.
        const double stride = static_cast<double>(x.rows()) / static_cast<double>(max_rows);
        samples_ = xnfv::ml::Matrix(max_rows, x.cols());
        for (std::size_t i = 0; i < max_rows; ++i) {
            const auto src = x.row(static_cast<std::size_t>(
                std::min(static_cast<double>(x.rows() - 1), stride * static_cast<double>(i))));
            std::copy(src.begin(), src.end(), samples_.row(i).begin());
        }
    }
    means_.assign(samples_.cols(), 0.0);
    for (std::size_t r = 0; r < samples_.rows(); ++r) {
        const auto row = samples_.row(r);
        for (std::size_t c = 0; c < means_.size(); ++c) means_[c] += row[c];
    }
    for (double& m : means_) m /= static_cast<double>(samples_.rows());
}

}  // namespace xnfv::xai
