#include "core/tree_shap.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

namespace xnfv::xai {

using xnfv::ml::DecisionTree;
using xnfv::ml::GradientBoostedTrees;
using xnfv::ml::RandomForest;
using xnfv::ml::TreeNode;

namespace {

/// One edge of the current root-to-node path.
struct PathEdge {
    int feature = -1;
    double indicator = 1.0;    ///< 1 if x satisfies this split, else 0
    double cover_ratio = 1.0;  ///< cover(child) / cover(parent)
};

/// Shapley factorial weight k!(m-k-1)!/m!.
double shapley_weight(std::size_t k, std::size_t m) {
    return std::exp(std::lgamma(static_cast<double>(k) + 1.0) +
                    std::lgamma(static_cast<double>(m - k)) -
                    std::lgamma(static_cast<double>(m) + 1.0));
}

struct LeafAccumulator {
    std::span<double> phi;
    double base = 0.0;

    /// Processes one leaf given the per-distinct-feature factors.
    void add_leaf(double leaf_value, const std::vector<int>& features,
                  const std::vector<double>& a, const std::vector<double>& b) {
        const std::size_t m = features.size();

        // Base value: leaf reached with nothing conditioned.
        double prob_all_b = 1.0;
        for (double bj : b) prob_all_b *= bj;
        base += leaf_value * prob_all_b;
        if (m == 0) return;

        // For each path feature i, the Shapley sum over subsets of the other
        // m-1 features, grouped by subset size via a polynomial DP:
        //   poly[k] = sum_{S subset of U\i, |S|=k} prod_{j in S} a_j *
        //             prod_{j in U\i\S} b_j
        std::vector<double> poly(m);
        for (std::size_t i = 0; i < m; ++i) {
            poly.assign(m, 0.0);
            poly[0] = 1.0;
            std::size_t used = 0;
            for (std::size_t j = 0; j < m; ++j) {
                if (j == i) continue;
                // Multiply the polynomial by (b_j + a_j * z): after this the
                // polynomial has degree used+1, so indices used+1 .. 0 must
                // all be refreshed (descending order keeps the update
                // in-place: poly[k-1] is still the pre-multiply value).
                for (std::size_t k = used + 2; k-- > 0;) {
                    poly[k] = poly[k] * b[j] + (k > 0 ? poly[k - 1] * a[j] : 0.0);
                }
                ++used;
            }
            double contribution = 0.0;
            for (std::size_t k = 0; k < m; ++k)
                contribution += shapley_weight(k, m) * poly[k];
            phi[static_cast<std::size_t>(features[i])] +=
                leaf_value * (a[i] - b[i]) * contribution;
        }
    }
};

void recurse(const std::vector<TreeNode>& nodes, std::size_t idx, std::span<const double> x,
             std::vector<PathEdge>& path, LeafAccumulator& acc) {
    const TreeNode& node = nodes[idx];
    if (node.is_leaf()) {
        // Collapse the path per distinct feature: indicators multiply (all
        // splits on the feature must pass) and cover ratios multiply (the
        // unconditioned probability of tracing these edges).
        std::vector<int> features;
        std::vector<double> a, b;
        for (const PathEdge& edge : path) {
            std::size_t pos = features.size();
            for (std::size_t i = 0; i < features.size(); ++i)
                if (features[i] == edge.feature) { pos = i; break; }
            if (pos == features.size()) {
                features.push_back(edge.feature);
                a.push_back(edge.indicator);
                b.push_back(edge.cover_ratio);
            } else {
                a[pos] *= edge.indicator;
                b[pos] *= edge.cover_ratio;
            }
        }
        acc.add_leaf(node.value, features, a, b);
        return;
    }

    const auto f = static_cast<std::size_t>(node.feature);
    const bool goes_left = x[f] <= node.threshold;
    const TreeNode& left = nodes[static_cast<std::size_t>(node.left)];
    const TreeNode& right = nodes[static_cast<std::size_t>(node.right)];
    const double denom = node.cover > 0.0 ? node.cover : 1.0;

    path.push_back(PathEdge{.feature = node.feature,
                            .indicator = goes_left ? 1.0 : 0.0,
                            .cover_ratio = left.cover / denom});
    recurse(nodes, static_cast<std::size_t>(node.left), x, path, acc);
    path.back() = PathEdge{.feature = node.feature,
                           .indicator = goes_left ? 0.0 : 1.0,
                           .cover_ratio = right.cover / denom};
    recurse(nodes, static_cast<std::size_t>(node.right), x, path, acc);
    path.pop_back();
}

}  // namespace

double tree_shap_single(const DecisionTree& tree, std::span<const double> x,
                        std::span<double> phi) {
    if (tree.nodes().empty()) throw std::invalid_argument("tree_shap: unfitted tree");
    if (phi.size() != tree.num_features() || x.size() != tree.num_features())
        throw std::invalid_argument("tree_shap: size mismatch");
    LeafAccumulator acc{.phi = phi};
    std::vector<PathEdge> path;
    recurse(tree.nodes(), 0, x, path, acc);
    return acc.base;
}

double tree_expected_value(const DecisionTree& tree, std::span<const double> x,
                           const std::vector<bool>& in_coalition) {
    if (x.size() != tree.num_features() || in_coalition.size() != tree.num_features())
        throw std::invalid_argument("tree_expected_value: size mismatch");
    const auto& nodes = tree.nodes();
    // Weighted DFS: (node, weight) pairs.
    double total = 0.0;
    std::vector<std::pair<std::size_t, double>> stack{{0, 1.0}};
    while (!stack.empty()) {
        const auto [idx, wgt] = stack.back();
        stack.pop_back();
        const TreeNode& node = nodes[idx];
        if (node.is_leaf()) {
            total += wgt * node.value;
            continue;
        }
        const auto f = static_cast<std::size_t>(node.feature);
        if (in_coalition[f]) {
            const int child = x[f] <= node.threshold ? node.left : node.right;
            stack.emplace_back(static_cast<std::size_t>(child), wgt);
        } else {
            const double denom = node.cover > 0.0 ? node.cover : 1.0;
            const TreeNode& left = nodes[static_cast<std::size_t>(node.left)];
            const TreeNode& right = nodes[static_cast<std::size_t>(node.right)];
            stack.emplace_back(static_cast<std::size_t>(node.left),
                               wgt * left.cover / denom);
            stack.emplace_back(static_cast<std::size_t>(node.right),
                               wgt * right.cover / denom);
        }
    }
    return total;
}

Explanation TreeShap::explain(const xnfv::ml::Model& model, std::span<const double> x) {
    const std::size_t d = model.num_features();
    if (x.size() != d) throw std::invalid_argument("TreeShap: input size mismatch");

    Explanation e;
    e.method = name();
    e.attributions.assign(d, 0.0);

    if (const auto* tree = dynamic_cast<const DecisionTree*>(&model)) {
        e.base_value = tree_shap_single(*tree, x, e.attributions);
        e.prediction = tree->predict(x);
        return e;
    }
    if (const auto* forest = dynamic_cast<const RandomForest*>(&model)) {
        if (forest->trees().empty())
            throw std::invalid_argument("TreeShap: unfitted forest");
        std::vector<double> phi(d, 0.0);
        double base = 0.0;
        for (const auto& tree : forest->trees()) base += tree_shap_single(tree, x, phi);
        const double inv = 1.0 / static_cast<double>(forest->trees().size());
        for (std::size_t i = 0; i < d; ++i) e.attributions[i] = phi[i] * inv;
        e.base_value = base * inv;
        e.prediction = forest->predict(x);
        return e;
    }
    if (const auto* gbt = dynamic_cast<const GradientBoostedTrees*>(&model)) {
        if (gbt->trees().empty()) throw std::invalid_argument("TreeShap: unfitted gbt");
        std::vector<double> phi(d, 0.0);
        double base = gbt->base_score();
        for (const auto& tree : gbt->trees()) {
            std::vector<double> tree_phi(d, 0.0);
            base += gbt->learning_rate() * tree_shap_single(tree, x, tree_phi);
            for (std::size_t i = 0; i < d; ++i)
                phi[i] += gbt->learning_rate() * tree_phi[i];
        }
        e.attributions = std::move(phi);
        e.base_value = base;
        e.prediction = gbt->predict_margin(x);  // margin space; see class docs
        return e;
    }
    throw std::invalid_argument("TreeShap: model '" + model.name() +
                                "' is not a supported tree ensemble");
}

}  // namespace xnfv::xai
