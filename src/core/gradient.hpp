// Gradient-based explanation methods: Integrated Gradients and SmoothGrad.
//
// These are the "local perturbation / gradient" family of the XAI taxonomy.
// They need the model's gradient; model_gradient() dispatches to the MLP's
// analytic backprop gradient when available and falls back to central finite
// differences for any other Model (trees are piecewise constant, so their
// finite-difference gradients are mostly zero — the runtime experiment F3
// and the agreement experiment T2 discuss why gradient methods are a poor
// fit for tree ensembles, which is itself one of the paper's points).
//
// Integrated Gradients (Sundararajan et al., ICML 2017):
//     phi_i = (x_i - b_i) * ∫_0^1 d f(b + a (x - b)) / d x_i  da
// approximated with a midpoint Riemann sum.  IG satisfies *completeness*
// (sum phi = f(x) - f(b)) in the limit of infinitely many steps; the tests
// check the discretized identity within tolerance.
//
// SmoothGrad (Smilkov et al., 2017) averages gradients over Gaussian
// perturbations of x; we report it in gradient*input form relative to the
// baseline so its attributions live in the same additive units as the rest
// of the explainers (the additivity identity is NOT guaranteed — that is a
// documented property, not a bug).
#pragma once

#include "core/explanation.hpp"
#include "mlcore/model.hpp"
#include "mlcore/rng.hpp"

namespace xnfv::xai {

/// Gradient of model.predict at x: analytic for Mlp, central finite
/// differences (step `fd_eps` * max(1,|x_i|)) otherwise.
[[nodiscard]] std::vector<double> model_gradient(const xnfv::ml::Model& model,
                                                 std::span<const double> x,
                                                 double fd_eps = 1e-5);

class IntegratedGradients final : public Explainer {
public:
    struct Config {
        std::size_t steps = 50;  ///< Riemann-sum resolution
    };

    /// The baseline is the background mean (the conventional tabular choice).
    explicit IntegratedGradients(BackgroundData background)
        : IntegratedGradients(std::move(background), Config{}) {}
    IntegratedGradients(BackgroundData background, Config config)
        : background_(std::move(background)), config_(config) {}

    [[nodiscard]] Explanation explain(const xnfv::ml::Model& model,
                                      std::span<const double> x) override;

    [[nodiscard]] std::string name() const override { return "integrated_gradients"; }

private:
    BackgroundData background_;
    Config config_{};
};

class SmoothGrad final : public Explainer {
public:
    struct Config {
        std::size_t samples = 50;
        /// Noise scale as a fraction of each feature's background stddev.
        double noise_fraction = 0.1;
    };

    SmoothGrad(BackgroundData background, xnfv::ml::Rng rng)
        : SmoothGrad(std::move(background), rng, Config{}) {}
    SmoothGrad(BackgroundData background, xnfv::ml::Rng rng, Config config);

    [[nodiscard]] Explanation explain(const xnfv::ml::Model& model,
                                      std::span<const double> x) override;

    [[nodiscard]] std::string name() const override { return "smoothgrad"; }

    /// The smoothed raw gradient from the last explain() call.
    [[nodiscard]] const std::vector<double>& last_gradient() const noexcept {
        return last_gradient_;
    }

private:
    BackgroundData background_;
    xnfv::ml::Rng rng_;
    Config config_{};
    std::vector<double> sigma_;
    std::vector<double> last_gradient_;
};

}  // namespace xnfv::xai
