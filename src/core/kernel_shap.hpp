// KernelSHAP (Lundberg & Lee, NeurIPS 2017).
//
// Model-agnostic Shapley approximation: evaluate the interventional value
// function v(S) = E_b[f(x_S, b_!S)] on a budget of coalitions, then solve the
// Shapley-kernel-weighted least squares problem whose solution is the exact
// Shapley values when all 2^d coalitions are enumerated.
//
// Implementation notes (mirroring the reference implementation):
//  * Coalition sizes are consumed outward-in: size pairs (1, d-1), (2, d-2),
//    ... are *fully enumerated* while the budget allows, because the kernel
//    mass concentrates on extreme sizes; the remainder of the budget is
//    random-sampled across the remaining sizes proportionally to kernel mass.
//  * Paired (antithetic) sampling adds each sampled coalition's complement,
//    which cancels odd error terms and roughly halves variance at equal
//    budget (ablation A1).
//  * The efficiency constraint (sum phi = f(x) - E[f]) is enforced exactly by
//    eliminating one coefficient before the solve, not by soft penalty.
#pragma once

#include "core/budget.hpp"
#include "core/explanation.hpp"
#include "core/probe.hpp"
#include "mlcore/model.hpp"
#include "mlcore/rng.hpp"

namespace xnfv::xai {

class KernelShap final : public Explainer {
public:
    struct Config {
        /// Max distinct coalition evaluations (excluding empty/full).
        std::size_t max_coalitions = 2048;
        bool paired_sampling = true;
        /// Tiny ridge term keeps the WLS solvable when sampled coalitions
        /// are collinear; 0 disables.
        double l2 = 1e-8;
        /// Worker threads for coalition sampling/evaluation and batch rows;
        /// 0 uses xnfv::default_threads().  Attributions are identical for
        /// any thread count (per-coalition RNG streams).
        std::size_t threads = 0;
        /// Optional cooperative stop signal, polled once per evaluation
        /// block (~kProbeBlockRows probe rows); a fired token aborts
        /// explain() with BudgetExceeded.  The token must outlive the call.
        /// Null = never cancelled.
        const CancelToken* cancel = nullptr;
    };

    KernelShap(BackgroundData background, xnfv::ml::Rng rng)
        : KernelShap(std::move(background), rng, Config{}) {}
    KernelShap(BackgroundData background, xnfv::ml::Rng rng, Config config)
        : background_(std::move(background)), rng_(rng), config_(config) {}

    [[nodiscard]] Explanation explain(const xnfv::ml::Model& model,
                                      std::span<const double> x) override;

    /// Row-parallel batch explanation; per-row results match a sequential
    /// explain() loop exactly (per-row seeds are drawn up front, in order).
    [[nodiscard]] std::vector<Explanation> explain_batch(
        const xnfv::ml::Model& model, const xnfv::ml::Matrix& instances) override;

    [[nodiscard]] std::string name() const override { return "kernel_shap"; }

private:
    /// The full algorithm for one instance with all randomness derived from
    /// `call_seed` — thread-count invariant by construction.  `base_value`
    /// is E_b[f(b)] (the all-false-mask coalition value), hoisted out so
    /// explain_batch computes it once per model instead of once per row.
    [[nodiscard]] Explanation explain_seeded(const xnfv::ml::Model& model,
                                             std::span<const double> x,
                                             std::uint64_t call_seed,
                                             double base_value) const;

    BackgroundData background_;
    xnfv::ml::Rng rng_;
    Config config_;
    BaseValueCache base_cache_;  ///< consulted only in serial explain entry points
};

}  // namespace xnfv::xai
