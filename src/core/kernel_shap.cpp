#include "core/kernel_shap.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/exact_shapley.hpp"  // shapley_kernel_weight, log_binomial
#include "core/parallel.hpp"

namespace xnfv::xai {

Explanation KernelShap::explain(const xnfv::ml::Model& model, std::span<const double> x) {
    const double base =
        background_.empty() ? 0.0 : base_cache_.get(model, background_);
    return explain_seeded(model, x, rng_.next_u64(), base);
}

std::vector<Explanation> KernelShap::explain_batch(const xnfv::ml::Model& model,
                                                   const xnfv::ml::Matrix& instances) {
    // Per-row seeds are drawn sequentially so row r sees the same stream the
    // r-th call of a sequential explain() loop would; the rows themselves
    // then run in parallel (nested loops inside explain_seeded fall back to
    // inline execution on pool workers).  The base value is constant across
    // rows, so it is resolved once here rather than per row.
    const double base =
        background_.empty() ? 0.0 : base_cache_.get(model, background_);
    std::vector<std::uint64_t> seeds(instances.rows());
    for (auto& s : seeds) s = rng_.next_u64();
    std::vector<Explanation> out(instances.rows());
    xnfv::parallel_for(instances.rows(), config_.threads, [&](std::size_t r) {
        out[r] = explain_seeded(model, instances.row(r), seeds[r], base);
    });
    return out;
}

Explanation KernelShap::explain_seeded(const xnfv::ml::Model& model,
                                       std::span<const double> x,
                                       std::uint64_t call_seed,
                                       double base_value) const {
    const std::size_t d = model.num_features();
    if (x.size() != d) throw std::invalid_argument("KernelShap: input size mismatch");
    if (background_.empty()) throw std::invalid_argument("KernelShap: empty background");
    if (d == 0) throw std::invalid_argument("KernelShap: zero features");

    const auto& bg = background_.samples();
    const std::size_t bg_rows = bg.rows();

    Explanation e;
    e.method = name();
    check_budget(config_.cancel);
    e.prediction = model.predict(x);
    e.base_value = base_value;
    e.attributions.assign(d, 0.0);
    // v(full): all features from x — still averaged over bg_rows identical
    // probes, matching the legacy value_of() bit for bit.
    double fx = 0.0;
    {
        ProbeScratch scratch;
        MaskSet full;
        full.assign(1, d);
        MaskSet::set_all(full.mask(0), d);
        fx = masked_value(model, x, bg, full.mask(0), scratch);
    }
    const double delta = fx - e.base_value;

    if (d == 1) {  // single feature carries everything
        e.attributions[0] = delta;
        return e;
    }

    // --- Phase 1: full enumeration of outermost coalition sizes -----------
    // First pass decides which sizes fit the budget; the masks themselves
    // are written afterwards, straight into one packed MaskSet (no
    // per-coalition vector<bool>).
    std::size_t budget = config_.max_coalitions;
    std::vector<bool> size_enumerated(d, false);  // indexed by coalition size
    std::size_t n_enumerated = 0;

    // Exact C(d, s) by stepwise integer multiplication (each intermediate is
    // itself a binomial, so it never exceeds the result).  The *budget*
    // arithmetic below keeps the historical exp(log_binomial) form — it
    // decides how many random draws remain, and changing its rounding would
    // change sampled coalitions — but slot layout needs the true
    // combination count: enumerate_size writes exactly C(d, s) masks.
    const auto exact_binomial = [d](std::size_t s) {
        std::size_t c = 1;
        for (std::size_t i = 1; i <= s; ++i) c = c * (d - s + i) / i;
        return c;
    };
    for (std::size_t s = 1; s <= d / 2; ++s) {
        const std::size_t t = d - s;  // paired size
        const bool self_paired = (s == t);
        const double count_s = std::exp(log_binomial(d, s));
        const double total = self_paired ? count_s : 2.0 * count_s;
        if (total > static_cast<double>(budget)) break;
        size_enumerated[s] = true;
        if (!self_paired) size_enumerated[t] = true;
        budget -= static_cast<std::size_t>(total);
        n_enumerated += (self_paired ? 1 : 2) * exact_binomial(s);
    }

    // --- Phase 2: random sampling over the remaining sizes ----------------
    std::vector<double> residual_mass(d, 0.0);
    double total_residual = 0.0;
    for (std::size_t s = 1; s < d; ++s) {
        if (size_enumerated[s]) continue;
        residual_mass[s] =
            shapley_kernel_weight(d, s) * std::exp(log_binomial(d, s));
        total_residual += residual_mass[s];
    }
    std::size_t n_random = 0;
    std::size_t per_draw = 1;
    double w_each = 0.0;
    if (total_residual > 0.0 && budget > 0) {
        n_random = config_.paired_sampling ? budget / 2 : budget;
        per_draw = config_.paired_sampling ? 2 : 1;
        // Each random coalition stands for an equal share of the residual
        // kernel mass.
        w_each = total_residual / std::max<std::size_t>(1, n_random) /
                 (config_.paired_sampling ? 2.0 : 1.0);
    }

    const std::size_t first = n_enumerated;
    const std::size_t n = n_enumerated + n_random * per_draw;
    if (n == 0) throw std::invalid_argument("KernelShap: coalition budget too small");

    MaskSet masks;
    masks.assign(n, d);
    std::vector<double> weights(n, 0.0);

    // Enumerated sizes, in the same outward-in order as before.
    std::size_t slot = 0;
    const auto enumerate_size = [&](std::size_t s, double w) {
        std::vector<std::size_t> idx(s);
        for (std::size_t i = 0; i < s; ++i) idx[i] = i;
        while (true) {
            auto m = masks.mask(slot);
            for (std::size_t i : idx) MaskSet::set(m, i);
            weights[slot] = w;
            ++slot;
            // Next combination (lexicographic).
            std::size_t k = s;
            while (k > 0 && idx[k - 1] == d - s + (k - 1)) --k;
            if (k == 0) break;
            ++idx[k - 1];
            for (std::size_t j = k; j < s; ++j) idx[j] = idx[j - 1] + 1;
        }
    };
    for (std::size_t s = 1; s <= d / 2; ++s) {
        if (!size_enumerated[s]) continue;
        const std::size_t t = d - s;
        enumerate_size(s, shapley_kernel_weight(d, s));
        if (t != s) enumerate_size(t, shapley_kernel_weight(d, t));
    }

    if (n_random > 0) {
        // Draw k's coalition from its own RNG stream and write it into a
        // fixed slot, so the sampled set is identical for any thread count.
        xnfv::parallel_for_chunks(
            n_random, config_.threads, [&](std::size_t kb, std::size_t ke) {
                std::vector<std::size_t> members;  // reused across draws
                for (std::size_t k = kb; k < ke; ++k) {
                    check_budget(config_.cancel);
                    auto stream = xnfv::ml::Rng::stream(call_seed, k);
                    const std::size_t s = stream.weighted_index(residual_mass);
                    stream.sample_without_replacement(d, s, members);
                    const std::size_t sampled_slot = first + k * per_draw + per_draw - 1;
                    auto cm = masks.mask(sampled_slot);
                    for (std::size_t m : members) MaskSet::set(cm, m);
                    weights[sampled_slot] = w_each;
                    if (config_.paired_sampling) {
                        auto comp = masks.mask(first + k * per_draw);
                        MaskSet::complement(cm, comp, d);
                        weights[first + k * per_draw] = w_each;
                    }
                }
            });
    }

    // --- Phase 3: constrained weighted least squares -----------------------
    // Eliminate phi_{d-1} via the efficiency constraint
    //   sum_i phi_i = delta,
    // regressing  y = v(S) - v0 - z_{d-1} * delta  on  (z_i - z_{d-1})_{i<d-1}.
    // Evaluating v(S) dominates the cost: coalition probes are materialized
    // into a per-chunk scratch matrix, blocks of coalitions go through one
    // predict_batch each, and every coalition's value is reduced over its
    // background rows in row order — bitwise identical to the per-row
    // predict() loop for any thread count.
    xnfv::ml::Matrix design(n, d - 1);
    std::vector<double> y(n), w(n);
    const std::size_t block = std::max<std::size_t>(1, kProbeBlockRows / bg_rows);
    xnfv::parallel_for_chunks(n, config_.threads, [&](std::size_t begin, std::size_t end) {
        ProbeScratch scratch;
        for (std::size_t c0 = begin; c0 < end; c0 += block) {
            check_budget(config_.cancel);
            const std::size_t c1 = std::min(c0 + block, end);
            scratch.ensure((c1 - c0) * bg_rows, d);
            for (std::size_t c = c0; c < c1; ++c) {
                const auto m = masks.mask(c);
                for (std::size_t b = 0; b < bg_rows; ++b)
                    fill_masked_row(scratch.rows.row((c - c0) * bg_rows + b), x, bg.row(b), m);
            }
            const auto preds = scratch.preds_span((c1 - c0) * bg_rows);
            model.predict_batch(scratch.rows, preds);
            for (std::size_t c = c0; c < c1; ++c) {
                const std::size_t off = (c - c0) * bg_rows;
                double acc = 0.0;
                for (std::size_t b = 0; b < bg_rows; ++b) acc += preds[off + b];
                const double v = acc / static_cast<double>(bg_rows);
                const auto m = masks.mask(c);
                const double z_last = MaskSet::test(m, d - 1) ? 1.0 : 0.0;
                y[c] = v - e.base_value - z_last * delta;
                w[c] = weights[c];
                auto row = design.row(c);
                for (std::size_t j = 0; j + 1 < d; ++j)
                    row[j] = (MaskSet::test(m, j) ? 1.0 : 0.0) - z_last;
            }
        }
    });

    const auto beta = xnfv::ml::weighted_least_squares(design, y, w, config_.l2);
    double sum_beta = 0.0;
    for (std::size_t j = 0; j + 1 < d; ++j) {
        e.attributions[j] = beta[j];
        sum_beta += beta[j];
    }
    e.attributions[d - 1] = delta - sum_beta;
    return e;
}

}  // namespace xnfv::xai
