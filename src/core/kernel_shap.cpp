#include "core/kernel_shap.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/exact_shapley.hpp"  // shapley_kernel_weight, log_binomial
#include "core/parallel.hpp"

namespace xnfv::xai {

namespace {

/// A coalition scheduled for evaluation.
struct Coalition {
    std::vector<bool> mask;
    double weight = 0.0;
};

/// Enumerates all size-s subsets of d features into `out` with weight w.
void enumerate_size(std::size_t d, std::size_t s, double w, std::vector<Coalition>& out) {
    std::vector<std::size_t> idx(s);
    for (std::size_t i = 0; i < s; ++i) idx[i] = i;
    while (true) {
        Coalition c;
        c.mask.assign(d, false);
        for (std::size_t i : idx) c.mask[i] = true;
        c.weight = w;
        out.push_back(std::move(c));
        // Next combination (lexicographic).
        std::size_t k = s;
        while (k > 0 && idx[k - 1] == d - s + (k - 1)) --k;
        if (k == 0) break;
        ++idx[k - 1];
        for (std::size_t j = k; j < s; ++j) idx[j] = idx[j - 1] + 1;
    }
}

}  // namespace

double KernelShap::value_of(const xnfv::ml::Model& model, std::span<const double> x,
                            const std::vector<bool>& mask) const {
    const auto& bg = background_.samples();
    std::vector<double> probe(x.size());
    double acc = 0.0;
    for (std::size_t b = 0; b < bg.rows(); ++b) {
        const auto brow = bg.row(b);
        for (std::size_t j = 0; j < x.size(); ++j) probe[j] = mask[j] ? x[j] : brow[j];
        acc += model.predict(probe);
    }
    return acc / static_cast<double>(bg.rows());
}

Explanation KernelShap::explain(const xnfv::ml::Model& model, std::span<const double> x) {
    return explain_seeded(model, x, rng_.next_u64());
}

std::vector<Explanation> KernelShap::explain_batch(const xnfv::ml::Model& model,
                                                   const xnfv::ml::Matrix& instances) {
    // Per-row seeds are drawn sequentially so row r sees the same stream the
    // r-th call of a sequential explain() loop would; the rows themselves
    // then run in parallel (nested loops inside explain_seeded fall back to
    // inline execution on pool workers).
    std::vector<std::uint64_t> seeds(instances.rows());
    for (auto& s : seeds) s = rng_.next_u64();
    std::vector<Explanation> out(instances.rows());
    xnfv::parallel_for(instances.rows(), config_.threads, [&](std::size_t r) {
        out[r] = explain_seeded(model, instances.row(r), seeds[r]);
    });
    return out;
}

Explanation KernelShap::explain_seeded(const xnfv::ml::Model& model,
                                       std::span<const double> x,
                                       std::uint64_t call_seed) const {
    const std::size_t d = model.num_features();
    if (x.size() != d) throw std::invalid_argument("KernelShap: input size mismatch");
    if (background_.empty()) throw std::invalid_argument("KernelShap: empty background");
    if (d == 0) throw std::invalid_argument("KernelShap: zero features");

    Explanation e;
    e.method = name();
    check_budget(config_.cancel);
    e.prediction = model.predict(x);
    e.base_value = value_of(model, x, std::vector<bool>(d, false));
    e.attributions.assign(d, 0.0);
    const double fx = value_of(model, x, std::vector<bool>(d, true));
    const double delta = fx - e.base_value;

    if (d == 1) {  // single feature carries everything
        e.attributions[0] = delta;
        return e;
    }

    // --- Phase 1: full enumeration of outermost coalition sizes -----------
    std::vector<Coalition> coalitions;
    std::size_t budget = config_.max_coalitions;
    std::vector<bool> size_enumerated(d, false);  // indexed by coalition size

    for (std::size_t s = 1; s <= d / 2; ++s) {
        const std::size_t t = d - s;  // paired size
        const bool self_paired = (s == t);
        const double count_s = std::exp(log_binomial(d, s));
        const double total = self_paired ? count_s : 2.0 * count_s;
        if (total > static_cast<double>(budget)) break;
        const double w = shapley_kernel_weight(d, s);
        enumerate_size(d, s, w, coalitions);
        size_enumerated[s] = true;
        if (!self_paired) {
            enumerate_size(d, t, shapley_kernel_weight(d, t), coalitions);
            size_enumerated[t] = true;
        }
        budget -= static_cast<std::size_t>(total);
    }

    // --- Phase 2: random sampling over the remaining sizes ----------------
    std::vector<double> residual_mass(d, 0.0);
    double total_residual = 0.0;
    for (std::size_t s = 1; s < d; ++s) {
        if (size_enumerated[s]) continue;
        residual_mass[s] =
            shapley_kernel_weight(d, s) * std::exp(log_binomial(d, s));
        total_residual += residual_mass[s];
    }
    if (total_residual > 0.0 && budget > 0) {
        const std::size_t n_random =
            config_.paired_sampling ? budget / 2 : budget;
        // Each random coalition stands for an equal share of the residual
        // kernel mass.
        const double w_each =
            total_residual / std::max<std::size_t>(1, n_random) /
            (config_.paired_sampling ? 2.0 : 1.0);
        // Draw k's coalition from its own RNG stream and write it into a
        // fixed slot, so the sampled set is identical for any thread count.
        const std::size_t per_draw = config_.paired_sampling ? 2 : 1;
        const std::size_t first = coalitions.size();
        coalitions.resize(first + n_random * per_draw);
        xnfv::parallel_for(n_random, config_.threads, [&](std::size_t k) {
            check_budget(config_.cancel);
            auto stream = xnfv::ml::Rng::stream(call_seed, k);
            const std::size_t s = stream.weighted_index(residual_mass);
            const auto members = stream.sample_without_replacement(d, s);
            Coalition c;
            c.mask.assign(d, false);
            for (std::size_t m : members) c.mask[m] = true;
            c.weight = w_each;
            if (config_.paired_sampling) {
                Coalition comp;
                comp.mask.resize(d);
                for (std::size_t j = 0; j < d; ++j) comp.mask[j] = !c.mask[j];
                comp.weight = w_each;
                coalitions[first + k * per_draw] = std::move(comp);
            }
            coalitions[first + k * per_draw + per_draw - 1] = std::move(c);
        });
    }

    if (coalitions.empty())
        throw std::invalid_argument("KernelShap: coalition budget too small");

    // --- Phase 3: constrained weighted least squares -----------------------
    // Eliminate phi_{d-1} via the efficiency constraint
    //   sum_i phi_i = delta,
    // regressing  y = v(S) - v0 - z_{d-1} * delta  on  (z_i - z_{d-1})_{i<d-1}.
    // Evaluating v(S) dominates the cost (|coalitions| * background model
    // evaluations) and is parallelized over coalitions; every task writes
    // only its own design/target slots.
    const std::size_t n = coalitions.size();
    xnfv::ml::Matrix design(n, d - 1);
    std::vector<double> y(n), w(n);
    xnfv::parallel_for(n, config_.threads, [&](std::size_t r) {
        check_budget(config_.cancel);
        const Coalition& c = coalitions[r];
        const double v = value_of(model, x, c.mask);
        const double z_last = c.mask[d - 1] ? 1.0 : 0.0;
        y[r] = v - e.base_value - z_last * delta;
        w[r] = c.weight;
        auto row = design.row(r);
        for (std::size_t j = 0; j + 1 < d; ++j)
            row[j] = (c.mask[j] ? 1.0 : 0.0) - z_last;
    });

    const auto beta = xnfv::ml::weighted_least_squares(design, y, w, config_.l2);
    double sum_beta = 0.0;
    for (std::size_t j = 0; j + 1 < d; ++j) {
        e.attributions[j] = beta[j];
        sum_beta += beta[j];
    }
    e.attributions[d - 1] = delta - sum_beta;
    return e;
}

}  // namespace xnfv::xai
