// Batched flat-tree TreeSHAP: the exact path-dependent algorithm of
// core/tree_shap.hpp re-implemented over a structure-of-arrays ensemble
// layout (the same re-packing mlcore/flat_tree.hpp applies to inference).
//
// Why a second implementation exists:
//   * The recursive walker pointer-chases 48-byte TreeNode structs, allocates
//     a fresh collapsed-path vector set at every leaf, and recurses — fine
//     for one-shot analysis, hostile to a serving hot path.
//   * FlatTreeShap packs every tree's nodes into contiguous parallel arrays
//     (int32 feature / child ids, double threshold / leaf value) with the
//     per-edge cover ratios *precomputed at build time*, walks each tree with
//     an explicit-stack (non-recursive) EXTEND/UNWIND that maintains the
//     collapsed per-distinct-feature path state incrementally in preallocated
//     per-thread scratch, and blocks batches tree-major so each tree's arrays
//     stay cache-hot across a block of instances.  Warm explains perform zero
//     heap allocations.
//
// Determinism contract (DESIGN.md §16): the floating-point operation sequence
// per instance is *identical* to the recursive core/tree_shap walker — same
// leaf visit order, same first-occurrence path collapse, same polynomial DP,
// same lgamma-based Shapley weights (precomputed once into a triangular
// table), same ensemble aggregation order — so attributions, base values and
// predictions are bitwise-equal to TreeShap::explain at any thread count.
// tests/test_fast_path.cpp pins this for Tree / Forest / GBT.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/explanation.hpp"
#include "mlcore/matrix.hpp"
#include "mlcore/model.hpp"

namespace xnfv::ml {
struct TreeNode;
}

namespace xnfv::xai {

/// Preallocated per-thread working state for FlatTreeShap walks.  resize()
/// once (or let explain() do it lazily); every subsequent walk reuses the
/// buffers without touching the allocator.
struct FlatShapScratch {
    /// Sizes every buffer for a model with `num_features` features whose
    /// deepest tree has `max_depth` edges on a root-to-leaf path.  Idempotent
    /// and cheap when already large enough.
    void resize(std::size_t num_features, std::size_t max_depth);

    // Explicit DFS stack: node id + visit phase (0 = first entry, 1 = left
    // subtree done, 2 = right subtree done).
    std::vector<std::int32_t> frame_node;
    std::vector<std::uint8_t> frame_phase;

    // Per-pushed-edge undo log so UNWIND restores the exact prior bits of the
    // collapsed state (bitwise equal to a from-scratch collapse at the leaf).
    std::vector<std::int32_t> edge_pos;
    std::vector<std::uint8_t> edge_created;
    std::vector<double> edge_saved_a;
    std::vector<double> edge_saved_b;

    // Collapsed path state: distinct features in first-occurrence order with
    // their indicator products (a) and cover-ratio products (b).
    std::vector<std::int32_t> feat;
    std::vector<double> a;
    std::vector<double> b;

    std::vector<double> poly;      ///< subset-size polynomial DP buffer
    std::vector<double> phi;       ///< ensemble attribution accumulator
    std::vector<double> tree_phi;  ///< per-tree buffer (GBT scaling)
};

/// Immutable SoA snapshot of a tree ensemble prepared for fast exact SHAP.
/// Self-contained: holds copies of the node data (plus the ensemble scalars
/// needed for aggregation and prediction), so it does not retain a model
/// pointer and can outlive or be shared across model snapshots.
class FlatTreeShap {
public:
    enum class Kind : std::uint8_t { tree, forest, gbt };

    /// Builds from a DecisionTree, RandomForest, or GradientBoostedTrees.
    /// Returns nullptr for any other model type (the router falls back to
    /// probe explainers).  Throws std::invalid_argument on an unfitted
    /// ensemble, matching the recursive TreeShap messages.
    [[nodiscard]] static std::shared_ptr<const FlatTreeShap> build(
        const xnfv::ml::Model& model);

    [[nodiscard]] Kind kind() const noexcept { return kind_; }
    [[nodiscard]] std::size_t num_features() const noexcept { return num_features_; }
    [[nodiscard]] std::size_t num_trees() const noexcept { return roots_.size(); }
    [[nodiscard]] std::size_t num_nodes() const noexcept { return feature_.size(); }
    [[nodiscard]] std::size_t max_depth() const noexcept { return max_depth_; }

    /// Exact SHAP attributions + prediction for one instance, bitwise equal
    /// to TreeShap::explain on the source model.  Zero allocations once
    /// `scratch` is warm.  Throws std::invalid_argument on size mismatch.
    [[nodiscard]] Explanation explain(std::span<const double> x,
                                      FlatShapScratch& scratch) const;

    /// Explains every row, tree-major-blocked and row-parallel; each row's
    /// result is bitwise identical to explain() at any thread count.
    [[nodiscard]] std::vector<Explanation> explain_batch(
        const xnfv::ml::Matrix& instances, std::size_t threads = 0) const;

private:
    FlatTreeShap() = default;

    void add_tree(std::span<const xnfv::ml::TreeNode> nodes);
    void build_weight_table();

    /// One tree's walk: accumulates phi, returns the tree's base value.
    double walk_tree(std::size_t tree, std::span<const double> x,
                     FlatShapScratch& s, std::span<double> phi) const;

    /// Leaf value reached by descending tree `tree` at x (the scalar
    /// DecisionTree::predict descent over the flat arrays).
    [[nodiscard]] double tree_value(std::size_t tree, std::span<const double> x) const;

    /// Ensemble prediction replicated bitwise from the source model:
    /// tree → leaf value, forest → mean of tree values, gbt → margin.
    [[nodiscard]] double predict(std::span<const double> x) const;

    /// Per-instance explanation with ensemble aggregation, given warm scratch.
    void explain_into(std::span<const double> x, FlatShapScratch& s,
                      Explanation& e) const;

    // Node SoA, all trees concatenated; child ids rebased to absolute.
    std::vector<std::int32_t> feature_;    ///< split feature; -1 marks a leaf
    std::vector<double> threshold_;        ///< left iff x[feature] <= threshold
    std::vector<std::int32_t> left_;
    std::vector<std::int32_t> right_;
    std::vector<double> value_;            ///< leaf value (junk for internal)
    std::vector<double> ratio_left_;       ///< cover(left) / max(cover, 1)
    std::vector<double> ratio_right_;      ///< cover(right) / max(cover, 1)
    std::vector<std::int32_t> roots_;      ///< absolute root id per tree

    // Triangular Shapley-weight table: weight(k, m) = k!(m-k-1)!/m! for
    // m in 1..max_depth_, k in 0..m-1, computed with the same lgamma
    // expression as the recursive walker so the bits match.
    std::vector<double> weight_;
    std::vector<std::size_t> weight_off_;  ///< row offset per m

    Kind kind_ = Kind::tree;
    std::size_t num_features_ = 0;
    std::size_t max_depth_ = 0;
    double base_score_ = 0.0;     ///< GBT only
    double learning_rate_ = 0.0;  ///< GBT only
};

/// Drop-in Explainer for the exact tree fast path: same name ("tree_shap"),
/// same results (bitwise), same error text as the recursive TreeShap, but
/// runs the flat kernel and reuses its scratch across calls.  The flat
/// snapshot is built lazily on first explain() and rebuilt if a different
/// model is passed.
class FlatTreeShapExplainer final : public Explainer {
public:
    FlatTreeShapExplainer() = default;
    explicit FlatTreeShapExplainer(std::size_t threads) : threads_(threads) {}

    [[nodiscard]] Explanation explain(const xnfv::ml::Model& model,
                                      std::span<const double> x) override;

    [[nodiscard]] std::vector<Explanation> explain_batch(
        const xnfv::ml::Model& model, const xnfv::ml::Matrix& instances) override;

    [[nodiscard]] std::string name() const override { return "tree_shap"; }

private:
    const FlatTreeShap& ensure(const xnfv::ml::Model& model);

    const xnfv::ml::Model* cached_model_ = nullptr;
    std::shared_ptr<const FlatTreeShap> flat_;
    FlatShapScratch scratch_;
    std::size_t threads_ = 0;
};

}  // namespace xnfv::xai
