#include "core/gradient.hpp"

#include <cmath>
#include <stdexcept>

#include "mlcore/mlp.hpp"

namespace xnfv::xai {

std::vector<double> model_gradient(const xnfv::ml::Model& model, std::span<const double> x,
                                   double fd_eps) {
    if (x.size() != model.num_features())
        throw std::invalid_argument("model_gradient: size mismatch");
    if (const auto* mlp = dynamic_cast<const xnfv::ml::Mlp*>(&model))
        return mlp->input_gradient(x);

    // Central finite differences with per-feature relative step.
    std::vector<double> grad(x.size());
    std::vector<double> probe(x.begin(), x.end());
    for (std::size_t j = 0; j < x.size(); ++j) {
        const double h = fd_eps * std::max(1.0, std::abs(x[j]));
        probe[j] = x[j] + h;
        const double up = model.predict(probe);
        probe[j] = x[j] - h;
        const double down = model.predict(probe);
        probe[j] = x[j];
        grad[j] = (up - down) / (2.0 * h);
    }
    return grad;
}

Explanation IntegratedGradients::explain(const xnfv::ml::Model& model,
                                         std::span<const double> x) {
    const std::size_t d = model.num_features();
    if (x.size() != d) throw std::invalid_argument("IntegratedGradients: size mismatch");
    if (background_.empty())
        throw std::invalid_argument("IntegratedGradients: empty background");
    if (config_.steps == 0)
        throw std::invalid_argument("IntegratedGradients: steps must be > 0");

    const auto& baseline = background_.means();
    std::vector<double> acc(d, 0.0);
    std::vector<double> point(d);
    // Midpoint rule: alpha = (k + 0.5)/steps avoids evaluating the exact
    // endpoints, where ReLU kinks would bias a left/right rule.
    for (std::size_t k = 0; k < config_.steps; ++k) {
        const double alpha =
            (static_cast<double>(k) + 0.5) / static_cast<double>(config_.steps);
        for (std::size_t j = 0; j < d; ++j)
            point[j] = baseline[j] + alpha * (x[j] - baseline[j]);
        const auto grad = model_gradient(model, point);
        for (std::size_t j = 0; j < d; ++j) acc[j] += grad[j];
    }

    Explanation e;
    e.method = name();
    e.prediction = model.predict(x);
    e.base_value = model.predict(baseline);
    e.attributions.assign(d, 0.0);
    for (std::size_t j = 0; j < d; ++j)
        e.attributions[j] =
            (x[j] - baseline[j]) * acc[j] / static_cast<double>(config_.steps);
    return e;
}

SmoothGrad::SmoothGrad(BackgroundData background, xnfv::ml::Rng rng, Config config)
    : background_(std::move(background)), rng_(rng), config_(config) {
    if (background_.empty()) throw std::invalid_argument("SmoothGrad: empty background");
    const auto& bg = background_.samples();
    const auto& mu = background_.means();
    sigma_.assign(bg.cols(), 0.0);
    for (std::size_t r = 0; r < bg.rows(); ++r) {
        const auto row = bg.row(r);
        for (std::size_t c = 0; c < sigma_.size(); ++c) {
            const double d = row[c] - mu[c];
            sigma_[c] += d * d;
        }
    }
    for (double& s : sigma_) {
        s = std::sqrt(s / static_cast<double>(bg.rows()));
        if (s == 0.0) s = 1.0;
    }
}

Explanation SmoothGrad::explain(const xnfv::ml::Model& model, std::span<const double> x) {
    const std::size_t d = model.num_features();
    if (x.size() != d) throw std::invalid_argument("SmoothGrad: size mismatch");
    if (config_.samples == 0)
        throw std::invalid_argument("SmoothGrad: samples must be > 0");

    std::vector<double> acc(d, 0.0);
    std::vector<double> probe(d);
    for (std::size_t s = 0; s < config_.samples; ++s) {
        for (std::size_t j = 0; j < d; ++j)
            probe[j] = x[j] + rng_.normal(0.0, config_.noise_fraction * sigma_[j]);
        const auto grad = model_gradient(model, probe);
        for (std::size_t j = 0; j < d; ++j) acc[j] += grad[j];
    }
    for (double& v : acc) v /= static_cast<double>(config_.samples);
    last_gradient_ = acc;

    Explanation e;
    e.method = name();
    e.prediction = model.predict(x);
    e.base_value = model.predict(background_.means());
    e.attributions.assign(d, 0.0);
    const auto& mu = background_.means();
    // Gradient*input form relative to the baseline: same units as the
    // additive explainers, but additivity is approximate by construction.
    for (std::size_t j = 0; j < d; ++j) e.attributions[j] = acc[j] * (x[j] - mu[j]);
    return e;
}

}  // namespace xnfv::xai
