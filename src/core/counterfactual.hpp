// Counterfactual explanations: "what is the smallest actionable change that
// flips this prediction?"
//
// For an operator staring at a predicted SLA violation this is the most
// directly useful explanation form: not *why* the model predicts a breach,
// but *what to do about it* — add a core, shed load, re-place a VNF.  The
// search is a greedy coordinate descent with random restarts over the
// actionable features only (an operator cannot change the weather, i.e. the
// offered traffic, but can change allocations), constrained to the feature
// ranges observed in the background data.
#pragma once

#include <optional>

#include "core/explanation.hpp"
#include "mlcore/model.hpp"
#include "mlcore/rng.hpp"

namespace xnfv::xai {

struct CounterfactualOptions {
    /// Per-feature actionability mask; empty = all actionable.
    std::vector<bool> actionable;
    /// Decision threshold: we search for prediction on the *other* side.
    double threshold = 0.5;
    /// true = flip to below threshold (e.g. violation -> no violation).
    bool target_below = true;
    std::size_t max_changed_features = 3;
    std::size_t random_restarts = 8;
    std::size_t steps_per_feature = 12;  ///< line-search resolution
    /// Margin required beyond the threshold for a confident flip.
    double margin = 0.02;
};

struct Counterfactual {
    std::vector<double> point;        ///< the counterfactual input
    std::vector<std::size_t> changed; ///< features altered
    double prediction = 0.0;          ///< model output at the counterfactual
    double l1_distance = 0.0;         ///< standardized L1 distance from x
};

/// Searches for a counterfactual of model(x).  Returns nullopt if no flip
/// was found within the budget.
[[nodiscard]] std::optional<Counterfactual> find_counterfactual(
    const xnfv::ml::Model& model, std::span<const double> x,
    const BackgroundData& background, xnfv::ml::Rng& rng,
    const CounterfactualOptions& options = {});

}  // namespace xnfv::xai
