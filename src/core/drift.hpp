// Explanation-based model monitoring.
//
// Accuracy monitoring needs labels, which in the NFV setting arrive only
// after an SLA breach has already happened.  Attribution monitoring needs
// none: if the *reasons* behind the model's predictions shift — the global
// |SHAP| ranking reorders, mass moves to different counters — either the
// traffic mix changed (covariate drift) or the deployed pipeline changed
// under the model (schema/leak drift, cf. experiment A3).  Both warrant a
// retrain review long before the violation counter moves.
#pragma once

#include <string>

#include "core/aggregate.hpp"

namespace xnfv::xai {

struct DriftThresholds {
    double min_rank_correlation = 0.7;  ///< Spearman of mean|phi| vectors
    double min_top3_jaccard = 0.5;      ///< overlap of the top-3 feature sets
    double max_mass_shift = 0.3;        ///< L1 distance of normalized mean|phi|
};

struct DriftReport {
    double rank_correlation = 1.0;
    double top3_jaccard = 1.0;
    double mass_shift = 0.0;  ///< total attribution mass that moved (0..2)
    bool drifted = false;

    /// The features whose normalized attribution share changed the most,
    /// signed (positive = gained importance), sorted by |change|.
    std::vector<std::pair<std::size_t, double>> top_movers;

    [[nodiscard]] std::string to_string(
        std::span<const std::string> feature_names = {}) const;
};

/// Compares a current attribution aggregate against a reference window.
/// Both must cover the same feature set; throws std::invalid_argument
/// otherwise.
[[nodiscard]] DriftReport attribution_drift(const GlobalAttribution& reference,
                                            const GlobalAttribution& current,
                                            const DriftThresholds& thresholds = {});

}  // namespace xnfv::xai
