#include "core/surrogate.hpp"

#include <numeric>
#include <stdexcept>

#include "mlcore/metrics.hpp"

namespace xnfv::xai {

SurrogateResult fit_surrogate(const xnfv::ml::Model& model, const BackgroundData& background,
                              std::span<const std::string> feature_names, xnfv::ml::Rng& rng,
                              const SurrogateOptions& options) {
    if (background.size() < 10)
        throw std::invalid_argument("fit_surrogate: background too small");

    // Teacher labels over the background.
    xnfv::ml::Dataset distill;
    distill.task = xnfv::ml::Task::regression;  // teacher output is continuous
    distill.feature_names.assign(feature_names.begin(), feature_names.end());
    distill.x = background.samples();
    distill.y = model.predict_batch(background.samples());

    auto split = xnfv::ml::train_test_split(distill, options.holdout_fraction, rng);

    SurrogateResult result;
    xnfv::ml::DecisionTree::Config cfg;
    cfg.max_depth = options.max_depth;
    cfg.min_samples_leaf = options.min_samples_leaf;
    cfg.min_samples_split = 2 * options.min_samples_leaf;
    result.tree = xnfv::ml::DecisionTree(cfg);
    result.tree.fit(split.train);

    result.train_fidelity_r2 = xnfv::ml::r2_score(
        split.train.y, result.tree.predict_batch(split.train.x));
    result.fidelity_r2 =
        xnfv::ml::r2_score(split.test.y, result.tree.predict_batch(split.test.x));
    result.text = result.tree.to_text(feature_names);
    return result;
}

}  // namespace xnfv::xai
