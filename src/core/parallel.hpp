// Thread pool and deterministic data-parallel loops.
//
// Every hot loop in the explanation stack (coalition evaluation, permutation
// sweeps, LIME neighborhoods, PDP grids, batch prediction) is embarrassingly
// parallel, but the project's reproducibility contract demands that results
// are *bitwise identical* for 1 thread and N threads.  The utilities here
// make that easy to uphold:
//
//  * work is partitioned by *item index*, never by thread id — a task only
//    writes slots keyed by its indices, so the partition cannot leak into
//    the result;
//  * randomized loops derive one independent RNG stream per item via
//    Rng::stream(seed, item_index) instead of sharing a sequential
//    generator, so the draws an item sees do not depend on which thread
//    (or in what order) it runs;
//  * parallel_reduce buffers per-item results and folds them in ascending
//    index order, fixing the floating-point summation tree regardless of
//    thread count.
//
// A nested parallel_for issued from inside a pool worker runs inline on the
// calling thread (same results, no deadlock), so batch-over-rows loops can
// wrap explainers that are themselves parallel.
#pragma once

#include <algorithm>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace xnfv {

/// Fixed-size pool of worker threads consuming a FIFO task queue.
/// submit() returns a future that completes when the task ran (and carries
/// any exception the task threw).  The destructor drains already-submitted
/// tasks before joining.
class ThreadPool {
public:
    /// Spawns `num_threads` workers (clamped to at least 1).
    explicit ThreadPool(std::size_t num_threads);
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

    /// Enqueues a task; the returned future rethrows the task's exception.
    std::future<void> submit(std::function<void()> task);

    /// True when the calling thread is a worker of *any* ThreadPool — used
    /// by parallel_for to run nested loops inline instead of deadlocking on
    /// its own pool.
    [[nodiscard]] static bool inside_worker() noexcept;

private:
    void worker_loop();

    std::vector<std::thread> workers_;
    std::deque<std::packaged_task<void()>> tasks_;
    std::mutex mutex_;
    std::condition_variable cv_;
    bool stopping_ = false;
};

/// Process-wide default thread count: hardware_concurrency unless overridden.
[[nodiscard]] std::size_t default_threads() noexcept;

/// Overrides default_threads(); 0 restores hardware_concurrency.  The CLI
/// --threads flag lands here.  Call before the first parallel loop if the
/// shared pool should be sized to the override.
void set_default_threads(std::size_t n) noexcept;

/// Maps the conventional "0 means default" request to a concrete count.
[[nodiscard]] std::size_t resolve_threads(std::size_t requested) noexcept;

namespace detail {
/// Lazily-created pool shared by all parallel_for callers, sized to
/// default_threads() at first use.
[[nodiscard]] ThreadPool& shared_pool();
}  // namespace detail

/// Runs fn(begin, end) over a contiguous partition of [0, n) into at most
/// `threads` chunks (0 = default_threads()).  Blocks until all chunks
/// finish; rethrows the lowest-chunk-index worker exception.  Runs inline
/// when the resolved count is 1, n < 2, or the caller is itself a pool
/// worker.  Chunk boundaries may vary with `threads`, so fn must only write
/// state keyed by item index.
template <typename Fn>
void parallel_for_chunks(std::size_t n, std::size_t threads, Fn&& fn) {
    if (n == 0) return;
    const std::size_t t = std::min(resolve_threads(threads), n);
    if (t <= 1 || ThreadPool::inside_worker()) {
        fn(std::size_t{0}, n);
        return;
    }
    ThreadPool& pool = detail::shared_pool();
    const std::size_t chunk = (n + t - 1) / t;
    std::vector<std::future<void>> pending;
    pending.reserve(t);
    for (std::size_t begin = 0; begin < n; begin += chunk) {
        const std::size_t end = std::min(begin + chunk, n);
        pending.push_back(pool.submit([&fn, begin, end] { fn(begin, end); }));
    }
    std::exception_ptr first;
    for (auto& f : pending) {
        try {
            f.get();
        } catch (...) {
            if (!first) first = std::current_exception();
        }
    }
    if (first) std::rethrow_exception(first);
}

/// Element-wise parallel loop: fn(i) for every i in [0, n), partitioned into
/// at most `threads` contiguous chunks.
template <typename Fn>
void parallel_for(std::size_t n, std::size_t threads, Fn&& fn) {
    parallel_for_chunks(n, threads, [&fn](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) fn(i);
    });
}

/// Deterministic ordered reduction: computes fn(i) for every item in
/// parallel, then folds the buffered results in ascending index order —
/// acc = merge(acc, result_i) — so the merge tree (and thus floating-point
/// rounding) is independent of the thread count.  T must be default- and
/// move-constructible.
template <typename T, typename Fn, typename Merge>
[[nodiscard]] T parallel_reduce(std::size_t n, std::size_t threads, T init, Fn&& fn,
                                Merge&& merge) {
    std::vector<T> results(n);
    parallel_for(n, threads, [&](std::size_t i) { results[i] = fn(i); });
    T acc = std::move(init);
    for (T& r : results) acc = merge(std::move(acc), std::move(r));
    return acc;
}

}  // namespace xnfv
