#include "core/report.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

namespace xnfv::xai {

std::string incident_report(const xnfv::ml::Model& model, Explainer& explainer,
                            std::span<const double> x,
                            std::span<const std::string> feature_names,
                            const BackgroundData& background, xnfv::ml::Rng& rng,
                            const ReportOptions& options) {
    if (x.size() != model.num_features())
        throw std::invalid_argument("incident_report: size mismatch");

    auto e = explainer.explain(model, x);
    e.feature_names.assign(feature_names.begin(), feature_names.end());

    const auto name_of = [&](std::size_t j) {
        return j < feature_names.size() ? feature_names[j] : "f" + std::to_string(j);
    };

    std::ostringstream os;
    os.precision(3);
    const bool alert = e.prediction >= options.alert_threshold;
    os << "┌ incident report (" << explainer.name() << ")\n";
    os << "│ status: " << (alert ? "ALERT" : "ok") << "  model output "
       << e.prediction << " (baseline " << e.base_value << ")\n";
    os << "│ top drivers:\n";
    for (const std::size_t j : e.top_k(options.top_features)) {
        const double phi = e.attributions[j];
        os << "│   " << (phi >= 0.0 ? "+" : "-") << std::abs(phi) << "  "
           << name_of(j) << " = " << x[j]
           << (phi >= 0.0 ? "  (pushes toward alert)" : "  (pushes away)") << '\n';
    }

    if (options.counterfactual && alert) {
        const auto cf =
            find_counterfactual(model, x, background, rng, *options.counterfactual);
        if (cf) {
            os << "│ suggested remediation (model output would become "
               << cf->prediction << "):\n";
            for (const std::size_t j : cf->changed)
                os << "│   set " << name_of(j) << ": " << x[j] << " -> "
                   << cf->point[j] << '\n';
        } else {
            os << "│ no actionable remediation found within the search budget\n";
        }
    }
    os << "└\n";
    return os.str();
}

}  // namespace xnfv::xai
