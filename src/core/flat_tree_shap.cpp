#include "core/flat_tree_shap.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "core/parallel.hpp"
#include "mlcore/forest.hpp"
#include "mlcore/gbt.hpp"
#include "mlcore/tree.hpp"

namespace xnfv::xai {

using xnfv::ml::DecisionTree;
using xnfv::ml::GradientBoostedTrees;
using xnfv::ml::RandomForest;
using xnfv::ml::TreeNode;

namespace {

/// Shapley factorial weight k!(m-k-1)!/m! — the exact expression of the
/// recursive walker, so the table entries are bitwise identical to its
/// on-the-fly values.
double shapley_weight(std::size_t k, std::size_t m) {
    return std::exp(std::lgamma(static_cast<double>(k) + 1.0) +
                    std::lgamma(static_cast<double>(m - k)) -
                    std::lgamma(static_cast<double>(m) + 1.0));
}

/// EXTEND: apply one path edge to the collapsed per-distinct-feature state,
/// logging what UNWIND must undo.  Multiplications happen in descent (path)
/// order, exactly like the from-scratch collapse the recursive walker runs
/// at every leaf.
void push_edge(FlatShapScratch& s, std::int32_t f, double indicator, double ratio) {
    const std::size_t m = s.feat.size();
    std::size_t pos = 0;
    while (pos < m && s.feat[pos] != f) ++pos;
    if (pos == m) {
        s.feat.push_back(f);
        s.a.push_back(indicator);
        s.b.push_back(ratio);
        s.edge_pos.push_back(static_cast<std::int32_t>(pos));
        s.edge_created.push_back(1);
        s.edge_saved_a.push_back(0.0);
        s.edge_saved_b.push_back(0.0);
    } else {
        s.edge_pos.push_back(static_cast<std::int32_t>(pos));
        s.edge_created.push_back(0);
        s.edge_saved_a.push_back(s.a[pos]);
        s.edge_saved_b.push_back(s.b[pos]);
        s.a[pos] *= indicator;
        s.b[pos] *= ratio;
    }
}

/// UNWIND: restore the exact prior bits (saved copies, not recomputation),
/// so the state after unwinding equals a fresh collapse of the shorter path.
void pop_edge(FlatShapScratch& s) {
    if (s.edge_created.back() != 0) {
        s.feat.pop_back();
        s.a.pop_back();
        s.b.pop_back();
    } else {
        const auto pos = static_cast<std::size_t>(s.edge_pos.back());
        s.a[pos] = s.edge_saved_a.back();
        s.b[pos] = s.edge_saved_b.back();
    }
    s.edge_pos.pop_back();
    s.edge_created.pop_back();
    s.edge_saved_a.pop_back();
    s.edge_saved_b.pop_back();
}

}  // namespace

void FlatShapScratch::resize(std::size_t num_features, std::size_t max_depth) {
    const std::size_t cap = max_depth + 2;
    frame_node.reserve(cap);
    frame_phase.reserve(cap);
    edge_pos.reserve(cap);
    edge_created.reserve(cap);
    edge_saved_a.reserve(cap);
    edge_saved_b.reserve(cap);
    feat.reserve(cap);
    a.reserve(cap);
    b.reserve(cap);
    if (poly.size() < std::max<std::size_t>(max_depth, 1))
        poly.resize(std::max<std::size_t>(max_depth, 1));
    if (phi.size() < num_features) phi.resize(num_features);
    if (tree_phi.size() < num_features) tree_phi.resize(num_features);
}

std::shared_ptr<const FlatTreeShap> FlatTreeShap::build(const xnfv::ml::Model& model) {
    std::shared_ptr<FlatTreeShap> out(new FlatTreeShap());
    if (const auto* tree = dynamic_cast<const DecisionTree*>(&model)) {
        if (tree->nodes().empty())
            throw std::invalid_argument("tree_shap: unfitted tree");
        out->kind_ = Kind::tree;
        out->add_tree(tree->nodes());
    } else if (const auto* forest = dynamic_cast<const RandomForest*>(&model)) {
        if (forest->trees().empty())
            throw std::invalid_argument("TreeShap: unfitted forest");
        out->kind_ = Kind::forest;
        for (const auto& t : forest->trees()) out->add_tree(t.nodes());
    } else if (const auto* gbt = dynamic_cast<const GradientBoostedTrees*>(&model)) {
        if (gbt->trees().empty())
            throw std::invalid_argument("TreeShap: unfitted gbt");
        out->kind_ = Kind::gbt;
        out->base_score_ = gbt->base_score();
        out->learning_rate_ = gbt->learning_rate();
        for (const auto& t : gbt->trees()) out->add_tree(t.nodes());
    } else {
        return nullptr;
    }
    out->num_features_ = model.num_features();
    out->build_weight_table();
    return out;
}

void FlatTreeShap::add_tree(std::span<const TreeNode> nodes) {
    const auto rebase = static_cast<std::int32_t>(feature_.size());
    roots_.push_back(rebase);
    for (const TreeNode& n : nodes) {
        feature_.push_back(n.feature);
        threshold_.push_back(n.threshold);
        value_.push_back(n.value);
        if (n.is_leaf()) {
            left_.push_back(-1);
            right_.push_back(-1);
            ratio_left_.push_back(0.0);
            ratio_right_.push_back(0.0);
        } else {
            left_.push_back(rebase + n.left);
            right_.push_back(rebase + n.right);
            // Same denominator guard and division operands the recursive
            // walker evaluates per visit; precomputing yields the same bits.
            const double denom = n.cover > 0.0 ? n.cover : 1.0;
            ratio_left_.push_back(nodes[static_cast<std::size_t>(n.left)].cover / denom);
            ratio_right_.push_back(nodes[static_cast<std::size_t>(n.right)].cover / denom);
        }
    }
    std::vector<std::pair<std::size_t, std::size_t>> stack{{0, 0}};
    while (!stack.empty()) {
        const auto [i, depth] = stack.back();
        stack.pop_back();
        const TreeNode& n = nodes[i];
        if (n.is_leaf()) {
            max_depth_ = std::max(max_depth_, depth);
        } else {
            stack.emplace_back(static_cast<std::size_t>(n.left), depth + 1);
            stack.emplace_back(static_cast<std::size_t>(n.right), depth + 1);
        }
    }
}

void FlatTreeShap::build_weight_table() {
    weight_off_.assign(max_depth_ + 1, 0);
    weight_.clear();
    for (std::size_t m = 1; m <= max_depth_; ++m) {
        weight_off_[m] = weight_.size();
        for (std::size_t k = 0; k < m; ++k) weight_.push_back(shapley_weight(k, m));
    }
}

double FlatTreeShap::walk_tree(std::size_t tree, std::span<const double> x,
                               FlatShapScratch& s, std::span<double> phi) const {
    s.frame_node.clear();
    s.frame_phase.clear();
    s.edge_pos.clear();
    s.edge_created.clear();
    s.edge_saved_a.clear();
    s.edge_saved_b.clear();
    s.feat.clear();
    s.a.clear();
    s.b.clear();

    double base = 0.0;
    s.frame_node.push_back(roots_[tree]);
    s.frame_phase.push_back(0);
    while (!s.frame_node.empty()) {
        const auto n = static_cast<std::size_t>(s.frame_node.back());
        if (feature_[n] < 0) {
            // Leaf: the collapsed state is exactly the recursive walker's
            // from-scratch path collapse (see push_edge/pop_edge).
            const double leaf_value = value_[n];
            const std::size_t m = s.feat.size();
            double prob_all_b = 1.0;
            for (std::size_t j = 0; j < m; ++j) prob_all_b *= s.b[j];
            base += leaf_value * prob_all_b;
            if (m != 0) {
                const double* w = weight_.data() + weight_off_[m];
                const double* a = s.a.data();
                const double* b = s.b.data();
                double* poly = s.poly.data();
                for (std::size_t i = 0; i < m; ++i) {
                    std::fill(poly, poly + m, 0.0);
                    poly[0] = 1.0;
                    std::size_t used = 0;
                    for (std::size_t j = 0; j < m; ++j) {
                        if (j == i) continue;
                        for (std::size_t k = used + 2; k-- > 0;)
                            poly[k] = poly[k] * b[j] + (k > 0 ? poly[k - 1] * a[j] : 0.0);
                        ++used;
                    }
                    double contribution = 0.0;
                    for (std::size_t k = 0; k < m; ++k) contribution += w[k] * poly[k];
                    phi[static_cast<std::size_t>(s.feat[i])] +=
                        leaf_value * (a[i] - b[i]) * contribution;
                }
            }
            s.frame_node.pop_back();
            s.frame_phase.pop_back();
            continue;
        }

        const auto f = static_cast<std::size_t>(feature_[n]);
        const std::uint8_t phase = s.frame_phase.back();
        if (phase == 0) {
            push_edge(s, feature_[n], x[f] <= threshold_[n] ? 1.0 : 0.0, ratio_left_[n]);
            s.frame_phase.back() = 1;
            s.frame_node.push_back(left_[n]);
            s.frame_phase.push_back(0);
        } else if (phase == 1) {
            pop_edge(s);
            push_edge(s, feature_[n], x[f] <= threshold_[n] ? 0.0 : 1.0, ratio_right_[n]);
            s.frame_phase.back() = 2;
            s.frame_node.push_back(right_[n]);
            s.frame_phase.push_back(0);
        } else {
            pop_edge(s);
            s.frame_node.pop_back();
            s.frame_phase.pop_back();
        }
    }
    return base;
}

double FlatTreeShap::tree_value(std::size_t tree, std::span<const double> x) const {
    auto idx = static_cast<std::size_t>(roots_[tree]);
    while (feature_[idx] >= 0) {
        idx = static_cast<std::size_t>(
            x[static_cast<std::size_t>(feature_[idx])] <= threshold_[idx] ? left_[idx]
                                                                          : right_[idx]);
    }
    return value_[idx];
}

double FlatTreeShap::predict(std::span<const double> x) const {
    switch (kind_) {
        case Kind::tree:
            return tree_value(0, x);
        case Kind::forest: {
            double sum = 0.0;
            for (std::size_t t = 0; t < roots_.size(); ++t) sum += tree_value(t, x);
            return sum / static_cast<double>(roots_.size());
        }
        case Kind::gbt: {
            double m = base_score_;
            for (std::size_t t = 0; t < roots_.size(); ++t)
                m += learning_rate_ * tree_value(t, x);
            return m;  // margin space, matching TreeShap::explain
        }
    }
    return 0.0;  // unreachable
}

void FlatTreeShap::explain_into(std::span<const double> x, FlatShapScratch& s,
                                Explanation& e) const {
    const std::size_t d = num_features_;
    e.method = "tree_shap";
    e.attributions.assign(d, 0.0);
    switch (kind_) {
        case Kind::tree:
            e.base_value = walk_tree(0, x, s, e.attributions);
            break;
        case Kind::forest: {
            std::fill(s.phi.begin(), s.phi.end(), 0.0);
            double base = 0.0;
            for (std::size_t t = 0; t < roots_.size(); ++t)
                base += walk_tree(t, x, s, s.phi);
            const double inv = 1.0 / static_cast<double>(roots_.size());
            for (std::size_t i = 0; i < d; ++i) e.attributions[i] = s.phi[i] * inv;
            e.base_value = base * inv;
            break;
        }
        case Kind::gbt: {
            std::fill(s.phi.begin(), s.phi.end(), 0.0);
            double base = base_score_;
            for (std::size_t t = 0; t < roots_.size(); ++t) {
                std::fill(s.tree_phi.begin(), s.tree_phi.end(), 0.0);
                base += learning_rate_ * walk_tree(t, x, s, s.tree_phi);
                for (std::size_t i = 0; i < d; ++i)
                    s.phi[i] += learning_rate_ * s.tree_phi[i];
            }
            for (std::size_t i = 0; i < d; ++i) e.attributions[i] = s.phi[i];
            e.base_value = base;
            break;
        }
    }
    e.prediction = predict(x);
}

Explanation FlatTreeShap::explain(std::span<const double> x,
                                  FlatShapScratch& scratch) const {
    if (x.size() != num_features_)
        throw std::invalid_argument("TreeShap: input size mismatch");
    scratch.resize(num_features_, max_depth_);
    Explanation e;
    explain_into(x, scratch, e);
    return e;
}

std::vector<Explanation> FlatTreeShap::explain_batch(const xnfv::ml::Matrix& instances,
                                                     std::size_t threads) const {
    if (instances.cols() != num_features_)
        throw std::invalid_argument("TreeShap: input size mismatch");
    const std::size_t d = num_features_;
    std::vector<Explanation> out(instances.rows());
    // Instances per tree-major block: the whole block's phi stripe
    // (kInstanceBlock × d doubles) stays resident while one tree's node
    // arrays stream through cache; per-instance accumulators are private, so
    // each row's operation sequence is the tree-ascending order of
    // explain() regardless of blocking or thread count.
    constexpr std::size_t kInstanceBlock = 32;
    xnfv::parallel_for_chunks(instances.rows(), threads, [&](std::size_t begin,
                                                             std::size_t end) {
        FlatShapScratch s;
        s.resize(d, max_depth_);
        std::vector<double> block_phi(kInstanceBlock * d);
        std::vector<double> block_base(kInstanceBlock);
        for (std::size_t b0 = begin; b0 < end; b0 += kInstanceBlock) {
            const std::size_t bn = std::min(kInstanceBlock, end - b0);
            std::fill(block_phi.begin(), block_phi.begin() + static_cast<std::ptrdiff_t>(bn * d), 0.0);
            for (std::size_t i = 0; i < bn; ++i)
                block_base[i] = kind_ == Kind::gbt ? base_score_ : 0.0;
            for (std::size_t t = 0; t < roots_.size(); ++t) {
                for (std::size_t i = 0; i < bn; ++i) {
                    const auto x = instances.row(b0 + i);
                    std::span<double> phi(block_phi.data() + i * d, d);
                    if (kind_ == Kind::gbt) {
                        std::fill(s.tree_phi.begin(), s.tree_phi.end(), 0.0);
                        block_base[i] += learning_rate_ * walk_tree(t, x, s, s.tree_phi);
                        for (std::size_t j = 0; j < d; ++j)
                            phi[j] += learning_rate_ * s.tree_phi[j];
                    } else {
                        block_base[i] += walk_tree(t, x, s, phi);
                    }
                }
            }
            for (std::size_t i = 0; i < bn; ++i) {
                Explanation& e = out[b0 + i];
                const auto x = instances.row(b0 + i);
                const std::span<const double> phi(block_phi.data() + i * d, d);
                e.method = "tree_shap";
                e.attributions.assign(d, 0.0);
                if (kind_ == Kind::forest) {
                    const double inv = 1.0 / static_cast<double>(roots_.size());
                    for (std::size_t j = 0; j < d; ++j) e.attributions[j] = phi[j] * inv;
                    e.base_value = block_base[i] * inv;
                } else {
                    for (std::size_t j = 0; j < d; ++j) e.attributions[j] = phi[j];
                    e.base_value = block_base[i];
                }
                e.prediction = predict(x);
            }
        }
    });
    return out;
}

const FlatTreeShap& FlatTreeShapExplainer::ensure(const xnfv::ml::Model& model) {
    if (flat_ == nullptr || cached_model_ != &model) {
        auto flat = FlatTreeShap::build(model);
        if (flat == nullptr)
            throw std::invalid_argument("TreeShap: model '" + model.name() +
                                        "' is not a supported tree ensemble");
        flat_ = std::move(flat);
        cached_model_ = &model;
        scratch_.resize(flat_->num_features(), flat_->max_depth());
    }
    return *flat_;
}

Explanation FlatTreeShapExplainer::explain(const xnfv::ml::Model& model,
                                           std::span<const double> x) {
    if (x.size() != model.num_features())
        throw std::invalid_argument("TreeShap: input size mismatch");
    return ensure(model).explain(x, scratch_);
}

std::vector<Explanation> FlatTreeShapExplainer::explain_batch(
    const xnfv::ml::Model& model, const xnfv::ml::Matrix& instances) {
    return ensure(model).explain_batch(instances, threads_);
}

}  // namespace xnfv::xai
