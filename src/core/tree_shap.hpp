// Exact Shapley attribution for tree ensembles (TreeSHAP).
//
// Uses the path-dependent value function of Lundberg et al. (2018):
//     v(S) = EXPVALUE(x, S) — walk the tree, following x for features in S
//     and distributing over both children by training-cover ratios for
//     features outside S.
// Key observation enabling an exact polynomial algorithm: v(S) decomposes
// over leaves, and each leaf's reach probability factorizes per distinct
// path feature j into
//     a_j  (indicator that x satisfies every split on j along the path)  if j ∈ S
//     b_j  (product of cover ratios of the j-edges along the path)        if j ∉ S
// so the Shapley sum for a leaf reduces to elementary-symmetric-style sums
// computed by an O(m^2) polynomial DP over the m ≤ depth distinct path
// features (O(m^3) per leaf total).  Features off the path are dummies and
// receive nothing from that leaf.  The result is *exact* — no sampling — and
// the unit tests verify it against brute-force enumeration of the same value
// function.
//
// Complexity: O(leaves * depth^3) per instance per tree; orders of magnitude
// cheaper than KernelSHAP's thousands of model evaluations (figure F3).
#pragma once

#include "core/explanation.hpp"
#include "mlcore/forest.hpp"
#include "mlcore/gbt.hpp"
#include "mlcore/tree.hpp"

namespace xnfv::xai {

/// Attributions for a single decision tree; returns the base value (the
/// cover-weighted expectation of the tree) and adds phi into `phi` (must be
/// sized num_features, caller-zeroed or accumulating an ensemble).
double tree_shap_single(const xnfv::ml::DecisionTree& tree, std::span<const double> x,
                        std::span<double> phi);

/// Path-dependent expected value EXPVALUE(x, S) of a tree — the value
/// function attributed by tree_shap_single; exposed for verification.
[[nodiscard]] double tree_expected_value(const xnfv::ml::DecisionTree& tree,
                                         std::span<const double> x,
                                         const std::vector<bool>& in_coalition);

/// Explainer wrapper dispatching on the concrete tree model type
/// (DecisionTree, RandomForest, or GradientBoostedTrees).
///
/// For GBT classifiers the attribution is computed in margin (log-odds)
/// space, where the ensemble is additive: `prediction` and `base_value` in
/// the returned Explanation are margins, and the efficiency identity holds
/// in that space.  Callers comparing against probability-space explainers
/// should compare rankings, not magnitudes (experiment T2 does exactly
/// this).
class TreeShap final : public Explainer {
public:
    TreeShap() = default;

    /// Throws std::invalid_argument if the model is not a supported tree
    /// ensemble.
    [[nodiscard]] Explanation explain(const xnfv::ml::Model& model,
                                      std::span<const double> x) override;

    [[nodiscard]] std::string name() const override { return "tree_shap"; }
};

}  // namespace xnfv::xai
