// Cooperative cancellation / compute-budget token for explainers.
//
// Sampling-based attribution is explicitly budget-tunable: fewer coalitions
// or permutations give a coarser but still well-defined answer, and a
// request whose deadline has passed is worth nothing at all.  A CancelToken
// lets the caller (the serving layer, a CLI timeout, a test) stop an
// in-flight explanation between its natural work units — one coalition, one
// permutation, one neighborhood sample — without preemption and without
// threading a clock through every config struct.
//
// Polling contract: explainers call check() at block granularity (never per
// model evaluation), so the cost is one relaxed atomic load plus, when a
// deadline is armed, one steady_clock read per block.  A fired token throws
// BudgetExceeded, which unwinds through parallel_for (the pool rethrows the
// lowest-index chunk's exception) and is translated by the service into a
// deadline_exceeded response.  Cancellation never corrupts state: explainers
// are pure functions of (seed, config), so an aborted call simply has no
// result.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <stdexcept>

namespace xnfv::xai {

/// Thrown by CancelToken::check() when the budget is exhausted.
class BudgetExceeded : public std::runtime_error {
public:
    BudgetExceeded() : std::runtime_error("explanation budget exceeded") {}
};

/// Shared stop signal: manual cancel(), an absolute deadline, or both.
/// Thread-safe; a default-constructed token never fires.
class CancelToken {
public:
    using Clock = std::chrono::steady_clock;

    CancelToken() = default;

    /// Arms an absolute wall-in (steady) deadline; expired() turns true once
    /// the clock passes it.
    void set_deadline(Clock::time_point deadline) noexcept {
        deadline_ns_.store(deadline.time_since_epoch().count(),
                           std::memory_order_relaxed);
        armed_.store(true, std::memory_order_release);
    }

    /// Manual stop: expired() is true from now on.
    void cancel() noexcept { cancelled_.store(true, std::memory_order_release); }

    [[nodiscard]] bool expired() const noexcept {
        if (cancelled_.load(std::memory_order_acquire)) return true;
        if (!armed_.load(std::memory_order_acquire)) return false;
        return Clock::now().time_since_epoch().count() >=
               deadline_ns_.load(std::memory_order_relaxed);
    }

    /// Poll point for explainers: throws BudgetExceeded once fired.
    void check() const {
        if (expired()) throw BudgetExceeded();
    }

private:
    std::atomic<bool> cancelled_{false};
    std::atomic<bool> armed_{false};
    std::atomic<Clock::rep> deadline_ns_{0};
};

/// Poll helper for the `const CancelToken* cancel` config convention: null
/// means "never cancelled" and costs nothing.
inline void check_budget(const CancelToken* cancel) {
    if (cancel != nullptr) cancel->check();
}

}  // namespace xnfv::xai
