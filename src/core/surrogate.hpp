// Global surrogate: distill a black-box model into a shallow decision tree.
//
// The surrogate is trained on the background inputs with the *teacher's*
// outputs as labels; its R^2 against the teacher on held-out probes is the
// "global fidelity" reported by ablation A2 (comprehensibility/fidelity
// trade-off as a function of tree depth).
#pragma once

#include "core/explanation.hpp"
#include "mlcore/model.hpp"
#include "mlcore/rng.hpp"
#include "mlcore/tree.hpp"

namespace xnfv::xai {

struct SurrogateResult {
    xnfv::ml::DecisionTree tree;
    double fidelity_r2 = 0.0;     ///< R^2 of surrogate vs teacher on held-out probes
    double train_fidelity_r2 = 0.0;
    std::string text;             ///< rendered tree (operator-facing)
};

struct SurrogateOptions {
    int max_depth = 3;
    std::size_t min_samples_leaf = 10;
    /// Fraction of background rows held out for fidelity measurement.
    double holdout_fraction = 0.3;
};

/// Fits a surrogate tree to `model` over `background`.
[[nodiscard]] SurrogateResult fit_surrogate(const xnfv::ml::Model& model,
                                            const BackgroundData& background,
                                            std::span<const std::string> feature_names,
                                            xnfv::ml::Rng& rng,
                                            const SurrogateOptions& options = {});

}  // namespace xnfv::xai
