#include "core/pdp.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/parallel.hpp"
#include "core/probe.hpp"

namespace xnfv::xai {

PdpResult partial_dependence(const xnfv::ml::Model& model, const BackgroundData& background,
                             std::size_t feature, const PdpOptions& options) {
    if (background.empty())
        throw std::invalid_argument("partial_dependence: empty background");
    if (feature >= background.num_features())
        throw std::invalid_argument("partial_dependence: feature out of range");
    if (options.grid_points < 2)
        throw std::invalid_argument("partial_dependence: need >= 2 grid points");

    const auto& bg = background.samples();

    // Quantile-clipped grid over the feature's background distribution.
    std::vector<double> values(bg.rows());
    for (std::size_t r = 0; r < bg.rows(); ++r) values[r] = bg(r, feature);
    std::sort(values.begin(), values.end());
    const auto quantile = [&](double q) {
        const double pos = q * static_cast<double>(values.size() - 1);
        const auto lo = static_cast<std::size_t>(pos);
        const std::size_t hi = std::min(lo + 1, values.size() - 1);
        const double frac = pos - static_cast<double>(lo);
        return values[lo] * (1.0 - frac) + values[hi] * frac;
    };
    const double lo = quantile(options.lo_quantile);
    const double hi = quantile(options.hi_quantile);

    PdpResult result;
    result.feature = feature;
    result.grid.resize(options.grid_points);
    result.mean.assign(options.grid_points, 0.0);
    if (options.keep_ice) result.ice.assign(bg.rows(), std::vector<double>(options.grid_points));

    // Grid points are independent model sweeps; each task writes only its
    // own grid/mean slot (and column g of the preallocated ICE curves).
    // Each chunk copies the background once into a reusable probe matrix,
    // then per grid point only rewrites the swept column and issues one
    // predict_batch; the per-point mean stays in background-row order, so
    // the curve is bitwise identical to the per-probe predict() loop.
    xnfv::parallel_for_chunks(
        options.grid_points, options.threads, [&](std::size_t begin, std::size_t end) {
            ProbeScratch scratch;
            const std::size_t n = bg.rows();
            scratch.ensure(n, bg.cols());
            for (std::size_t r = 0; r < n; ++r) {
                const auto row = bg.row(r);
                std::copy(row.begin(), row.end(), scratch.rows.row(r).begin());
            }
            const auto preds = scratch.preds_span(n);
            for (std::size_t g = begin; g < end; ++g) {
                const double v = lo + (hi - lo) * static_cast<double>(g) /
                                          static_cast<double>(options.grid_points - 1);
                result.grid[g] = v;
                for (std::size_t r = 0; r < n; ++r) scratch.rows(r, feature) = v;
                model.predict_batch(scratch.rows, preds);
                double acc = 0.0;
                for (std::size_t r = 0; r < n; ++r) {
                    acc += preds[r];
                    if (options.keep_ice) result.ice[r][g] = preds[r];
                }
                result.mean[g] = acc / static_cast<double>(n);
            }
        });
    return result;
}

}  // namespace xnfv::xai
