#include "core/pdp.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/parallel.hpp"

namespace xnfv::xai {

PdpResult partial_dependence(const xnfv::ml::Model& model, const BackgroundData& background,
                             std::size_t feature, const PdpOptions& options) {
    if (background.empty())
        throw std::invalid_argument("partial_dependence: empty background");
    if (feature >= background.num_features())
        throw std::invalid_argument("partial_dependence: feature out of range");
    if (options.grid_points < 2)
        throw std::invalid_argument("partial_dependence: need >= 2 grid points");

    const auto& bg = background.samples();

    // Quantile-clipped grid over the feature's background distribution.
    std::vector<double> values(bg.rows());
    for (std::size_t r = 0; r < bg.rows(); ++r) values[r] = bg(r, feature);
    std::sort(values.begin(), values.end());
    const auto quantile = [&](double q) {
        const double pos = q * static_cast<double>(values.size() - 1);
        const auto lo = static_cast<std::size_t>(pos);
        const std::size_t hi = std::min(lo + 1, values.size() - 1);
        const double frac = pos - static_cast<double>(lo);
        return values[lo] * (1.0 - frac) + values[hi] * frac;
    };
    const double lo = quantile(options.lo_quantile);
    const double hi = quantile(options.hi_quantile);

    PdpResult result;
    result.feature = feature;
    result.grid.resize(options.grid_points);
    result.mean.assign(options.grid_points, 0.0);
    if (options.keep_ice) result.ice.assign(bg.rows(), std::vector<double>(options.grid_points));

    // Grid points are independent model sweeps; each task writes only its
    // own grid/mean slot (and column g of the preallocated ICE curves).
    xnfv::parallel_for_chunks(
        options.grid_points, options.threads, [&](std::size_t begin, std::size_t end) {
            std::vector<double> probe(bg.cols());
            for (std::size_t g = begin; g < end; ++g) {
                const double v = lo + (hi - lo) * static_cast<double>(g) /
                                          static_cast<double>(options.grid_points - 1);
                result.grid[g] = v;
                double acc = 0.0;
                for (std::size_t r = 0; r < bg.rows(); ++r) {
                    const auto row = bg.row(r);
                    std::copy(row.begin(), row.end(), probe.begin());
                    probe[feature] = v;
                    const double pred = model.predict(probe);
                    acc += pred;
                    if (options.keep_ice) result.ice[r][g] = pred;
                }
                result.mean[g] = acc / static_cast<double>(bg.rows());
            }
        });
    return result;
}

}  // namespace xnfv::xai
