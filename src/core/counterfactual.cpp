#include "core/counterfactual.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace xnfv::xai {

namespace {

struct SearchSpace {
    std::vector<double> lo, hi, sigma;
};

SearchSpace ranges_of(const BackgroundData& background) {
    const auto& bg = background.samples();
    SearchSpace s;
    s.lo.assign(bg.cols(), std::numeric_limits<double>::infinity());
    s.hi.assign(bg.cols(), -std::numeric_limits<double>::infinity());
    s.sigma.assign(bg.cols(), 0.0);
    const auto& mu = background.means();
    for (std::size_t r = 0; r < bg.rows(); ++r) {
        const auto row = bg.row(r);
        for (std::size_t c = 0; c < bg.cols(); ++c) {
            s.lo[c] = std::min(s.lo[c], row[c]);
            s.hi[c] = std::max(s.hi[c], row[c]);
            s.sigma[c] += (row[c] - mu[c]) * (row[c] - mu[c]);
        }
    }
    for (double& v : s.sigma) {
        v = std::sqrt(v / static_cast<double>(bg.rows()));
        if (v == 0.0) v = 1.0;
    }
    return s;
}

}  // namespace

std::optional<Counterfactual> find_counterfactual(const xnfv::ml::Model& model,
                                                  std::span<const double> x,
                                                  const BackgroundData& background,
                                                  xnfv::ml::Rng& rng,
                                                  const CounterfactualOptions& options) {
    const std::size_t d = model.num_features();
    if (x.size() != d) throw std::invalid_argument("find_counterfactual: size mismatch");
    if (background.empty())
        throw std::invalid_argument("find_counterfactual: empty background");
    if (!options.actionable.empty() && options.actionable.size() != d)
        throw std::invalid_argument("find_counterfactual: actionable mask size mismatch");

    const SearchSpace space = ranges_of(background);
    const double target = options.target_below ? options.threshold - options.margin
                                               : options.threshold + options.margin;
    const auto satisfied = [&](double pred) {
        return options.target_below ? pred <= target : pred >= target;
    };
    const auto is_actionable = [&](std::size_t j) {
        return options.actionable.empty() || options.actionable[j];
    };

    std::optional<Counterfactual> best;
    const auto consider = [&](const std::vector<double>& point,
                              const std::vector<std::size_t>& changed) {
        const double pred = model.predict(point);
        if (!satisfied(pred)) return;
        double l1 = 0.0;
        for (std::size_t j : changed) l1 += std::abs(point[j] - x[j]) / space.sigma[j];
        // Prefer fewer changed features, then smaller distance.
        if (!best || changed.size() < best->changed.size() ||
            (changed.size() == best->changed.size() && l1 < best->l1_distance)) {
            best = Counterfactual{.point = point, .changed = changed, .prediction = pred,
                                  .l1_distance = l1};
        }
    };

    for (std::size_t restart = 0; restart < options.random_restarts; ++restart) {
        std::vector<double> cur(x.begin(), x.end());
        std::vector<std::size_t> changed;

        // Random feature order makes restarts explore different subsets.
        std::vector<std::size_t> order;
        for (std::size_t j = 0; j < d; ++j)
            if (is_actionable(j)) order.push_back(j);
        rng.shuffle(order);

        for (std::size_t j : order) {
            if (changed.size() >= options.max_changed_features) break;

            // Line search over the feature's background range: pick the value
            // that moves the prediction furthest toward the target.
            double best_val = cur[j];
            double best_pred = model.predict(cur);
            std::vector<double> probe = cur;
            for (std::size_t s = 0; s <= options.steps_per_feature; ++s) {
                const double v = space.lo[j] + (space.hi[j] - space.lo[j]) *
                                                   static_cast<double>(s) /
                                                   static_cast<double>(options.steps_per_feature);
                probe[j] = v;
                const double pred = model.predict(probe);
                const bool better = options.target_below ? pred < best_pred
                                                         : pred > best_pred;
                if (better) {
                    best_pred = pred;
                    best_val = v;
                }
            }
            if (best_val != cur[j]) {
                cur[j] = best_val;
                changed.push_back(j);
                if (satisfied(best_pred)) break;
            }
        }
        if (!changed.empty()) {
            std::sort(changed.begin(), changed.end());
            consider(cur, changed);
        }
    }

    if (!best) return std::nullopt;

    // Post-process: try to undo each change individually (it may have become
    // unnecessary once later features moved).
    bool improved = true;
    while (improved && best->changed.size() > 1) {
        improved = false;
        for (std::size_t k = 0; k < best->changed.size(); ++k) {
            std::vector<double> trial = best->point;
            trial[best->changed[k]] = x[best->changed[k]];
            const double pred = model.predict(trial);
            if (satisfied(pred)) {
                std::vector<std::size_t> reduced = best->changed;
                reduced.erase(reduced.begin() + static_cast<std::ptrdiff_t>(k));
                consider(trial, reduced);
                improved = true;
                break;
            }
        }
    }
    return best;
}

}  // namespace xnfv::xai
