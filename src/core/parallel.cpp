#include "core/parallel.hpp"

#include <atomic>

namespace xnfv {

namespace {

/// Set for the lifetime of every pool worker thread (see inside_worker()).
thread_local bool t_inside_worker = false;

std::atomic<std::size_t> g_default_threads{0};  // 0 = hardware_concurrency

}  // namespace

ThreadPool::ThreadPool(std::size_t num_threads) {
    const std::size_t n = std::max<std::size_t>(1, num_threads);
    workers_.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
    {
        const std::lock_guard lock(mutex_);
        stopping_ = true;
    }
    cv_.notify_all();
    for (std::thread& w : workers_) w.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
    std::packaged_task<void()> packaged(std::move(task));
    std::future<void> result = packaged.get_future();
    {
        const std::lock_guard lock(mutex_);
        tasks_.push_back(std::move(packaged));
    }
    cv_.notify_one();
    return result;
}

bool ThreadPool::inside_worker() noexcept { return t_inside_worker; }

void ThreadPool::worker_loop() {
    t_inside_worker = true;
    for (;;) {
        std::packaged_task<void()> task;
        {
            std::unique_lock lock(mutex_);
            cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
            if (tasks_.empty()) return;  // stopping and drained
            task = std::move(tasks_.front());
            tasks_.pop_front();
        }
        task();  // exceptions are captured into the task's future
    }
}

std::size_t default_threads() noexcept {
    const std::size_t n = g_default_threads.load(std::memory_order_relaxed);
    if (n > 0) return n;
    const unsigned hc = std::thread::hardware_concurrency();
    return hc == 0 ? 1 : hc;
}

void set_default_threads(std::size_t n) noexcept {
    g_default_threads.store(n, std::memory_order_relaxed);
}

std::size_t resolve_threads(std::size_t requested) noexcept {
    return requested == 0 ? default_threads() : requested;
}

ThreadPool& detail::shared_pool() {
    static ThreadPool pool(default_threads());
    return pool;
}

}  // namespace xnfv
