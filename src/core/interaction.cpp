#include "core/interaction.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

namespace xnfv::xai {

namespace {

/// Evaluation state shared by the PD computations: the first `n` background
/// rows double as PD evaluation points and marginalization sample.
struct PdContext {
    const xnfv::ml::Model& model;
    const xnfv::ml::Matrix& bg;
    std::size_t n;

    /// Centered one-feature PD evaluated at each point's own feature value:
    /// out[p] = PD_j(bg[p][j]) - mean.
    [[nodiscard]] std::vector<double> pd_single(std::size_t j) const {
        std::vector<double> out(n, 0.0);
        std::vector<double> probe(bg.cols());
        for (std::size_t p = 0; p < n; ++p) {
            const double v = bg(p, j);
            double acc = 0.0;
            for (std::size_t r = 0; r < n; ++r) {
                const auto row = bg.row(r);
                std::copy(row.begin(), row.end(), probe.begin());
                probe[j] = v;
                acc += model.predict(probe);
            }
            out[p] = acc / static_cast<double>(n);
        }
        center(out);
        return out;
    }

    /// Centered two-feature PD at each point's own (j, k) values.
    [[nodiscard]] std::vector<double> pd_pair(std::size_t j, std::size_t k) const {
        std::vector<double> out(n, 0.0);
        std::vector<double> probe(bg.cols());
        for (std::size_t p = 0; p < n; ++p) {
            const double vj = bg(p, j);
            const double vk = bg(p, k);
            double acc = 0.0;
            for (std::size_t r = 0; r < n; ++r) {
                const auto row = bg.row(r);
                std::copy(row.begin(), row.end(), probe.begin());
                probe[j] = vj;
                probe[k] = vk;
                acc += model.predict(probe);
            }
            out[p] = acc / static_cast<double>(n);
        }
        center(out);
        return out;
    }

    static void center(std::vector<double>& v) {
        double m = 0.0;
        for (double x : v) m += x;
        m /= static_cast<double>(v.size());
        for (double& x : v) x -= m;
    }
};

double h2_from_pds(const std::vector<double>& pdj, const std::vector<double>& pdk,
                   const std::vector<double>& pdjk) {
    double num = 0.0, den = 0.0;
    for (std::size_t p = 0; p < pdjk.size(); ++p) {
        const double resid = pdjk[p] - pdj[p] - pdk[p];
        num += resid * resid;
        den += pdjk[p] * pdjk[p];
    }
    if (den <= 1e-12) return 0.0;  // the pair has no joint effect at all
    return std::clamp(num / den, 0.0, 1.0);
}

}  // namespace

double friedman_h2(const xnfv::ml::Model& model, const BackgroundData& background,
                   std::size_t j, std::size_t k, const InteractionOptions& options) {
    if (background.empty()) throw std::invalid_argument("friedman_h2: empty background");
    const std::size_t d = background.num_features();
    if (j >= d || k >= d) throw std::invalid_argument("friedman_h2: feature out of range");
    if (j == k) throw std::invalid_argument("friedman_h2: features must differ");

    const PdContext ctx{.model = model, .bg = background.samples(),
                        .n = std::min(options.max_points, background.size())};
    return h2_from_pds(ctx.pd_single(j), ctx.pd_single(k), ctx.pd_pair(j, k));
}

std::vector<std::vector<double>> interaction_matrix(const xnfv::ml::Model& model,
                                                    const BackgroundData& background,
                                                    const InteractionOptions& options) {
    if (background.empty())
        throw std::invalid_argument("interaction_matrix: empty background");
    const std::size_t d = background.num_features();
    const PdContext ctx{.model = model, .bg = background.samples(),
                        .n = std::min(options.max_points, background.size())};

    // Single-feature PDs are reused across all pairs.
    std::vector<std::vector<double>> singles(d);
    for (std::size_t j = 0; j < d; ++j) singles[j] = ctx.pd_single(j);

    std::vector<std::vector<double>> h(d, std::vector<double>(d, 0.0));
    for (std::size_t j = 0; j < d; ++j) {
        for (std::size_t k = j + 1; k < d; ++k) {
            const double v = h2_from_pds(singles[j], singles[k], ctx.pd_pair(j, k));
            h[j][k] = v;
            h[k][j] = v;
        }
    }
    return h;
}

}  // namespace xnfv::xai
