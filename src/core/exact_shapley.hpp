// Exact Shapley values by subset enumeration.
//
// Exponential in the number of features (2^d model-evaluation batches), so
// this is a *reference implementation*: the F3 runtime figure shows the blow
// up, the A1 ablation uses it as ground truth for KernelSHAP's sampling
// error, and the unit tests validate both KernelSHAP and TreeSHAP against
// it.  The value function is interventional:
//     v(S) = E_b~background [ f(x_S, b_{!S}) ]
#pragma once

#include "core/explanation.hpp"
#include "mlcore/model.hpp"

namespace xnfv::xai {

class ExactShapley final : public Explainer {
public:
    struct Config {
        /// Hard limit on d to avoid accidental 2^30 explosions.
        std::size_t max_features = 20;
    };

    explicit ExactShapley(BackgroundData background)
        : ExactShapley(std::move(background), Config{}) {}
    ExactShapley(BackgroundData background, Config config)
        : background_(std::move(background)), config_(config) {}

    /// Throws std::invalid_argument if the model has more features than the
    /// configured limit or the background is empty.
    [[nodiscard]] Explanation explain(const xnfv::ml::Model& model,
                                      std::span<const double> x) override;

    [[nodiscard]] std::string name() const override { return "exact_shapley"; }

private:
    BackgroundData background_;
    Config config_;
};

/// Shapley kernel weight for a coalition of size `s` out of `d` players:
/// w = (d - 1) / (C(d, s) * s * (d - s)); infinite at s == 0 and s == d
/// (those coalitions are handled as constraints).  Exposed for KernelSHAP
/// and tests.
[[nodiscard]] double shapley_kernel_weight(std::size_t d, std::size_t s);

/// ln C(n, k) via lgamma (stable for large n).
[[nodiscard]] double log_binomial(std::size_t n, std::size_t k);

}  // namespace xnfv::xai
