// Shared machinery for blocked masked-probe inference.
//
// Every perturbation explainer bottoms out in the same pattern: synthesize
// probe rows that mix the explained instance with background draws, run the
// model on them, and fold the predictions back into attributions.  This
// header centralizes the three pieces that make that path fast without
// changing a single output bit (DESIGN.md §11):
//
//   * MaskSet — coalition masks packed into uint64_t words (one contiguous
//     allocation for all coalitions, no per-coalition std::vector<bool>),
//   * ProbeScratch — a reusable probe Matrix + prediction buffer so inner
//     loops allocate nothing once warm,
//   * BaseValueCache — memoizes E_b[f(b)], the all-false-mask value that is
//     constant per (model, background) yet was recomputed per instance.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/explanation.hpp"
#include "mlcore/matrix.hpp"
#include "mlcore/model.hpp"

namespace xnfv::xai {

/// Fixed-size set of packed bitmasks over `d` features; mask i occupies
/// words [i*words_per_mask, (i+1)*words_per_mask) with bit j of word j/64
/// marking feature j as "taken from the instance".
class MaskSet {
public:
    MaskSet() = default;

    /// Re-shapes to `count` all-zero masks over `d` features, reusing
    /// storage capacity.
    void assign(std::size_t count, std::size_t d) {
        d_ = d;
        words_per_ = (d + 63) / 64;
        words_.assign(count * words_per_, 0);
        count_ = count;
    }

    [[nodiscard]] std::size_t count() const noexcept { return count_; }
    [[nodiscard]] std::size_t dims() const noexcept { return d_; }
    [[nodiscard]] std::size_t words_per_mask() const noexcept { return words_per_; }

    [[nodiscard]] std::span<std::uint64_t> mask(std::size_t i) noexcept {
        return {words_.data() + i * words_per_, words_per_};
    }
    [[nodiscard]] std::span<const std::uint64_t> mask(std::size_t i) const noexcept {
        return {words_.data() + i * words_per_, words_per_};
    }

    static void set(std::span<std::uint64_t> m, std::size_t j) noexcept {
        m[j >> 6] |= std::uint64_t{1} << (j & 63);
    }
    [[nodiscard]] static bool test(std::span<const std::uint64_t> m, std::size_t j) noexcept {
        return (m[j >> 6] >> (j & 63)) & 1;
    }

    /// Fills every bit j < d of `m` (tail bits stay clear).
    static void set_all(std::span<std::uint64_t> m, std::size_t d) noexcept {
        for (std::size_t j = 0; j < d; ++j) set(m, j);
    }

    /// dst = ~src restricted to the low d bits.
    static void complement(std::span<const std::uint64_t> src, std::span<std::uint64_t> dst,
                           std::size_t d) noexcept {
        for (std::size_t w = 0; w < src.size(); ++w) dst[w] = ~src[w];
        const std::size_t tail = d & 63;
        if (tail != 0) dst[dst.size() - 1] &= (std::uint64_t{1} << tail) - 1;
    }

private:
    std::size_t d_ = 0;
    std::size_t words_per_ = 0;
    std::size_t count_ = 0;
    std::vector<std::uint64_t> words_;
};

/// Per-task reusable probe buffers: one Matrix of synthesized rows plus the
/// matching prediction vector.  ensure() only ever grows the underlying
/// storage, so a warm scratch makes the evaluation loop allocation-free
/// (verified by test_probe_alloc).
struct ProbeScratch {
    xnfv::ml::Matrix rows;
    std::vector<double> preds;

    void ensure(std::size_t n, std::size_t d) {
        rows.resize(n, d);
        if (preds.size() < n) preds.resize(n);
    }

    [[nodiscard]] std::span<double> preds_span(std::size_t n) noexcept {
        return {preds.data(), n};
    }
};

/// Target number of probe rows per predict_batch call.  Large enough to
/// amortize the batch-kernel setup and keep the flattened tree arrays hot,
/// small enough (4096 rows × d doubles) to stay cache-resident and to bound
/// the latency between CancelToken polls.  See DESIGN.md §11.
inline constexpr std::size_t kProbeBlockRows = 4096;

/// dst[j] = mask bit j ? x[j] : b[j] — one interventional probe row.
inline void fill_masked_row(std::span<double> dst, std::span<const double> x,
                            std::span<const double> b,
                            std::span<const std::uint64_t> mask) noexcept {
    for (std::size_t j = 0; j < dst.size(); ++j)
        dst[j] = MaskSet::test(mask, j) ? x[j] : b[j];
}

/// v(S) = mean over background rows of f(x_S, b_!S), evaluated with one
/// predict_batch over the materialized probes.  The accumulation runs in
/// background-row order, so the result is bitwise identical to the legacy
/// per-row predict() loop.
[[nodiscard]] double masked_value(const xnfv::ml::Model& model, std::span<const double> x,
                                  const xnfv::ml::Matrix& bg,
                                  std::span<const std::uint64_t> mask,
                                  ProbeScratch& scratch);

/// Memoizes E_b[f(b)] — the mean model output over the background, i.e. the
/// SHAP base value / all-false-mask coalition value.  It depends only on
/// (model, background), yet the explainers used to recompute it per
/// explained instance: rows × background wasted evaluations per batch.
///
/// The key is the model's address plus (name, num_features) as a cheap
/// tripwire against address reuse.  This assumes the caller does not mutate
/// a model in place between explain calls on one explainer — nothing in the
/// codebase does (the service builds a fresh explainer per request).  Not
/// thread-safe: consult it only from the serial section of
/// explain()/explain_batch(), never inside a parallel region.
class BaseValueCache {
public:
    [[nodiscard]] double get(const xnfv::ml::Model& model, const BackgroundData& background);

private:
    const xnfv::ml::Model* model_ = nullptr;
    std::string name_;
    std::size_t arity_ = 0;
    double value_ = 0.0;
};

}  // namespace xnfv::xai
