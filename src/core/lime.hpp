// LIME — Local Interpretable Model-agnostic Explanations (Ribeiro et al.,
// KDD 2016), tabular variant.
//
// Samples perturbations of the instance from the training distribution,
// weights them by an RBF kernel in standardized feature space, and fits a
// weighted ridge surrogate.  The attribution reported for feature j is the
// local *effect* beta_j * (x_j - mean_j), which places LIME in the same
// additive units as the Shapley explainers so the agreement and deletion
// experiments can compare them directly.  The raw coefficients are also
// exposed for the fidelity experiment.
#pragma once

#include "core/budget.hpp"
#include "core/explanation.hpp"
#include "mlcore/model.hpp"
#include "mlcore/rng.hpp"

namespace xnfv::xai {

class Lime final : public Explainer {
public:
    struct Config {
        std::size_t num_samples = 1000;
        /// RBF kernel width in standardized space; <= 0 selects the LIME
        /// default 0.75 * sqrt(d).
        double kernel_width = -1.0;
        double l2 = 1e-3;  ///< ridge strength of the surrogate
        /// Perturbation scale: samples are drawn N(x_j, scale * sigma_j)
        /// around the instance (sigma_j from the background).
        double perturbation_scale = 1.0;
        /// Worker threads for neighborhood generation/evaluation and batch
        /// rows; 0 uses xnfv::default_threads().  Attributions are identical
        /// for any thread count (per-sample RNG streams).
        std::size_t threads = 0;
        /// Optional cooperative stop signal, polled once per neighborhood
        /// evaluation block (~kProbeBlockRows samples); fired = explain()
        /// aborts with BudgetExceeded.  Must outlive the call.  Null =
        /// never cancelled.
        const CancelToken* cancel = nullptr;
    };

    Lime(BackgroundData background, xnfv::ml::Rng rng)
        : Lime(std::move(background), rng, Config{}) {}
    Lime(BackgroundData background, xnfv::ml::Rng rng, Config config);

    [[nodiscard]] Explanation explain(const xnfv::ml::Model& model,
                                      std::span<const double> x) override;

    /// Row-parallel batch explanation; per-row results match a sequential
    /// explain() loop exactly (per-row seeds are drawn up front, in order).
    /// Note: last_fit() afterwards refers to the final row.
    [[nodiscard]] std::vector<Explanation> explain_batch(
        const xnfv::ml::Model& model, const xnfv::ml::Matrix& instances) override;

    [[nodiscard]] std::string name() const override { return "lime"; }

    /// Result of the last surrogate fit (valid after explain()).
    struct FitDiagnostics {
        /// Kernel-weighted R^2 on the samples the surrogate was *fit* on
        /// (optimistic for small budgets — the surrogate can overfit them).
        double weighted_r2 = 0.0;
        /// Kernel-weighted R^2 on an independent batch of fresh neighborhood
        /// samples — the honest local-fidelity number experiment F1 reports.
        double holdout_r2 = 0.0;
        std::vector<double> coefficients;  ///< raw local slopes
        double intercept = 0.0;
    };
    [[nodiscard]] const FitDiagnostics& last_fit() const noexcept { return last_fit_; }

private:
    /// One instance with all randomness derived from `call_seed`; the fit
    /// diagnostics land in `fit` so parallel batch rows don't contend on
    /// last_fit_.
    [[nodiscard]] Explanation explain_seeded(const xnfv::ml::Model& model,
                                             std::span<const double> x,
                                             std::uint64_t call_seed,
                                             FitDiagnostics& fit) const;

    BackgroundData background_;
    xnfv::ml::Rng rng_;
    Config config_;
    std::vector<double> sigma_;  ///< per-feature background stddevs
    FitDiagnostics last_fit_;
};

}  // namespace xnfv::xai
