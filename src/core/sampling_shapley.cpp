#include "core/sampling_shapley.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace xnfv::xai {

Explanation SamplingShapley::explain(const xnfv::ml::Model& model,
                                     std::span<const double> x) {
    const std::size_t d = model.num_features();
    if (x.size() != d) throw std::invalid_argument("SamplingShapley: size mismatch");
    if (background_.empty())
        throw std::invalid_argument("SamplingShapley: empty background");
    if (config_.num_permutations == 0)
        throw std::invalid_argument("SamplingShapley: num_permutations must be > 0");

    const auto& bg = background_.samples();
    std::vector<double> phi(d, 0.0);
    std::vector<std::size_t> order(d);
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::vector<double> probe(d);
    double base_acc = 0.0;
    std::size_t runs = 0;

    const auto run_permutation = [&](std::span<const std::size_t> pi,
                                     std::span<const double> b) {
        std::copy(b.begin(), b.end(), probe.begin());
        double prev = model.predict(probe);
        base_acc += prev;
        for (const std::size_t j : pi) {
            probe[j] = x[j];
            const double cur = model.predict(probe);
            phi[j] += cur - prev;
            prev = cur;
        }
        ++runs;
    };

    for (std::size_t p = 0; p < config_.num_permutations; ++p) {
        rng_.shuffle(order);
        const auto b = bg.row(rng_.uniform_index(bg.rows()));
        run_permutation(order, b);
        if (config_.antithetic) {
            std::reverse(order.begin(), order.end());
            run_permutation(order, b);
        }
    }

    Explanation e;
    e.method = name();
    e.prediction = model.predict(x);
    e.base_value = base_acc / static_cast<double>(runs);
    e.attributions.assign(d, 0.0);
    for (std::size_t j = 0; j < d; ++j)
        e.attributions[j] = phi[j] / static_cast<double>(runs);
    return e;
}

}  // namespace xnfv::xai
