#include "core/sampling_shapley.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "core/parallel.hpp"

namespace xnfv::xai {

Explanation SamplingShapley::explain(const xnfv::ml::Model& model,
                                     std::span<const double> x) {
    return explain_seeded(model, x, rng_.next_u64());
}

std::vector<Explanation> SamplingShapley::explain_batch(
    const xnfv::ml::Model& model, const xnfv::ml::Matrix& instances) {
    std::vector<std::uint64_t> seeds(instances.rows());
    for (auto& s : seeds) s = rng_.next_u64();
    std::vector<Explanation> out(instances.rows());
    xnfv::parallel_for(instances.rows(), config_.threads, [&](std::size_t r) {
        out[r] = explain_seeded(model, instances.row(r), seeds[r]);
    });
    return out;
}

Explanation SamplingShapley::explain_seeded(const xnfv::ml::Model& model,
                                            std::span<const double> x,
                                            std::uint64_t call_seed) const {
    const std::size_t d = model.num_features();
    if (x.size() != d) throw std::invalid_argument("SamplingShapley: size mismatch");
    if (background_.empty())
        throw std::invalid_argument("SamplingShapley: empty background");
    if (config_.num_permutations == 0)
        throw std::invalid_argument("SamplingShapley: num_permutations must be > 0");

    const auto& bg = background_.samples();

    /// One permutation's (optionally antithetic) marginal credits.
    struct Partial {
        std::vector<double> phi;
        double base_acc = 0.0;
        std::size_t runs = 0;
    };

    // Each permutation p draws its ordering and background row from its own
    // RNG stream and fills a private Partial; the partials are then merged
    // sequentially in permutation order, so both the draws and the
    // floating-point summation tree are independent of the thread count.
    std::vector<Partial> partials(config_.num_permutations);
    xnfv::parallel_for(config_.num_permutations, config_.threads, [&](std::size_t p) {
        check_budget(config_.cancel);
        auto stream = xnfv::ml::Rng::stream(call_seed, p);
        Partial& part = partials[p];
        part.phi.assign(d, 0.0);

        std::vector<std::size_t> order(d);
        std::iota(order.begin(), order.end(), std::size_t{0});
        stream.shuffle(order);
        const auto b = bg.row(stream.uniform_index(bg.rows()));

        std::vector<double> probe(d);
        const auto run_permutation = [&](std::span<const std::size_t> pi) {
            std::copy(b.begin(), b.end(), probe.begin());
            double prev = model.predict(probe);
            part.base_acc += prev;
            for (const std::size_t j : pi) {
                probe[j] = x[j];
                const double cur = model.predict(probe);
                part.phi[j] += cur - prev;
                prev = cur;
            }
            ++part.runs;
        };

        run_permutation(order);
        if (config_.antithetic) {
            std::reverse(order.begin(), order.end());
            run_permutation(order);
        }
    });

    std::vector<double> phi(d, 0.0);
    double base_acc = 0.0;
    std::size_t runs = 0;
    for (const Partial& part : partials) {
        for (std::size_t j = 0; j < d; ++j) phi[j] += part.phi[j];
        base_acc += part.base_acc;
        runs += part.runs;
    }

    Explanation e;
    e.method = name();
    e.prediction = model.predict(x);
    e.base_value = base_acc / static_cast<double>(runs);
    e.attributions.assign(d, 0.0);
    for (std::size_t j = 0; j < d; ++j)
        e.attributions[j] = phi[j] / static_cast<double>(runs);
    return e;
}

}  // namespace xnfv::xai
