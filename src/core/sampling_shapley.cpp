#include "core/sampling_shapley.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "core/parallel.hpp"
#include "core/probe.hpp"

namespace xnfv::xai {

Explanation SamplingShapley::explain(const xnfv::ml::Model& model,
                                     std::span<const double> x) {
    return explain_seeded(model, x, rng_.next_u64());
}

std::vector<Explanation> SamplingShapley::explain_batch(
    const xnfv::ml::Model& model, const xnfv::ml::Matrix& instances) {
    std::vector<std::uint64_t> seeds(instances.rows());
    for (auto& s : seeds) s = rng_.next_u64();
    std::vector<Explanation> out(instances.rows());
    xnfv::parallel_for(instances.rows(), config_.threads, [&](std::size_t r) {
        out[r] = explain_seeded(model, instances.row(r), seeds[r]);
    });
    return out;
}

Explanation SamplingShapley::explain_seeded(const xnfv::ml::Model& model,
                                            std::span<const double> x,
                                            std::uint64_t call_seed) const {
    const std::size_t d = model.num_features();
    if (x.size() != d) throw std::invalid_argument("SamplingShapley: size mismatch");
    if (background_.empty())
        throw std::invalid_argument("SamplingShapley: empty background");
    if (config_.num_permutations == 0)
        throw std::invalid_argument("SamplingShapley: num_permutations must be > 0");

    const auto& bg = background_.samples();
    const std::size_t perms = config_.num_permutations;
    const std::size_t runs_per = config_.antithetic ? 2 : 1;
    const std::size_t rows_per_run = d + 1;  // background row, then one flip per step

    // Each permutation p draws its ordering and background row from its own
    // RNG stream and fills a private slice of the flat per-permutation
    // accumulators; those are then merged sequentially in permutation order,
    // so both the draws and the floating-point summation tree are
    // independent of the thread count.  A permutation's probe states (the
    // background row with a growing prefix of `order` switched to x) are
    // materialized up front and evaluated with one predict_batch instead of
    // d+1 scalar predict() calls; the marginal credits are then taken from
    // the prediction sequence in the original walk order.
    std::vector<double> perm_phi(perms * d, 0.0);
    std::vector<double> perm_base(perms, 0.0);
    std::vector<std::size_t> perm_runs(perms, 0);
    xnfv::parallel_for_chunks(perms, config_.threads, [&](std::size_t pb, std::size_t pe) {
        ProbeScratch scratch;
        std::vector<std::size_t> order;
        for (std::size_t p = pb; p < pe; ++p) {
            check_budget(config_.cancel);
            auto stream = xnfv::ml::Rng::stream(call_seed, p);
            order.resize(d);
            std::iota(order.begin(), order.end(), std::size_t{0});
            stream.shuffle(order);
            const auto b = bg.row(stream.uniform_index(bg.rows()));

            // Step t of run 0 walks order[t]; the antithetic run walks the
            // reverse, order[d-1-t].
            const auto walk = [&](std::size_t run, std::size_t t) {
                return order[run == 1 ? d - 1 - t : t];
            };
            scratch.ensure(runs_per * rows_per_run, d);
            for (std::size_t run = 0; run < runs_per; ++run) {
                const std::size_t off = run * rows_per_run;
                auto probe = scratch.rows.row(off);
                std::copy(b.begin(), b.end(), probe.begin());
                for (std::size_t t = 0; t < d; ++t) {
                    auto next = scratch.rows.row(off + t + 1);
                    std::copy(probe.begin(), probe.end(), next.begin());
                    const std::size_t j = walk(run, t);
                    next[j] = x[j];
                    probe = next;
                }
            }
            const auto preds = scratch.preds_span(runs_per * rows_per_run);
            model.predict_batch(scratch.rows, preds);

            double* phi_p = perm_phi.data() + p * d;
            for (std::size_t run = 0; run < runs_per; ++run) {
                const std::size_t off = run * rows_per_run;
                double prev = preds[off];
                perm_base[p] += prev;
                for (std::size_t t = 0; t < d; ++t) {
                    const double cur = preds[off + t + 1];
                    phi_p[walk(run, t)] += cur - prev;
                    prev = cur;
                }
                ++perm_runs[p];
            }
        }
    });

    std::vector<double> phi(d, 0.0);
    double base_acc = 0.0;
    std::size_t runs = 0;
    for (std::size_t p = 0; p < perms; ++p) {
        for (std::size_t j = 0; j < d; ++j) phi[j] += perm_phi[p * d + j];
        base_acc += perm_base[p];
        runs += perm_runs[p];
    }

    Explanation e;
    e.method = name();
    e.prediction = model.predict(x);
    e.base_value = base_acc / static_cast<double>(runs);
    e.attributions.assign(d, 0.0);
    for (std::size_t j = 0; j < d; ++j)
        e.attributions[j] = phi[j] / static_cast<double>(runs);
    return e;
}

}  // namespace xnfv::xai
