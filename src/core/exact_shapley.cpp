#include "core/exact_shapley.hpp"

#include <bit>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

namespace xnfv::xai {

double log_binomial(std::size_t n, std::size_t k) {
    if (k > n) return -std::numeric_limits<double>::infinity();
    return std::lgamma(static_cast<double>(n) + 1.0) -
           std::lgamma(static_cast<double>(k) + 1.0) -
           std::lgamma(static_cast<double>(n - k) + 1.0);
}

double shapley_kernel_weight(std::size_t d, std::size_t s) {
    if (s == 0 || s == d) return std::numeric_limits<double>::infinity();
    const double log_w = std::log(static_cast<double>(d) - 1.0) - log_binomial(d, s) -
                         std::log(static_cast<double>(s)) -
                         std::log(static_cast<double>(d - s));
    return std::exp(log_w);
}

Explanation ExactShapley::explain(const xnfv::ml::Model& model, std::span<const double> x) {
    const std::size_t d = model.num_features();
    if (x.size() != d)
        throw std::invalid_argument("ExactShapley: input size mismatch");
    if (d > config_.max_features)
        throw std::invalid_argument("ExactShapley: too many features (" + std::to_string(d) +
                                    " > " + std::to_string(config_.max_features) + ")");
    if (background_.empty())
        throw std::invalid_argument("ExactShapley: empty background");

    const std::size_t n_subsets = std::size_t{1} << d;
    const auto& bg = background_.samples();
    const double inv_bg = 1.0 / static_cast<double>(bg.rows());

    // v[mask] = E_b[ f(x_S, b_!S) ] with S encoded as a bitmask.
    std::vector<double> v(n_subsets, 0.0);
    std::vector<double> probe(d);
    for (std::size_t mask = 0; mask < n_subsets; ++mask) {
        double acc = 0.0;
        for (std::size_t b = 0; b < bg.rows(); ++b) {
            const auto brow = bg.row(b);
            for (std::size_t j = 0; j < d; ++j)
                probe[j] = (mask >> j) & 1u ? x[j] : brow[j];
            acc += model.predict(probe);
        }
        v[mask] = acc * inv_bg;
    }

    // phi_i = sum over S not containing i of |S|!(d-|S|-1)!/d! * (v(S+i)-v(S)).
    // Precompute the factorial weights per coalition size.
    std::vector<double> weight(d);
    for (std::size_t s = 0; s < d; ++s) {
        weight[s] = std::exp(std::lgamma(static_cast<double>(s) + 1.0) +
                             std::lgamma(static_cast<double>(d - s)) -
                             std::lgamma(static_cast<double>(d) + 1.0));
    }

    Explanation e;
    e.method = name();
    e.attributions.assign(d, 0.0);
    for (std::size_t mask = 0; mask < n_subsets; ++mask) {
        const auto s = static_cast<std::size_t>(std::popcount(mask));
        for (std::size_t i = 0; i < d; ++i) {
            if ((mask >> i) & 1u) continue;
            e.attributions[i] += weight[s] * (v[mask | (std::size_t{1} << i)] - v[mask]);
        }
    }
    e.base_value = v[0];
    e.prediction = model.predict(x);
    return e;
}

}  // namespace xnfv::xai
