// Feature-interaction strength: Friedman's H statistic (Friedman & Popescu,
// 2008), computed from partial-dependence functions.
//
// Single attributions answer "which feature matters"; H answers "do these
// features matter *together*" — e.g. offered load only hurts when CPU
// allocation is low, which is exactly the kind of coupling an NFV operator
// needs surfaced.  For features (j, k):
//
//     H^2_jk = sum_b [ PD_jk(x_b) - PD_j(x_b) - PD_k(x_b) ]^2
//              ------------------------------------------------
//                        sum_b PD_jk(x_b)^2
//
// where the PD functions are centered over the background b.  H^2 = 0 for a
// model additive in j and k; H^2 -> 1 when the joint effect is pure
// interaction.
#pragma once

#include <vector>

#include "core/explanation.hpp"
#include "mlcore/model.hpp"

namespace xnfv::xai {

struct InteractionOptions {
    /// Background rows used both as PD evaluation points and marginalization
    /// sample; capped for cost (PD_jk costs O(points^2) model calls).
    std::size_t max_points = 64;
};

/// H^2 statistic for the feature pair (j, k).  Returns a value in [0, 1]
/// (clamped; sampling noise can push the raw ratio slightly outside).
[[nodiscard]] double friedman_h2(const xnfv::ml::Model& model,
                                 const BackgroundData& background, std::size_t j,
                                 std::size_t k,
                                 const InteractionOptions& options = {});

/// All pairwise H^2 values; result is a symmetric matrix with zero diagonal,
/// indexed [j][k].
[[nodiscard]] std::vector<std::vector<double>> interaction_matrix(
    const xnfv::ml::Model& model, const BackgroundData& background,
    const InteractionOptions& options = {});

}  // namespace xnfv::xai
