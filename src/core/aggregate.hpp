// Global explanations aggregated from local attributions.
//
// The NOC view: rather than one chain-epoch at a time, rank the telemetry
// features by mean |attribution| over a population of instances — optionally
// split by a group key (e.g. injected root cause), which is how experiment
// T3 verifies that each fault family's explanations concentrate on the
// matching counters.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "core/explanation.hpp"
#include "mlcore/model.hpp"

namespace xnfv::xai {

struct GlobalAttribution {
    std::vector<double> mean_abs;      ///< mean |phi_j| over instances
    std::vector<double> mean_signed;   ///< mean phi_j (direction of influence)
    std::size_t num_instances = 0;
    std::vector<std::string> feature_names;

    /// Features sorted by mean_abs, descending.
    [[nodiscard]] std::vector<std::size_t> ranking() const;
    [[nodiscard]] std::string to_string(std::size_t max_rows = 10) const;
};

/// Aggregates local explanations produced by `explainer` over the rows of
/// `instances`.
[[nodiscard]] GlobalAttribution aggregate_explanations(
    Explainer& explainer, const xnfv::ml::Model& model, const xnfv::ml::Matrix& instances,
    std::span<const std::string> feature_names);

/// Same, but split by a per-row group label; returns one aggregate per group.
[[nodiscard]] std::map<std::string, GlobalAttribution> aggregate_by_group(
    Explainer& explainer, const xnfv::ml::Model& model, const xnfv::ml::Matrix& instances,
    std::span<const std::string> groups, std::span<const std::string> feature_names);

}  // namespace xnfv::xai
