#include "core/aggregate.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>
#include <stdexcept>

namespace xnfv::xai {

std::vector<std::size_t> GlobalAttribution::ranking() const {
    std::vector<std::size_t> idx(mean_abs.size());
    std::iota(idx.begin(), idx.end(), std::size_t{0});
    std::sort(idx.begin(), idx.end(),
              [&](std::size_t a, std::size_t b) { return mean_abs[a] > mean_abs[b]; });
    return idx;
}

std::string GlobalAttribution::to_string(std::size_t max_rows) const {
    std::ostringstream os;
    os.precision(4);
    os << "global attribution over " << num_instances << " instances\n";
    const auto order = ranking();
    for (std::size_t k = 0; k < std::min(max_rows, order.size()); ++k) {
        const std::size_t j = order[k];
        const std::string name =
            j < feature_names.size() ? feature_names[j] : "f" + std::to_string(j);
        os << "  " << name << ": mean|phi|=" << mean_abs[j]
           << " mean(phi)=" << mean_signed[j] << '\n';
    }
    return os.str();
}

GlobalAttribution aggregate_explanations(Explainer& explainer, const xnfv::ml::Model& model,
                                         const xnfv::ml::Matrix& instances,
                                         std::span<const std::string> feature_names) {
    if (instances.rows() == 0)
        throw std::invalid_argument("aggregate_explanations: no instances");
    GlobalAttribution g;
    g.feature_names.assign(feature_names.begin(), feature_names.end());
    g.mean_abs.assign(instances.cols(), 0.0);
    g.mean_signed.assign(instances.cols(), 0.0);
    // explain_batch runs the rows in parallel for the explainers that
    // support it; accumulation stays sequential in row order so the result
    // is bitwise-stable across thread counts.
    const std::vector<Explanation> explanations = explainer.explain_batch(model, instances);
    for (const Explanation& e : explanations) {
        for (std::size_t j = 0; j < instances.cols(); ++j) {
            g.mean_abs[j] += std::abs(e.attributions[j]);
            g.mean_signed[j] += e.attributions[j];
        }
    }
    const double inv = 1.0 / static_cast<double>(instances.rows());
    for (std::size_t j = 0; j < instances.cols(); ++j) {
        g.mean_abs[j] *= inv;
        g.mean_signed[j] *= inv;
    }
    g.num_instances = instances.rows();
    return g;
}

std::map<std::string, GlobalAttribution> aggregate_by_group(
    Explainer& explainer, const xnfv::ml::Model& model, const xnfv::ml::Matrix& instances,
    std::span<const std::string> groups, std::span<const std::string> feature_names) {
    if (groups.size() != instances.rows())
        throw std::invalid_argument("aggregate_by_group: group size mismatch");

    // Partition rows per group, then aggregate each partition.
    std::map<std::string, std::vector<std::size_t>> partitions;
    for (std::size_t r = 0; r < groups.size(); ++r) partitions[groups[r]].push_back(r);

    std::map<std::string, GlobalAttribution> out;
    for (const auto& [key, rows] : partitions) {
        const xnfv::ml::Matrix sub = instances.take_rows(rows);
        out.emplace(key, aggregate_explanations(explainer, model, sub, feature_names));
    }
    return out;
}

}  // namespace xnfv::xai
