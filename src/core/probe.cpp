#include "core/probe.hpp"

namespace xnfv::xai {

double masked_value(const xnfv::ml::Model& model, std::span<const double> x,
                    const xnfv::ml::Matrix& bg, std::span<const std::uint64_t> mask,
                    ProbeScratch& scratch) {
    const std::size_t n = bg.rows();
    scratch.ensure(n, x.size());
    for (std::size_t b = 0; b < n; ++b)
        fill_masked_row(scratch.rows.row(b), x, bg.row(b), mask);
    const auto preds = scratch.preds_span(n);
    model.predict_batch(scratch.rows, preds);
    double acc = 0.0;
    for (std::size_t b = 0; b < n; ++b) acc += preds[b];
    return acc / static_cast<double>(n);
}

double BaseValueCache::get(const xnfv::ml::Model& model, const BackgroundData& background) {
    if (model_ == &model && arity_ == model.num_features() && name_ == model.name())
        return value_;
    const auto& bg = background.samples();
    std::vector<double> preds(bg.rows());
    model.predict_batch(bg, preds);
    double acc = 0.0;
    for (double p : preds) acc += p;  // background-row order, as the old loops
    model_ = &model;
    name_ = model.name();
    arity_ = model.num_features();
    value_ = acc / static_cast<double>(bg.rows());
    return value_;
}

}  // namespace xnfv::xai
