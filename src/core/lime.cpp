#include "core/lime.hpp"

#include <cmath>
#include <stdexcept>

namespace xnfv::xai {

Lime::Lime(BackgroundData background, xnfv::ml::Rng rng, Config config)
    : background_(std::move(background)), rng_(rng), config_(config) {
    if (background_.empty()) throw std::invalid_argument("Lime: empty background");
    // Per-feature stddevs define both the perturbation scale and the
    // standardized distance metric.
    const auto& bg = background_.samples();
    sigma_.assign(bg.cols(), 0.0);
    const auto& mu = background_.means();
    for (std::size_t r = 0; r < bg.rows(); ++r) {
        const auto row = bg.row(r);
        for (std::size_t c = 0; c < sigma_.size(); ++c) {
            const double d = row[c] - mu[c];
            sigma_[c] += d * d;
        }
    }
    for (double& s : sigma_) {
        s = std::sqrt(s / static_cast<double>(bg.rows()));
        if (s == 0.0) s = 1.0;  // constant feature: unit scale
    }
}

Explanation Lime::explain(const xnfv::ml::Model& model, std::span<const double> x) {
    const std::size_t d = model.num_features();
    if (x.size() != d) throw std::invalid_argument("Lime: input size mismatch");
    if (config_.num_samples < d + 2)
        throw std::invalid_argument("Lime: num_samples too small for the feature count");

    const double width = config_.kernel_width > 0.0
                             ? config_.kernel_width
                             : 0.75 * std::sqrt(static_cast<double>(d));
    const double inv_2w2 = 1.0 / (2.0 * width * width);

    // Perturb, evaluate, kernel-weight.  The design is in *standardized
    // offset* space (z_j = (x'_j - x_j)/sigma_j) with an intercept column,
    // which makes the kernel isotropic and the ridge penalty scale-free.
    const std::size_t n = config_.num_samples;
    xnfv::ml::Matrix design(n, d + 1);
    std::vector<double> y(n), w(n), probe(d);
    for (std::size_t s = 0; s < n; ++s) {
        auto row = design.row(s);
        double dist2 = 0.0;
        row[0] = 1.0;  // intercept
        for (std::size_t j = 0; j < d; ++j) {
            const double z = rng_.normal(0.0, config_.perturbation_scale);
            probe[j] = x[j] + z * sigma_[j];
            row[j + 1] = z;
            dist2 += z * z;
        }
        y[s] = model.predict(probe);
        w[s] = std::exp(-dist2 * inv_2w2);
    }

    const auto beta = xnfv::ml::weighted_least_squares(design, y, w, config_.l2);

    // Weighted R^2 of the surrogate over a sample batch; guards against the
    // degenerate case where the kernel leaves (almost) no effective weight.
    const auto weighted_r2 = [&](const xnfv::ml::Matrix& z, std::span<const double> ys,
                                 std::span<const double> ws) {
        double w_sum = 0.0, y_mean = 0.0;
        for (std::size_t s = 0; s < ys.size(); ++s) {
            w_sum += ws[s];
            y_mean += ws[s] * ys[s];
        }
        if (w_sum <= 1e-12) return 0.0;
        y_mean /= w_sum;
        double ss_res = 0.0, ss_tot = 0.0;
        for (std::size_t s = 0; s < ys.size(); ++s) {
            const double pred = xnfv::ml::dot(z.row(s), beta);
            ss_res += ws[s] * (ys[s] - pred) * (ys[s] - pred);
            ss_tot += ws[s] * (ys[s] - y_mean) * (ys[s] - y_mean);
        }
        if (ss_tot <= 1e-12 * w_sum) return 0.0;  // locally constant target
        return 1.0 - ss_res / ss_tot;
    };
    last_fit_.weighted_r2 = weighted_r2(design, y, w);

    // Honest fidelity: fresh neighborhood samples the surrogate never saw.
    {
        const std::size_t n_eval = std::max<std::size_t>(100, n / 4);
        xnfv::ml::Matrix eval_design(n_eval, d + 1);
        std::vector<double> ye(n_eval), we(n_eval);
        for (std::size_t s = 0; s < n_eval; ++s) {
            auto row = eval_design.row(s);
            row[0] = 1.0;
            double dist2 = 0.0;
            for (std::size_t j = 0; j < d; ++j) {
                const double z = rng_.normal(0.0, config_.perturbation_scale);
                probe[j] = x[j] + z * sigma_[j];
                row[j + 1] = z;
                dist2 += z * z;
            }
            ye[s] = model.predict(probe);
            we[s] = std::exp(-dist2 * inv_2w2);
        }
        last_fit_.holdout_r2 = weighted_r2(eval_design, ye, we);
    }

    last_fit_.intercept = beta[0];
    last_fit_.coefficients.assign(d, 0.0);

    Explanation e;
    e.method = name();
    e.prediction = model.predict(x);
    e.attributions.assign(d, 0.0);
    const auto& mu = background_.means();
    for (std::size_t j = 0; j < d; ++j) {
        // Convert the standardized slope back to raw units.
        const double slope = beta[j + 1] / sigma_[j];
        last_fit_.coefficients[j] = slope;
        // Local effect relative to the background mean: what this feature's
        // deviation from "typical" contributes under the local linear model.
        e.attributions[j] = slope * (x[j] - mu[j]);
    }
    double effects = 0.0;
    for (double a : e.attributions) effects += a;
    // Base chosen so the additive identity holds for the *surrogate*:
    // surrogate(x) = intercept (z = 0) => base = surrogate(x) - effects.
    e.base_value = beta[0] - effects;
    return e;
}

}  // namespace xnfv::xai
