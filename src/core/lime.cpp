#include "core/lime.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/parallel.hpp"
#include "core/probe.hpp"

namespace xnfv::xai {

Lime::Lime(BackgroundData background, xnfv::ml::Rng rng, Config config)
    : background_(std::move(background)), rng_(rng), config_(config) {
    if (background_.empty()) throw std::invalid_argument("Lime: empty background");
    // Per-feature stddevs define both the perturbation scale and the
    // standardized distance metric.
    const auto& bg = background_.samples();
    sigma_.assign(bg.cols(), 0.0);
    const auto& mu = background_.means();
    for (std::size_t r = 0; r < bg.rows(); ++r) {
        const auto row = bg.row(r);
        for (std::size_t c = 0; c < sigma_.size(); ++c) {
            const double d = row[c] - mu[c];
            sigma_[c] += d * d;
        }
    }
    for (double& s : sigma_) {
        s = std::sqrt(s / static_cast<double>(bg.rows()));
        if (s == 0.0) s = 1.0;  // constant feature: unit scale
    }
}

Explanation Lime::explain(const xnfv::ml::Model& model, std::span<const double> x) {
    return explain_seeded(model, x, rng_.next_u64(), last_fit_);
}

std::vector<Explanation> Lime::explain_batch(const xnfv::ml::Model& model,
                                             const xnfv::ml::Matrix& instances) {
    std::vector<std::uint64_t> seeds(instances.rows());
    for (auto& s : seeds) s = rng_.next_u64();
    std::vector<Explanation> out(instances.rows());
    std::vector<FitDiagnostics> fits(instances.rows());
    xnfv::parallel_for(instances.rows(), config_.threads, [&](std::size_t r) {
        out[r] = explain_seeded(model, instances.row(r), seeds[r], fits[r]);
    });
    // Same observable state as the sequential loop: last_fit() describes the
    // final row explained.
    if (!fits.empty()) last_fit_ = std::move(fits.back());
    return out;
}

Explanation Lime::explain_seeded(const xnfv::ml::Model& model, std::span<const double> x,
                                 std::uint64_t call_seed, FitDiagnostics& fit) const {
    const std::size_t d = model.num_features();
    if (x.size() != d) throw std::invalid_argument("Lime: input size mismatch");
    if (config_.num_samples < d + 2)
        throw std::invalid_argument("Lime: num_samples too small for the feature count");

    const double width = config_.kernel_width > 0.0
                             ? config_.kernel_width
                             : 0.75 * std::sqrt(static_cast<double>(d));
    const double inv_2w2 = 1.0 / (2.0 * width * width);

    // Perturb, evaluate, kernel-weight.  The design is in *standardized
    // offset* space (z_j = (x'_j - x_j)/sigma_j) with an intercept column,
    // which makes the kernel isotropic and the ridge penalty scale-free.
    // Sample s draws its offsets from RNG stream (call_seed, s) and writes
    // only row s, so the neighborhood is identical for any thread count.
    const std::size_t n = config_.num_samples;
    xnfv::ml::Matrix design(n, d + 1);
    std::vector<double> y(n), w(n);
    // Probe rows for a block of samples are materialized into a reused
    // scratch matrix and evaluated with one predict_batch per block; each
    // sample still draws from its own stream and writes only its own slots,
    // so the neighborhood is unchanged for any thread count or block size.
    const auto fill_neighborhood = [&](xnfv::ml::Matrix& z, std::span<double> ys,
                                       std::span<double> ws, std::size_t stream_base) {
        const std::size_t block = kProbeBlockRows;  // one probe row per sample
        xnfv::parallel_for_chunks(
            ys.size(), config_.threads, [&](std::size_t begin, std::size_t end) {
                ProbeScratch scratch;
                for (std::size_t s0 = begin; s0 < end; s0 += block) {
                    check_budget(config_.cancel);
                    const std::size_t s1 = std::min(s0 + block, end);
                    scratch.ensure(s1 - s0, d);
                    for (std::size_t s = s0; s < s1; ++s) {
                        auto stream = xnfv::ml::Rng::stream(call_seed, stream_base + s);
                        auto row = z.row(s);
                        auto probe = scratch.rows.row(s - s0);
                        double dist2 = 0.0;
                        row[0] = 1.0;  // intercept
                        for (std::size_t j = 0; j < d; ++j) {
                            const double off = stream.normal(0.0, config_.perturbation_scale);
                            probe[j] = x[j] + off * sigma_[j];
                            row[j + 1] = off;
                            dist2 += off * off;
                        }
                        ws[s] = std::exp(-dist2 * inv_2w2);
                    }
                    const auto preds = scratch.preds_span(s1 - s0);
                    model.predict_batch(scratch.rows, preds);
                    for (std::size_t s = s0; s < s1; ++s) ys[s] = preds[s - s0];
                }
            });
    };
    fill_neighborhood(design, y, w, 0);

    const auto beta = xnfv::ml::weighted_least_squares(design, y, w, config_.l2);

    // Weighted R^2 of the surrogate over a sample batch; guards against the
    // degenerate case where the kernel leaves (almost) no effective weight.
    const auto weighted_r2 = [&](const xnfv::ml::Matrix& z, std::span<const double> ys,
                                 std::span<const double> ws) {
        double w_sum = 0.0, y_mean = 0.0;
        for (std::size_t s = 0; s < ys.size(); ++s) {
            w_sum += ws[s];
            y_mean += ws[s] * ys[s];
        }
        if (w_sum <= 1e-12) return 0.0;
        y_mean /= w_sum;
        double ss_res = 0.0, ss_tot = 0.0;
        for (std::size_t s = 0; s < ys.size(); ++s) {
            const double pred = xnfv::ml::dot(z.row(s), beta);
            ss_res += ws[s] * (ys[s] - pred) * (ys[s] - pred);
            ss_tot += ws[s] * (ys[s] - y_mean) * (ys[s] - y_mean);
        }
        if (ss_tot <= 1e-12 * w_sum) return 0.0;  // locally constant target
        return 1.0 - ss_res / ss_tot;
    };
    fit.weighted_r2 = weighted_r2(design, y, w);

    // Honest fidelity: fresh neighborhood samples the surrogate never saw
    // (streams n.. so they don't reuse the training draws).
    {
        const std::size_t n_eval = std::max<std::size_t>(100, n / 4);
        xnfv::ml::Matrix eval_design(n_eval, d + 1);
        std::vector<double> ye(n_eval), we(n_eval);
        fill_neighborhood(eval_design, ye, we, n);
        fit.holdout_r2 = weighted_r2(eval_design, ye, we);
    }

    fit.intercept = beta[0];
    fit.coefficients.assign(d, 0.0);

    Explanation e;
    e.method = name();
    e.prediction = model.predict(x);
    e.attributions.assign(d, 0.0);
    const auto& mu = background_.means();
    for (std::size_t j = 0; j < d; ++j) {
        // Convert the standardized slope back to raw units.
        const double slope = beta[j + 1] / sigma_[j];
        fit.coefficients[j] = slope;
        // Local effect relative to the background mean: what this feature's
        // deviation from "typical" contributes under the local linear model.
        e.attributions[j] = slope * (x[j] - mu[j]);
    }
    double effects = 0.0;
    for (double a : e.attributions) effects += a;
    // Base chosen so the additive identity holds for the *surrogate*:
    // surrogate(x) = intercept (z = 0) => base = surrogate(x) - effects.
    e.base_value = beta[0] - effects;
    return e;
}

}  // namespace xnfv::xai
