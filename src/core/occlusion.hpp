// Single-feature occlusion (local) and permutation importance (global).
//
// Occlusion is the cheapest local attribution baseline: replace one feature
// with background draws and measure the prediction drop.  It ignores feature
// interactions entirely — which is precisely why the agreement experiment T2
// includes it as the "naive" point of comparison for the Shapley methods.
//
// Permutation importance is the standard *global* baseline: the increase in
// model error when a feature column is shuffled (Breiman 2001).
#pragma once

#include "core/budget.hpp"
#include "core/explanation.hpp"
#include "core/probe.hpp"
#include "mlcore/dataset.hpp"
#include "mlcore/model.hpp"
#include "mlcore/rng.hpp"

namespace xnfv::xai {

/// Local occlusion explainer: phi_j = f(x) - E_b[f(x with x_j := b_j)].
class Occlusion final : public Explainer {
public:
    struct Config {
        /// Worker threads for the per-feature sweep and batch rows; 0 uses
        /// xnfv::default_threads().  Occlusion draws no randomness, so any
        /// thread count yields identical attributions.
        std::size_t threads = 0;
        /// Optional cooperative stop signal, polled once per occluded
        /// feature; fired = explain() aborts with BudgetExceeded.  Must
        /// outlive the call.  Null = never cancelled.
        const CancelToken* cancel = nullptr;
    };

    explicit Occlusion(BackgroundData background)
        : Occlusion(std::move(background), Config{}) {}
    Occlusion(BackgroundData background, Config config)
        : background_(std::move(background)), config_(config) {}

    [[nodiscard]] Explanation explain(const xnfv::ml::Model& model,
                                      std::span<const double> x) override;

    /// Row-parallel batch explanation (occlusion is stateless, so this is
    /// trivially identical to the sequential loop).
    [[nodiscard]] std::vector<Explanation> explain_batch(
        const xnfv::ml::Model& model, const xnfv::ml::Matrix& instances) override;

    [[nodiscard]] std::string name() const override { return "occlusion"; }

private:
    /// `base_value` is E_b[f(b)], hoisted out of the per-instance path so
    /// batch explains compute it once per model (BaseValueCache).
    [[nodiscard]] Explanation explain_one(const xnfv::ml::Model& model,
                                          std::span<const double> x,
                                          double base_value) const;

    BackgroundData background_;
    Config config_{};
    BaseValueCache base_cache_;  ///< consulted only in serial explain entry points
};

/// Global permutation importance.
struct PermutationImportanceResult {
    std::vector<double> importance;  ///< error increase per feature
    double baseline_error = 0.0;     ///< unpermuted error
};

/// Error metric: MSE for regression datasets, 1 - AUC for classification.
/// `repeats` shuffles are averaged per feature.
[[nodiscard]] PermutationImportanceResult permutation_importance(
    const xnfv::ml::Model& model, const xnfv::ml::Dataset& data, xnfv::ml::Rng& rng,
    std::size_t repeats = 3);

}  // namespace xnfv::xai
