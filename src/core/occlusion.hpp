// Single-feature occlusion (local) and permutation importance (global).
//
// Occlusion is the cheapest local attribution baseline: replace one feature
// with background draws and measure the prediction drop.  It ignores feature
// interactions entirely — which is precisely why the agreement experiment T2
// includes it as the "naive" point of comparison for the Shapley methods.
//
// Permutation importance is the standard *global* baseline: the increase in
// model error when a feature column is shuffled (Breiman 2001).
#pragma once

#include "core/explanation.hpp"
#include "mlcore/dataset.hpp"
#include "mlcore/model.hpp"
#include "mlcore/rng.hpp"

namespace xnfv::xai {

/// Local occlusion explainer: phi_j = f(x) - E_b[f(x with x_j := b_j)].
class Occlusion final : public Explainer {
public:
    explicit Occlusion(BackgroundData background) : background_(std::move(background)) {}

    [[nodiscard]] Explanation explain(const xnfv::ml::Model& model,
                                      std::span<const double> x) override;

    [[nodiscard]] std::string name() const override { return "occlusion"; }

private:
    BackgroundData background_;
};

/// Global permutation importance.
struct PermutationImportanceResult {
    std::vector<double> importance;  ///< error increase per feature
    double baseline_error = 0.0;     ///< unpermuted error
};

/// Error metric: MSE for regression datasets, 1 - AUC for classification.
/// `repeats` shuffles are averaged per feature.
[[nodiscard]] PermutationImportanceResult permutation_importance(
    const xnfv::ml::Model& model, const xnfv::ml::Dataset& data, xnfv::ml::Rng& rng,
    std::size_t repeats = 3);

}  // namespace xnfv::xai
