#include "core/occlusion.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/parallel.hpp"
#include "mlcore/metrics.hpp"

namespace xnfv::xai {

Explanation Occlusion::explain(const xnfv::ml::Model& model, std::span<const double> x) {
    const double base =
        background_.empty() ? 0.0 : base_cache_.get(model, background_);
    return explain_one(model, x, base);
}

std::vector<Explanation> Occlusion::explain_batch(const xnfv::ml::Model& model,
                                                  const xnfv::ml::Matrix& instances) {
    // The base value depends only on (model, background): resolve it once
    // here instead of once per row.
    const double base =
        background_.empty() ? 0.0 : base_cache_.get(model, background_);
    std::vector<Explanation> out(instances.rows());
    xnfv::parallel_for(instances.rows(), config_.threads, [&](std::size_t r) {
        out[r] = explain_one(model, instances.row(r), base);
    });
    return out;
}

Explanation Occlusion::explain_one(const xnfv::ml::Model& model,
                                   std::span<const double> x, double base_value) const {
    const std::size_t d = model.num_features();
    if (x.size() != d) throw std::invalid_argument("Occlusion: input size mismatch");
    if (background_.empty()) throw std::invalid_argument("Occlusion: empty background");

    Explanation e;
    e.method = name();
    e.prediction = model.predict(x);
    e.attributions.assign(d, 0.0);
    // Base value: mean prediction over the background (the occlusion
    // attributions do not sum exactly to prediction - base; the evaluation
    // experiments quantify that gap).
    e.base_value = base_value;

    const auto& bg = background_.samples();
    const std::size_t bg_rows = bg.rows();
    // Features are occluded independently.  Each chunk materializes all of a
    // feature's probes (instance copies with column j swapped to background
    // values) into a reused scratch matrix and runs one predict_batch; only
    // column j changes between features, so the probe rows are rebuilt
    // incrementally.  Per-feature reduction stays in background-row order —
    // bitwise identical to the legacy per-probe predict() loop.
    xnfv::parallel_for_chunks(d, config_.threads, [&](std::size_t begin, std::size_t end) {
        ProbeScratch scratch;
        scratch.ensure(bg_rows, d);
        for (std::size_t b = 0; b < bg_rows; ++b) {
            auto row = scratch.rows.row(b);
            std::copy(x.begin(), x.end(), row.begin());
        }
        const auto preds = scratch.preds_span(bg_rows);
        for (std::size_t j = begin; j < end; ++j) {
            check_budget(config_.cancel);
            for (std::size_t b = 0; b < bg_rows; ++b) scratch.rows(b, j) = bg(b, j);
            model.predict_batch(scratch.rows, preds);
            double acc = 0.0;
            for (std::size_t b = 0; b < bg_rows; ++b) acc += preds[b];
            for (std::size_t b = 0; b < bg_rows; ++b) scratch.rows(b, j) = x[j];
            e.attributions[j] = e.prediction - acc / static_cast<double>(bg_rows);
        }
    });
    return e;
}

PermutationImportanceResult permutation_importance(const xnfv::ml::Model& model,
                                                   const xnfv::ml::Dataset& data,
                                                   xnfv::ml::Rng& rng, std::size_t repeats) {
    if (data.size() == 0)
        throw std::invalid_argument("permutation_importance: empty dataset");
    if (repeats == 0)
        throw std::invalid_argument("permutation_importance: repeats must be > 0");

    const auto error_of = [&](const std::vector<double>& preds) {
        if (data.task == xnfv::ml::Task::binary_classification)
            return 1.0 - xnfv::ml::roc_auc(data.y, preds);
        return xnfv::ml::mse(data.y, preds);
    };

    PermutationImportanceResult result;
    result.baseline_error = error_of(model.predict_batch(data.x));
    result.importance.assign(data.num_features(), 0.0);

    xnfv::ml::Matrix shuffled = data.x;
    std::vector<double> column(data.size());
    for (std::size_t f = 0; f < data.num_features(); ++f) {
        double acc = 0.0;
        for (std::size_t rep = 0; rep < repeats; ++rep) {
            for (std::size_t r = 0; r < data.size(); ++r) column[r] = data.x(r, f);
            rng.shuffle(column);
            for (std::size_t r = 0; r < data.size(); ++r) shuffled(r, f) = column[r];
            acc += error_of(model.predict_batch(shuffled));
        }
        // Restore the column before moving on.
        for (std::size_t r = 0; r < data.size(); ++r) shuffled(r, f) = data.x(r, f);
        result.importance[f] = acc / static_cast<double>(repeats) - result.baseline_error;
    }
    return result;
}

}  // namespace xnfv::xai
