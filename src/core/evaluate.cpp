#include "core/evaluate.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>
#include <stdexcept>

namespace xnfv::xai {

DeletionCurve deletion_curve(const xnfv::ml::Model& model, std::span<const double> x,
                             std::span<const std::size_t> ranking,
                             const BackgroundData& background) {
    if (background.empty()) throw std::invalid_argument("deletion_curve: empty background");
    DeletionCurve out;
    std::vector<double> probe(x.begin(), x.end());
    const double fx = model.predict(probe);
    out.curve.push_back(fx);
    const auto& mu = background.means();
    double aopc_acc = 0.0;
    for (std::size_t k = 0; k < ranking.size(); ++k) {
        const std::size_t j = ranking[k];
        if (j >= probe.size()) throw std::out_of_range("deletion_curve: bad ranking index");
        probe[j] = mu[j];
        const double pred = model.predict(probe);
        out.curve.push_back(pred);
        aopc_acc += fx - pred;
    }
    out.aopc = ranking.empty() ? 0.0 : aopc_acc / static_cast<double>(ranking.size());
    return out;
}

DeletionCurve insertion_curve(const xnfv::ml::Model& model, std::span<const double> x,
                              std::span<const std::size_t> ranking,
                              const BackgroundData& background) {
    if (background.empty()) throw std::invalid_argument("insertion_curve: empty background");
    DeletionCurve out;
    const auto& mu = background.means();
    std::vector<double> probe(mu.begin(), mu.end());
    const double fx = model.predict(x);
    out.curve.push_back(model.predict(probe));
    double aopc_acc = 0.0;
    for (std::size_t k = 0; k < ranking.size(); ++k) {
        const std::size_t j = ranking[k];
        if (j >= probe.size()) throw std::out_of_range("insertion_curve: bad ranking index");
        probe[j] = x[j];
        const double pred = model.predict(probe);
        out.curve.push_back(pred);
        aopc_acc += fx - pred;
    }
    // For insertion, smaller residual gap is better; we report the mean gap
    // so that *lower* is better (callers compare accordingly).
    out.aopc = ranking.empty() ? 0.0 : aopc_acc / static_cast<double>(ranking.size());
    return out;
}

DeletionCurve random_deletion_curve(const xnfv::ml::Model& model, std::span<const double> x,
                                    const BackgroundData& background, xnfv::ml::Rng& rng,
                                    std::size_t repeats) {
    if (repeats == 0)
        throw std::invalid_argument("random_deletion_curve: repeats must be > 0");
    const std::size_t d = x.size();
    std::vector<std::size_t> ranking(d);
    DeletionCurve mean_curve;
    mean_curve.curve.assign(d + 1, 0.0);
    for (std::size_t rep = 0; rep < repeats; ++rep) {
        std::iota(ranking.begin(), ranking.end(), std::size_t{0});
        rng.shuffle(ranking);
        const DeletionCurve c = deletion_curve(model, x, ranking, background);
        for (std::size_t k = 0; k < c.curve.size(); ++k) mean_curve.curve[k] += c.curve[k];
        mean_curve.aopc += c.aopc;
    }
    for (double& v : mean_curve.curve) v /= static_cast<double>(repeats);
    mean_curve.aopc /= static_cast<double>(repeats);
    return mean_curve;
}

namespace {

double topk_jaccard(const Explanation& a, const Explanation& b, std::size_t k) {
    const auto ta = a.top_k(k);
    const auto tb = b.top_k(k);
    const std::set<std::size_t> sa(ta.begin(), ta.end());
    std::size_t inter = 0;
    for (std::size_t i : tb) inter += sa.count(i);
    const std::size_t uni = sa.size() + tb.size() - inter;
    return uni == 0 ? 0.0 : static_cast<double>(inter) / static_cast<double>(uni);
}

}  // namespace

StabilityResult input_stability(const ExplainFn& explain, std::span<const double> x,
                                const BackgroundData& background, xnfv::ml::Rng& rng,
                                double eps, std::size_t repeats) {
    if (repeats == 0) throw std::invalid_argument("input_stability: repeats must be > 0");
    const std::size_t d = x.size();

    // Per-feature sigma from the background for a scale-aware perturbation.
    std::vector<double> sigma(d, 0.0);
    const auto& bg = background.samples();
    const auto& mu = background.means();
    for (std::size_t r = 0; r < bg.rows(); ++r) {
        const auto row = bg.row(r);
        for (std::size_t c = 0; c < d; ++c) sigma[c] += (row[c] - mu[c]) * (row[c] - mu[c]);
    }
    for (double& s : sigma) s = std::sqrt(s / static_cast<double>(bg.rows()));

    const Explanation base = explain(x);
    StabilityResult result;
    std::vector<double> xp(d);
    for (std::size_t rep = 0; rep < repeats; ++rep) {
        for (std::size_t j = 0; j < d; ++j) xp[j] = x[j] + rng.normal(0.0, eps * sigma[j]);
        const Explanation pert = explain(xp);
        double l2 = 0.0;
        for (std::size_t j = 0; j < d; ++j) {
            const double diff = base.attributions[j] - pert.attributions[j];
            l2 += diff * diff;
        }
        result.mean_l2_drift += std::sqrt(l2);
        result.mean_topk_jaccard += topk_jaccard(base, pert, 3);
    }
    result.mean_l2_drift /= static_cast<double>(repeats);
    result.mean_topk_jaccard /= static_cast<double>(repeats);
    return result;
}

double rerun_variance(const ExplainFn& explain, std::span<const double> x,
                      std::size_t repeats) {
    if (repeats < 2) throw std::invalid_argument("rerun_variance: repeats must be >= 2");
    std::vector<std::vector<double>> runs;
    runs.reserve(repeats);
    for (std::size_t r = 0; r < repeats; ++r) runs.push_back(explain(x).attributions);
    const std::size_t d = runs.front().size();
    double total_var = 0.0;
    for (std::size_t j = 0; j < d; ++j) {
        double m = 0.0;
        for (const auto& run : runs) m += run[j];
        m /= static_cast<double>(repeats);
        double v = 0.0;
        for (const auto& run : runs) v += (run[j] - m) * (run[j] - m);
        total_var += v / static_cast<double>(repeats);
    }
    return total_var / static_cast<double>(d);
}

}  // namespace xnfv::xai
