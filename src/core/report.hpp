// Operator-facing incident reports.
//
// Renders everything the paper argues an operator should receive for a
// flagged chain into one block of text: the prediction and its confidence,
// the top attributed telemetry drivers with direction, and (optionally) the
// smallest actionable counterfactual fix.  This is the "presentation layer"
// of the pipeline — examples and the CLI print exactly this.
#pragma once

#include <optional>
#include <string>

#include "core/counterfactual.hpp"
#include "core/explanation.hpp"
#include "mlcore/rng.hpp"

namespace xnfv::xai {

struct ReportOptions {
    std::size_t top_features = 5;
    /// Threshold above which the prediction is phrased as a violation alert.
    double alert_threshold = 0.5;
    /// When set, a counterfactual search runs and its remediation is
    /// appended to the report.
    std::optional<CounterfactualOptions> counterfactual;
};

/// Builds the report for one instance.  `explainer` produces the
/// attribution; the counterfactual section (if enabled) uses the same
/// background.
[[nodiscard]] std::string incident_report(const xnfv::ml::Model& model,
                                          Explainer& explainer,
                                          std::span<const double> x,
                                          std::span<const std::string> feature_names,
                                          const BackgroundData& background,
                                          xnfv::ml::Rng& rng,
                                          const ReportOptions& options = {});

}  // namespace xnfv::xai
