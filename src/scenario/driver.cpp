#include "scenario/driver.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <utility>

#include "mlcore/rng.hpp"
#include "net/client.hpp"
#include "net/loadgen.hpp"
#include "nfv/remediation.hpp"
#include "nfv/simulator.hpp"
#include "nfv/telemetry.hpp"
#include "serve/explanation_cache.hpp"
#include "serve/ndjson.hpp"
#include "workload/dataset_builder.hpp"

namespace xnfv::scenario {

namespace nfv = xnfv::nfv;
namespace wl = xnfv::wl;

namespace {

[[nodiscard]] wl::ScenarioSpec resolve_scenario(const std::string& name) {
    if (name == "mixed") return wl::ScenarioSpec{};
    for (const auto& spec : wl::standard_scenarios())
        if (spec.name == name) return spec;
    for (const wl::FaultKind f :
         {wl::FaultKind::none, wl::FaultKind::cpu_starvation,
          wl::FaultKind::link_saturation, wl::FaultKind::traffic_burst,
          wl::FaultKind::cache_contention, wl::FaultKind::memory_pressure}) {
        auto spec = wl::fault_scenario(f);
        if (spec.name == name) return spec;
    }
    throw std::runtime_error("unknown scenario '" + name +
                             "' (expected a standard_scenarios() name, a "
                             "fault_* family, or \"mixed\")");
}

/// %.17g rendering shared with the wire format, so trace doubles round-trip.
[[nodiscard]] std::string num(double v) { return serve::json_number(v); }

/// Exact quantile of an ascending-sorted sample set (linear interpolation
/// between order statistics) — the satellite contract: phase percentiles come
/// from real per-request samples, never histogram bins.
[[nodiscard]] double quantile_sorted(const std::vector<double>& sorted, double q) {
    if (sorted.empty()) return 0.0;
    const double pos = q * static_cast<double>(sorted.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const auto hi = std::min(lo + 1, sorted.size() - 1);
    return sorted[lo] + (sorted[hi] - sorted[lo]) * (pos - static_cast<double>(lo));
}

[[nodiscard]] std::uint64_t hash_lines(const std::vector<std::string>& lines) {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const auto& line : lines) {
        h = serve::fnv1a(
            {reinterpret_cast<const std::uint8_t*>(line.data()), line.size()}, h);
        h = serve::fnv1a_u64('\n', h);
    }
    return h;
}

/// Replaces the value of `"cache_hit":...` with `_`: which shard's cache a
/// connection hashed to is the one legitimately timing-dependent byte of an
/// otherwise deterministic response stream.
[[nodiscard]] std::string normalize_cache_hit(const std::string& line) {
    static const std::string kKey = "\"cache_hit\":";
    const auto pos = line.find(kKey);
    if (pos == std::string::npos) return line;
    const auto value_at = pos + kKey.size();
    auto end = value_at;
    while (end < line.size() && line[end] != ',' && line[end] != '}') ++end;
    return line.substr(0, value_at) + "_" + line.substr(end);
}

[[nodiscard]] std::string hex64(std::uint64_t v) {
    char buf[20];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

/// What one request explained, kept so responses can be mapped back to the
/// simulated chain-epoch that produced them (remediation needs this).
struct RequestMeta {
    std::size_t phase = 0;
    std::size_t dep = 0;
    std::uint32_t chain = 0;
    double latency_s = 0.0;
    bool sla_violated = false;
    std::uint32_t bottleneck = 0;
};

struct ControlError {
    std::string what;
};

/// One blocking control exchange on its own connection (stats_reset / stats).
[[nodiscard]] std::string control_op(const DriverConfig& config,
                                     const std::string& line, std::string* error) {
    net::Client client;
    std::string why;
    if (!client.connect(config.host, config.port, &why,
                        std::chrono::milliseconds{5000})) {
        if (error) *error = "control connect failed: " + why;
        return {};
    }
    std::string reply;
    if (!client.send_line(line) || !client.recv_line(reply, config.timeout)) {
        if (error) *error = "control op '" + line + "' got no reply";
        return {};
    }
    return reply;
}

}  // namespace

std::string DriverReport::to_json() const {
    serve::JsonWriter w;
    w.field("ok", transport_ok);
    w.field("op", "scenario");
    w.field("scenario", scenario);
    w.field("seed", seed);
    w.field("slo_met", slo_met);
    if (!transport_ok) w.field("error", error);
    w.field("trace_lines", static_cast<std::uint64_t>(trace.size()));
    w.field("trace_hash", hex64(trace_hash));
    w.field("responses_hash", hex64(responses_hash));
    w.field("action", action);
    w.field("action_driver", action_driver);
    w.field("action_applied", action_applied);
    std::string parr = "[";
    for (const PhaseReport& p : phases) {
        if (parr.size() > 1) parr += ',';
        serve::JsonWriter pw;
        pw.field("name", p.name);
        pw.field("requests", static_cast<std::uint64_t>(p.requests));
        pw.field("responses", static_cast<std::uint64_t>(p.responses));
        pw.field("errors", static_cast<std::uint64_t>(p.errors));
        pw.field("latency_p50_us", p.latency_p50_us);
        pw.field("latency_p95_us", p.latency_p95_us);
        pw.field("latency_p99_us", p.latency_p99_us);
        pw.field("latency_max_us", p.latency_max_us);
        pw.field("latency_mean_us", p.latency_mean_us);
        pw.field("completed", p.completed);
        pw.field("degraded", p.degraded);
        pw.field("cache_hits", p.cache_hits);
        pw.field("drift_flushes", p.drift_flushes);
        pw.field("breaker_opens", p.breaker_opens);
        pw.field("sla_violations", p.sla_violations);
        pw.field("slo_met", p.slo_met);
        parr += pw.finish();
    }
    parr += ']';
    w.field_raw("phases", parr);
    return w.finish();
}

DriverReport run_scenario(const DriverConfig& config) {
    const wl::ScenarioSpec spec = resolve_scenario(config.scenario);
    DriverReport report;
    report.seed = config.seed;
    report.scenario = spec.name;

    // The fleet: sampled once, stepped live through every phase.  Traffic
    // generators carry their MMPP state across phases, so the flash phase
    // hits a fleet whose load history is the baseline's continuation.
    ml::Rng rng(config.seed);
    std::vector<wl::SampledDeployment> fleet;
    const std::size_t n_deps = std::max<std::size_t>(1, config.deployments);
    fleet.reserve(n_deps);
    for (std::size_t d = 0; d < n_deps; ++d)
        fleet.push_back(wl::sample_deployment(spec, rng));
    std::vector<std::size_t> epoch_cursor(n_deps, 0);

    const auto feature_names = nfv::feature_names(nfv::FeatureSet::full_telemetry);
    const std::size_t n_conns = std::max<std::size_t>(1, config.connections);

    struct Phase {
        const char* name;
        double mult;
    };
    const Phase phase_plan[3] = {
        {"baseline", 1.0},
        {"flash_crowd", config.flash_mult},
        {"remediated", config.flash_mult},
    };

    std::uint64_t next_id = 1;
    std::vector<RequestMeta> meta;              // meta[id - 1]
    std::vector<std::pair<std::uint64_t, std::string>> all_responses;

    // Worst violating chain-epoch seen in the flash phase: the incident the
    // served explanation is asked to diagnose.
    bool have_incident = false;
    std::uint64_t incident_id = 0;
    double incident_latency = 0.0;
    std::size_t incident_dep = 0;
    std::uint32_t incident_bottleneck = 0;

    const auto fail = [&report](std::string why) -> DriverReport& {
        report.transport_ok = false;
        report.slo_met = false;
        report.error = std::move(why);
        return report;
    };

    for (std::size_t pi = 0; pi < 3; ++pi) {
        const Phase& phase = phase_plan[pi];
        PhaseReport pr;
        pr.name = phase.name;

        // Phase boundary: zero the fleet's counters so this phase's stats
        // snapshot measures only its own traffic.
        std::string control_why;
        const auto reset_reply =
            control_op(config, R"({"op":"stats_reset"})", &control_why);
        if (reset_reply.empty()) {
            report.phases.push_back(std::move(pr));
            return fail(std::move(control_why));
        }

        // Simulate the phase and build its request scripts.  This block is a
        // pure function of (seed, scenario, geometry, prior remediation) —
        // the server is not consulted, which is what makes the trace
        // deterministic across runs and shard counts.
        std::vector<std::vector<std::string>> scripts(n_conns);
        const std::uint64_t first_id = next_id;
        std::size_t rr = 0;
        for (std::size_t e = 0; e < config.epochs_per_phase; ++e) {
            for (std::size_t d = 0; d < n_deps; ++d) {
                wl::SampledDeployment& fleet_dep = fleet[d];
                std::vector<nfv::OfferedLoad> loads;
                loads.reserve(fleet_dep.traffic.size());
                for (auto& gen : fleet_dep.traffic)
                    loads.push_back(gen.next_epoch(epoch_cursor[d]));
                ++epoch_cursor[d];
                for (auto& load : loads) {
                    load.pps *= phase.mult;
                    load.active_flows *= phase.mult;
                }
                const auto epoch =
                    nfv::simulate_epoch(fleet_dep.dep, fleet_dep.infra, loads);
                for (std::size_t c = 0; c < fleet_dep.dep.chains.size(); ++c) {
                    const auto& chain = epoch.chains[c];
                    if (chain.sla_violated) ++pr.sla_violations;
                    report.trace.push_back(
                        std::string("phase=") + phase.name + " dep=" +
                        std::to_string(d) + " epoch=" + std::to_string(e) +
                        " chain=" + std::to_string(c) +
                        " latency_s=" + num(chain.latency_s) +
                        " goodput=" + num(chain.goodput_frac) +
                        " sla=" + (chain.sla_violated ? "1" : "0") +
                        " bottleneck=" + std::to_string(chain.bottleneck_vnf) +
                        " util=" + num(chain.bottleneck_utilization) +
                        " hops=" + std::to_string(chain.hop_count));

                    net::RequestSpec rs;
                    rs.id = next_id++;
                    rs.features = nfv::extract_features(
                        nfv::FeatureSet::full_telemetry, fleet_dep.dep,
                        fleet_dep.infra, loads, epoch,
                        static_cast<std::uint32_t>(c));
                    rs.method = config.method;
                    rs.seed = config.seed;
                    rs.interactions = config.interactions;
                    scripts[rr++ % n_conns].push_back(
                        net::render_request_line(rs));
                    meta.push_back(RequestMeta{
                        pi, d, static_cast<std::uint32_t>(c), chain.latency_s,
                        chain.sla_violated, chain.bottleneck_vnf});

                    if (pi == 1 && chain.sla_violated &&
                        (!have_incident || chain.latency_s > incident_latency)) {
                        have_incident = true;
                        incident_id = rs.id;
                        incident_latency = chain.latency_s;
                        incident_dep = d;
                        incident_bottleneck = chain.bottleneck_vnf;
                    }
                }
            }
        }
        pr.requests = static_cast<std::size_t>(next_id - first_id);

        // Replay the phase as concurrent live clients.
        net::LoadgenConfig lg;
        lg.host = config.host;
        lg.port = config.port;
        lg.window = std::max<std::size_t>(1, config.window);
        lg.shutdown_writes = true;
        lg.record_latency = true;
        lg.timeout = config.timeout;
        const net::LoadReport load = net::run_load(lg, scripts);
        if (load.timed_out) {
            report.phases.push_back(std::move(pr));
            return fail("phase '" + pr.name + "' timed out");
        }
        std::vector<double> latencies;
        for (const net::ConnReport& conn : load.conns) {
            if (conn.connect_failed || conn.io_error) {
                report.phases.push_back(std::move(pr));
                return fail("phase '" + pr.name + "': connection " +
                            std::string(conn.connect_failed ? "refused"
                                                            : "errored"));
            }
            pr.responses += conn.lines.size();
            latencies.insert(latencies.end(), conn.latency_us.begin(),
                             conn.latency_us.end());
            for (const std::string& line : conn.lines) {
                std::uint64_t id = 0;
                bool ok = false;
                try {
                    const auto v = serve::parse_json(line);
                    id = static_cast<std::uint64_t>(v.get_number("id", 0));
                    ok = v.find("ok") != nullptr && v.find("ok")->boolean;
                } catch (const std::exception&) {
                }
                if (!ok) ++pr.errors;
                all_responses.emplace_back(id, line);
            }
        }
        std::sort(latencies.begin(), latencies.end());
        pr.latency_p50_us = quantile_sorted(latencies, 0.50);
        pr.latency_p95_us = quantile_sorted(latencies, 0.95);
        pr.latency_p99_us = quantile_sorted(latencies, 0.99);
        if (!latencies.empty()) {
            pr.latency_max_us = latencies.back();
            double sum = 0.0;
            for (const double v : latencies) sum += v;
            pr.latency_mean_us = sum / static_cast<double>(latencies.size());
        }

        // Phase-scoped server counters (everything since the reset).
        const auto stats_reply =
            control_op(config, R"({"op":"stats"})", &control_why);
        if (stats_reply.empty()) {
            report.phases.push_back(std::move(pr));
            return fail(std::move(control_why));
        }
        try {
            const auto stats = serve::parse_json(stats_reply);
            pr.completed =
                static_cast<std::uint64_t>(stats.get_number("requests_completed", 0));
            pr.degraded =
                static_cast<std::uint64_t>(stats.get_number("requests_degraded", 0));
            pr.cache_hits =
                static_cast<std::uint64_t>(stats.get_number("cache_hits", 0));
            pr.drift_flushes =
                static_cast<std::uint64_t>(stats.get_number("drift_flushes", 0));
            if (const auto* models = stats.find("models");
                models != nullptr &&
                models->type == serve::JsonValue::Type::array) {
                for (const auto& m : models->array)
                    pr.breaker_opens += static_cast<std::uint64_t>(
                        m.get_number("breaker_opens", 0));
            }
        } catch (const std::exception& e) {
            report.phases.push_back(std::move(pr));
            return fail(std::string("stats parse failed: ") + e.what());
        }

        pr.slo_met = config.slo_us <= 0.0 || pr.latency_p99_us <= config.slo_us;
        report.slo_met = report.slo_met && pr.slo_met;
        report.phases.push_back(std::move(pr));

        // Between flash_crowd and remediated: diagnose the worst violating
        // chain from its *served* attributions and apply the chosen action
        // back into the simulator state.  The remediated phase then re-drives
        // the same (continued) traffic against the repaired fleet.
        if (pi == 1 && have_incident) {
            const std::string* incident_line = nullptr;
            for (const auto& [id, line] : all_responses)
                if (id == incident_id) {
                    incident_line = &line;
                    break;
                }
            if (incident_line != nullptr) {
                try {
                    const auto v = serve::parse_json(*incident_line);
                    const auto* attrs = v.find("attributions");
                    if (v.find("ok") != nullptr && v.find("ok")->boolean &&
                        attrs != nullptr &&
                        attrs->type == serve::JsonValue::Type::array &&
                        attrs->array.size() == feature_names.size()) {
                        std::size_t top = 0;
                        double best = -1.0;
                        for (std::size_t i = 0; i < attrs->array.size(); ++i) {
                            const double a = std::abs(attrs->array[i].number);
                            if (a > best) {
                                best = a;
                                top = i;
                            }
                        }
                        report.action_driver = feature_names[top];
                        // The driver->verb mapping of the closed-loop
                        // example: contention drivers spread, locality
                        // drivers co-locate, rule bloat shrinks the table,
                        // anything else grows the bottleneck's CPU.
                        nfv::Action action;
                        action.kind = nfv::ActionKind::scale_up_cpu;
                        action.target_vnf = incident_bottleneck;
                        action.magnitude = 3.0;
                        const std::string& top_name = report.action_driver;
                        if (top_name == "max_cache_pressure" ||
                            top_name == "colocated_vnfs" ||
                            top_name == "max_server_mem")
                            action.kind = nfv::ActionKind::migrate_spread;
                        else if (top_name == "max_link_util" ||
                                 top_name == "hop_count")
                            action.kind = nfv::ActionKind::migrate_colocate;
                        else if (top_name == "total_rules") {
                            action.kind = nfv::ActionKind::reduce_rules;
                            action.magnitude = 0.5;
                        }
                        report.action = action.to_string(fleet[incident_dep].dep);
                        report.action_applied = nfv::apply_action(
                            fleet[incident_dep].dep, fleet[incident_dep].infra,
                            action);
                    }
                } catch (const std::exception&) {
                    // An unparseable incident response just skips remediation;
                    // the remediated phase then measures the unrepaired fleet.
                }
            }
        }
    }

    std::sort(all_responses.begin(), all_responses.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    report.responses.reserve(all_responses.size());
    std::vector<std::string> normalized;
    normalized.reserve(all_responses.size());
    for (auto& [id, line] : all_responses) {
        normalized.push_back(normalize_cache_hit(line));
        report.responses.push_back(std::move(line));
    }
    report.trace_hash = hash_lines(report.trace);
    report.responses_hash = hash_lines(normalized);
    return report;
}

}  // namespace xnfv::scenario
