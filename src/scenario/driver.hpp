// Closed-loop NOC fleet driver: live scenario replay against a running
// explanation server, with per-phase SLO measurement and explanation-driven
// remediation.
//
// This is the subsystem that closes the loop the paper sketches and the
// repo's pieces have so far only exercised separately.  One run_scenario()
// call:
//
//   1. samples a fleet of deployments from a named workload scenario
//      (workload/scenario.hpp + sample_deployment), exactly as the dataset
//      builder would — but instead of flattening epochs into training rows,
//      it steps the DES simulator live;
//   2. converts every simulated chain-epoch's telemetry into an ND-JSON
//      `explain` request and replays the phase's full request set as many
//      concurrent pipelined clients (net/loadgen.hpp) against a running
//      single-loop or sharded server;
//   3. runs three phases — `baseline` (nominal traffic), `flash_crowd`
//      (offered load multiplied, driving the degradation ladder, breakers,
//      and attribution-drift flushes), and `remediated` (the flash traffic
//      again, after an explanation-chosen action was applied back into the
//      simulator state) — bracketing each with the fleet-wide `stats_reset`
//      op so every phase's counters are measured in isolation;
//   4. parses the served attributions of the worst violating chain, maps the
//      dominant telemetry driver to a remediation verb (nfv/remediation.hpp)
//      targeting the chain's bottleneck VNF, and applies it to the live
//      deployment between phases 2 and 3 — the simulator, not the model,
//      then judges the fix in phase 3;
//   5. emits a machine-readable SLO report: exact per-phase latency
//      percentiles from the load generator's per-request samples, the
//      degradation / breaker / drift-flush / cache counters from the
//      server's own stats, and a verdict against `slo_us`.
//
// Determinism contract: for a fixed (seed, scenario, phase geometry) the
// simulated event trace is identical across runs and across server shard
// counts (it never depends on the server at all), and the per-request
// response bytes are identical across shard counts up to the `cache_hit`
// flag (which depends on which shard's cache a connection hashed to —
// responses_hash normalizes it; the determinism tests additionally pin raw
// byte identity on degradation-free servers).
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace xnfv::scenario {

struct DriverConfig {
    /// Server to replay against (must already be listening).
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;
    /// Workload family: a standard_scenarios() name ("web_pop",
    /// "enterprise_edge", "video_edge", "iot_aggregation",
    /// "dense_colocation"), a fault family ("fault_cpu", "fault_link",
    /// "fault_burst", "fault_cache", "fault_memory", "fault_none"), or
    /// "mixed" (the default ScenarioSpec).
    std::string scenario = "enterprise_edge";
    /// Master seed: deployment sampling, traffic evolution, and every
    /// request's explainer seed derive from it.
    std::uint64_t seed = 2020;
    /// Deployments sampled into the fleet.
    std::size_t deployments = 2;
    /// Concurrent client connections per phase (requests are dealt
    /// round-robin across them).
    std::size_t connections = 32;
    /// Simulated epochs per deployment per phase.
    std::size_t epochs_per_phase = 4;
    /// Pipelining window per connection (net::LoadgenConfig::window).
    std::size_t window = 4;
    /// Explainer method for every request ("" = server default).
    std::string method = "tree_shap";
    /// Per-request "interactions": k (0 = plain requests).
    std::size_t interactions = 0;
    /// Offered-load multiplier of the flash_crowd (and remediated) phases.
    double flash_mult = 6.0;
    /// SLO on the exact client-side p99 round-trip, microseconds; 0 disables
    /// the verdict (slo_met then stays true).
    double slo_us = 0.0;
    /// Whole-phase loadgen deadline.
    std::chrono::milliseconds timeout{120000};
};

/// One phase's measurement window (all server counters are deltas since the
/// phase's stats_reset; latency percentiles are exact, computed from the
/// load generator's per-response round-trip samples, not histogram bins).
struct PhaseReport {
    std::string name;
    std::size_t requests = 0;   ///< explain lines sent
    std::size_t responses = 0;  ///< response lines received
    std::size_t errors = 0;     ///< responses with ok:false
    double latency_p50_us = 0.0;
    double latency_p95_us = 0.0;
    double latency_p99_us = 0.0;
    double latency_max_us = 0.0;
    double latency_mean_us = 0.0;
    std::uint64_t completed = 0;      ///< server-side requests_completed
    std::uint64_t degraded = 0;       ///< responses below full fidelity
    std::uint64_t cache_hits = 0;
    std::uint64_t drift_flushes = 0;  ///< drift-triggered epoch bumps
    std::uint64_t breaker_opens = 0;  ///< circuit-breaker open transitions
    std::uint64_t sla_violations = 0; ///< simulated chain-epochs over SLA
    bool slo_met = true;              ///< p99 <= slo_us (true when slo_us == 0)
};

/// Everything one closed-loop run produced.
struct DriverReport {
    std::uint64_t seed = 0;
    std::string scenario;
    std::vector<PhaseReport> phases;
    /// Deterministic simulated event trace, one line per chain-epoch, in
    /// generation order — a pure function of (seed, scenario, geometry).
    std::vector<std::string> trace;
    std::uint64_t trace_hash = 0;  ///< FNV-1a over the trace lines
    /// Every response line of every phase, sorted by request id (raw bytes,
    /// cache_hit included) — what the determinism tests byte-compare.
    std::vector<std::string> responses;
    /// FNV-1a over the id-sorted responses with `"cache_hit":...` normalized
    /// (shard-count invariant even when caching differs per shard).
    std::uint64_t responses_hash = 0;
    /// Remediation applied between flash_crowd and remediated ("" when no
    /// chain violated, or the chosen action was infeasible).
    std::string action;
    std::string action_driver;  ///< top-|attribution| feature that chose it
    bool action_applied = false;
    bool slo_met = true;        ///< AND over the phase verdicts
    bool transport_ok = true;   ///< false on connect/IO failures
    std::string error;          ///< detail when !transport_ok

    /// Machine-readable SLO report (single JSON object, no newline).
    [[nodiscard]] std::string to_json() const;
};

/// Runs the full three-phase closed loop against the server at
/// `config.host:config.port`.  Throws std::runtime_error on an unknown
/// scenario name; transport failures are reported in the result instead
/// (transport_ok = false) so a partial report is still inspectable.
[[nodiscard]] DriverReport run_scenario(const DriverConfig& config);

}  // namespace xnfv::scenario
