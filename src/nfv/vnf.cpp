#include "nfv/vnf.hpp"

#include <stdexcept>

namespace xnfv::nfv {

namespace {

// Cost coefficients per VNF type.  Cycle counts are per 3.0 GHz core-second
// scale (so 1e9-order budgets per core); memory in bytes.  The qualitative
// structure is the load-bearing part:
//   - firewall/nat/lb: per-packet dominated, light per-byte
//   - ids/wan_opt/crypto/transcoder: per-byte dominated
//   - nat/lb: stateful (per-flow memory), ids/wan_opt: cache hungry
constexpr std::array<VnfProfile, kNumVnfTypes> kProfiles{{
    {.type = VnfType::firewall,
     .cycles_per_packet = 220.0,
     .cycles_per_byte = 0.4,
     .cycles_per_rule = 1.6,
     .mem_bytes_per_flow = 64.0,
     .mem_bytes_base = 32e6,
     .cache_bytes_per_kflow = 8e3,
     .cache_bytes_base = 1e6,
     .service_cv2 = 0.8},
    {.type = VnfType::nat,
     .cycles_per_packet = 180.0,
     .cycles_per_byte = 0.2,
     .cycles_per_rule = 0.0,
     .mem_bytes_per_flow = 256.0,
     .mem_bytes_base = 64e6,
     .cache_bytes_per_kflow = 32e3,
     .cache_bytes_base = 2e6,
     .service_cv2 = 0.6},
    {.type = VnfType::ids,
     .cycles_per_packet = 400.0,
     .cycles_per_byte = 6.5,
     .cycles_per_rule = 3.0,
     .mem_bytes_per_flow = 512.0,
     .mem_bytes_base = 512e6,
     .cache_bytes_per_kflow = 128e3,
     .cache_bytes_base = 8e6,
     .service_cv2 = 1.6},
    {.type = VnfType::load_balancer,
     .cycles_per_packet = 140.0,
     .cycles_per_byte = 0.1,
     .cycles_per_rule = 0.0,
     .mem_bytes_per_flow = 128.0,
     .mem_bytes_base = 48e6,
     .cache_bytes_per_kflow = 16e3,
     .cache_bytes_base = 1e6,
     .service_cv2 = 0.5},
    {.type = VnfType::wan_optimizer,
     .cycles_per_packet = 300.0,
     .cycles_per_byte = 4.0,
     .cycles_per_rule = 0.0,
     .mem_bytes_per_flow = 1024.0,
     .mem_bytes_base = 1e9,
     .cache_bytes_per_kflow = 256e3,
     .cache_bytes_base = 16e6,
     .service_cv2 = 1.4},
    {.type = VnfType::transcoder,
     .cycles_per_packet = 500.0,
     .cycles_per_byte = 18.0,
     .cycles_per_rule = 0.0,
     .mem_bytes_per_flow = 2048.0,
     .mem_bytes_base = 256e6,
     .cache_bytes_per_kflow = 64e3,
     .cache_bytes_base = 24e6,
     .service_cv2 = 2.0},
    {.type = VnfType::crypto_gateway,
     .cycles_per_packet = 260.0,
     .cycles_per_byte = 9.0,
     .cycles_per_rule = 0.0,
     .mem_bytes_per_flow = 384.0,
     .mem_bytes_base = 96e6,
     .cache_bytes_per_kflow = 24e3,
     .cache_bytes_base = 4e6,
     .service_cv2 = 0.9},
}};

constexpr std::array<VnfType, kNumVnfTypes> kAllTypes{
    VnfType::firewall,       VnfType::nat,        VnfType::ids,
    VnfType::load_balancer,  VnfType::wan_optimizer, VnfType::transcoder,
    VnfType::crypto_gateway,
};

}  // namespace

std::span<const VnfType> all_vnf_types() noexcept { return kAllTypes; }

std::string_view to_string(VnfType t) noexcept {
    switch (t) {
        case VnfType::firewall: return "firewall";
        case VnfType::nat: return "nat";
        case VnfType::ids: return "ids";
        case VnfType::load_balancer: return "load_balancer";
        case VnfType::wan_optimizer: return "wan_optimizer";
        case VnfType::transcoder: return "transcoder";
        case VnfType::crypto_gateway: return "crypto_gateway";
    }
    return "unknown";
}

VnfType vnf_type_from_string(std::string_view s) {
    for (VnfType t : kAllTypes)
        if (to_string(t) == s) return t;
    throw std::invalid_argument("vnf_type_from_string: unknown type '" + std::string(s) + "'");
}

const VnfProfile& vnf_profile(VnfType t) noexcept {
    return kProfiles[static_cast<std::size_t>(t)];
}

double VnfInstance::demand_cycles(double pps, double bps, double active_flows) const {
    const VnfProfile& p = vnf_profile(type);
    (void)active_flows;  // flow count affects cache/memory, not direct cycles
    const double bytes_per_sec = bps / 8.0;
    const double per_packet = p.cycles_per_packet + p.cycles_per_rule * num_rules;
    return pps * per_packet + bytes_per_sec * p.cycles_per_byte;
}

double VnfInstance::demand_memory(double active_flows) const {
    const VnfProfile& p = vnf_profile(type);
    return p.mem_bytes_base + p.mem_bytes_per_flow * active_flows;
}

double VnfInstance::demand_cache(double active_flows) const {
    const VnfProfile& p = vnf_profile(type);
    return p.cache_bytes_base + p.cache_bytes_per_kflow * (active_flows / 1000.0);
}

}  // namespace xnfv::nfv
