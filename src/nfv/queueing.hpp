// Queueing approximations used by the flow-level simulator.
//
// Each VNF is modelled as a single queueing station.  Mean waiting time uses
// the Kingman / Allen–Cunneen G/G/1 approximation
//     W ≈ (rho / (1 - rho)) * ((Ca^2 + Cs^2) / 2) * E[S]
// which reduces to M/M/1 for Ca^2 = Cs^2 = 1 and correctly captures the two
// effects the explanations must attribute: utilization (rho) and traffic
// burstiness (Ca^2).  Overload (rho >= 1) is handled by capping the queue at
// a configurable depth, returning the capped delay and the implied loss rate.
#pragma once

namespace xnfv::nfv {

/// Result of evaluating one queueing station for one epoch.
struct StationResult {
    double utilization = 0.0;   ///< rho = lambda * E[S], uncapped (can exceed 1)
    double wait_s = 0.0;        ///< mean queueing delay (excl. service), seconds
    double service_s = 0.0;     ///< mean service time E[S], seconds
    double loss_rate = 0.0;     ///< fraction of offered packets dropped
    [[nodiscard]] double sojourn_s() const noexcept { return wait_s + service_s; }
};

/// Parameters of a G/G/1 station evaluation.
struct StationParams {
    double arrival_pps = 0.0;   ///< offered packet arrival rate
    double service_pps = 0.0;   ///< service capacity in packets/second (> 0)
    double ca2 = 1.0;           ///< squared CV of inter-arrival times
    double cs2 = 1.0;           ///< squared CV of service times
    /// Maximum sustainable queue length used to cap delay and derive loss in
    /// overload; a proxy for a finite ring/buffer.
    double max_queue_pkts = 4096.0;
};

/// Evaluates the Kingman approximation with overload capping.
/// Preconditions: service_pps > 0, arrival_pps >= 0; throws otherwise.
[[nodiscard]] StationResult evaluate_station(const StationParams& params);

/// Mean M/M/1 sojourn time (service + wait); utility for tests/baselines.
/// Returns +inf when rho >= 1.
[[nodiscard]] double mm1_sojourn_s(double arrival_pps, double service_pps);

/// Link transmission + queueing delay for a link of `capacity_bps` carrying
/// `offered_bps`, with mean packet size `pkt_bytes`, modelled as M/M/1 on
/// packet transmissions, capped like evaluate_station.
[[nodiscard]] StationResult evaluate_link(double offered_bps, double capacity_bps,
                                          double pkt_bytes, double ca2 = 1.0);

}  // namespace xnfv::nfv
