// Flow-level NFV simulator.
//
// One call to simulate_epoch() evaluates a placed deployment under one
// epoch's offered load per chain.  The model is analytic (queueing
// approximations, see nfv/queueing.hpp) rather than packet-by-packet, which
// is what makes the dataset-generation sweeps cheap enough to train on —
// but it retains the causal structure an explanation must recover:
//
//   * per-VNF CPU saturation: service rate = allocated cycles / effective
//     per-packet cost; utilization drives delay convexly (Kingman),
//   * cache interference: co-located working sets beyond the server LLC
//     inflate every tenant's per-packet cost,
//   * memory pressure: overflow beyond server RAM inflates service times,
//   * link saturation: inter-server hops share finite links,
//   * burstiness: arrival CV^2 multiplies queueing delay,
//   * loss propagation: traffic dropped upstream relieves downstream stages.
//
// A short fixed-point iteration reconciles contention (which depends on
// carried load) with carried load (which depends on contention).
#pragma once

#include <cstdint>
#include <vector>

#include "nfv/chain.hpp"
#include "nfv/infrastructure.hpp"
#include "nfv/queueing.hpp"

namespace xnfv::nfv {

/// Per-VNF observables for one epoch.
struct VnfEpochStats {
    std::uint32_t vnf_id = 0;
    double utilization = 0.0;    ///< rho at this station (uncapped)
    double sojourn_s = 0.0;      ///< wait + service
    double loss_rate = 0.0;
    double cache_penalty = 1.0;  ///< multiplicative per-packet cost inflation
    double mem_penalty = 1.0;    ///< multiplicative service-time inflation
};

/// Per-server observables for one epoch.
struct ServerEpochStats {
    std::uint32_t server_id = 0;
    double cpu_utilization = 0.0;   ///< demanded cycles / total cycles (capped at committed shares)
    double mem_utilization = 0.0;   ///< demanded bytes / memory
    double cache_pressure = 0.0;    ///< demanded LLC bytes / llc size
    std::uint32_t num_vnfs = 0;     ///< co-located instances
};

/// Per-link observables for one epoch.
struct LinkEpochStats {
    std::uint32_t link_id = 0;
    double utilization = 0.0;
    double sojourn_s = 0.0;
    double loss_rate = 0.0;
};

/// Per-chain outcome for one epoch.
struct ChainEpochResult {
    std::uint32_t chain_id = 0;
    double latency_s = 0.0;       ///< mean end-to-end latency of carried packets
    double goodput_frac = 1.0;    ///< carried / offered packets
    bool sla_violated = false;
    std::uint32_t bottleneck_vnf = 0;  ///< id of the highest-utilization stage
    double bottleneck_utilization = 0.0;
    std::uint32_t hop_count = 0;  ///< inter-server hops traversed
};

/// Everything observed in one epoch.
struct EpochResult {
    std::vector<ChainEpochResult> chains;
    std::vector<VnfEpochStats> vnfs;       ///< indexed by vnf id
    std::vector<ServerEpochStats> servers; ///< indexed by server id
    std::vector<LinkEpochStats> links;     ///< indexed by link id
};

struct SimulatorConfig {
    /// Fixed-point iterations between contention and carried load.
    int contention_iterations = 2;
    /// Service-time inflation per unit of memory overflow fraction.
    double mem_penalty_slope = 2.0;
};

/// Evaluates one epoch.  `loads` must have one entry per chain, in chain-id
/// order.  All VNFs referenced by chains must be placed (server >= 0);
/// throws std::invalid_argument otherwise.
[[nodiscard]] EpochResult simulate_epoch(const Deployment& dep, const Infrastructure& infra,
                                         const std::vector<OfferedLoad>& loads,
                                         const SimulatorConfig& config = {});

}  // namespace xnfv::nfv
