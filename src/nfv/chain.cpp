#include "nfv/chain.hpp"

#include <stdexcept>

namespace xnfv::nfv {

std::uint32_t Deployment::add_vnf(VnfInstance v) {
    v.id = static_cast<std::uint32_t>(vnfs.size());
    vnfs.push_back(v);
    return v.id;
}

std::uint32_t Deployment::add_chain(ServiceChain c) {
    for (std::uint32_t vid : c.vnf_ids)
        if (vid >= vnfs.size())
            throw std::out_of_range("Deployment::add_chain: unknown VNF id " +
                                    std::to_string(vid));
    if (c.vnf_ids.empty())
        throw std::invalid_argument("Deployment::add_chain: empty chain");
    c.id = static_cast<std::uint32_t>(chains.size());
    chains.push_back(std::move(c));
    return chains.back().id;
}

const VnfInstance& Deployment::vnf(std::uint32_t vnf_id) const {
    if (vnf_id >= vnfs.size())
        throw std::out_of_range("Deployment::vnf: unknown id " + std::to_string(vnf_id));
    return vnfs[vnf_id];
}

VnfInstance& Deployment::vnf(std::uint32_t vnf_id) {
    if (vnf_id >= vnfs.size())
        throw std::out_of_range("Deployment::vnf: unknown id " + std::to_string(vnf_id));
    return vnfs[vnf_id];
}

std::uint32_t make_chain(Deployment& dep, std::string name,
                         const std::vector<VnfType>& types, double cpu_cores, SlaSpec sla,
                         std::uint32_t rules_for_matchers) {
    ServiceChain chain;
    chain.name = std::move(name);
    chain.sla = sla;
    for (VnfType t : types) {
        VnfInstance inst;
        inst.type = t;
        inst.cpu_cores = cpu_cores;
        // Rule-matching VNFs get a default policy size; others have none.
        inst.num_rules = (t == VnfType::firewall || t == VnfType::ids)
                             ? rules_for_matchers
                             : 0;
        chain.vnf_ids.push_back(dep.add_vnf(inst));
    }
    return dep.add_chain(std::move(chain));
}

}  // namespace xnfv::nfv
