// Telemetry: turns one simulated epoch into the feature vector an operator's
// monitoring stack would export for each service chain.
//
// Two feature sets are supported:
//   * config_only    — what is known *before* deployment (traffic descriptor
//                      + chain configuration).  Used for admission-control
//                      style prediction tasks.
//   * full_telemetry — config features plus the runtime counters (per-VNF
//                      CPU utilization, server memory/cache pressure, link
//                      utilization, co-location).  This is the operational
//                      diagnosis setting the paper targets: the model sees
//                      what the NOC sees, and the explanation must point at
//                      the right counter.
#pragma once

#include <string>
#include <vector>

#include "mlcore/dataset.hpp"
#include "nfv/chain.hpp"
#include "nfv/infrastructure.hpp"
#include "nfv/simulator.hpp"

namespace xnfv::nfv {

enum class FeatureSet { config_only, full_telemetry };

/// Names of the features produced for a set, in column order.
[[nodiscard]] std::vector<std::string> feature_names(FeatureSet set);

/// Index of a named feature within a set's columns; throws if absent.
[[nodiscard]] std::size_t feature_index(FeatureSet set, const std::string& name);

/// Extracts the feature vector for chain `chain_id` in the given epoch.
[[nodiscard]] std::vector<double> extract_features(
    FeatureSet set, const Deployment& dep, const Infrastructure& infra,
    const std::vector<OfferedLoad>& loads, const EpochResult& epoch,
    std::uint32_t chain_id);

/// What the dataset label is.
enum class LabelKind {
    latency_ms,     ///< regression: end-to-end latency in milliseconds
    sla_violation,  ///< classification: 1 if the chain violated its SLA
};

[[nodiscard]] double extract_label(LabelKind kind, const EpochResult& epoch,
                                   std::uint32_t chain_id);

[[nodiscard]] xnfv::ml::Task task_for(LabelKind kind) noexcept;

}  // namespace xnfv::nfv
