// Service function chains and their SLA specifications.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "nfv/vnf.hpp"

namespace xnfv::nfv {

/// Latency / throughput / loss targets for one chain.
struct SlaSpec {
    double max_latency_s = 2e-3;   ///< end-to-end budget (gateway to egress)
    double min_goodput_frac = 0.99;  ///< carried / offered packet fraction
};

/// One epoch's offered traffic for a chain.
struct OfferedLoad {
    double pps = 0.0;             ///< packets per second
    double avg_pkt_bytes = 700.0; ///< mean packet size
    double active_flows = 0.0;    ///< concurrently active flows
    double burstiness_ca2 = 1.0;  ///< squared CV of inter-arrivals

    [[nodiscard]] double bps() const noexcept { return pps * avg_pkt_bytes * 8.0; }
};

/// An ordered chain of VNF instances (by id) traffic must traverse.
struct ServiceChain {
    std::uint32_t id = 0;
    std::string name;
    std::vector<std::uint32_t> vnf_ids;  ///< indices into the deployment's VNF list
    SlaSpec sla{};

    [[nodiscard]] std::size_t length() const noexcept { return vnf_ids.size(); }
};

/// A full deployment: infrastructure-independent description of what runs.
struct Deployment {
    std::vector<VnfInstance> vnfs;
    std::vector<ServiceChain> chains;

    /// Adds an instance and returns its id.
    std::uint32_t add_vnf(VnfInstance v);

    /// Adds a chain over existing VNF ids; validates the ids.
    std::uint32_t add_chain(ServiceChain c);

    [[nodiscard]] const VnfInstance& vnf(std::uint32_t vnf_id) const;
    [[nodiscard]] VnfInstance& vnf(std::uint32_t vnf_id);
};

/// Convenience factory: builds a chain of the given types with `cpu_cores`
/// per instance, appending the instances and the chain to `dep`.
std::uint32_t make_chain(Deployment& dep, std::string name,
                         const std::vector<VnfType>& types, double cpu_cores,
                         SlaSpec sla = {}, std::uint32_t rules_for_matchers = 500);

}  // namespace xnfv::nfv
