// VNF placement: assigns deployment instances to servers.
//
// Placement determines co-location, and co-location drives the CPU and cache
// contention that the explanations must later surface — so the dataset
// builder varies the strategy to create diverse contention patterns.
#pragma once

#include "mlcore/rng.hpp"
#include "nfv/chain.hpp"
#include "nfv/infrastructure.hpp"

namespace xnfv::nfv {

enum class PlacementStrategy {
    first_fit,   ///< first server with enough residual CPU
    best_fit,    ///< server whose residual CPU is smallest but sufficient (packs)
    worst_fit,   ///< server with most residual CPU (spreads)
    random_fit,  ///< uniformly random among servers with enough residual CPU
};

[[nodiscard]] const char* to_string(PlacementStrategy s) noexcept;

/// Assigns every unplaced VNF in `dep` to a server, tracking per-server CPU
/// commitments (sum of instance cpu_cores <= server cores).  Returns false
/// and leaves instances unplaced if capacity runs out; placements done so
/// far are kept.  `rng` is used only by random_fit.
bool place(Deployment& dep, const Infrastructure& infra, PlacementStrategy strategy,
           xnfv::ml::Rng& rng);

/// CPU cores committed per server by the current placement.
[[nodiscard]] std::vector<double> committed_cores(const Deployment& dep,
                                                  const Infrastructure& infra);

}  // namespace xnfv::nfv
