#include "nfv/placement.hpp"

#include <limits>

namespace xnfv::nfv {

const char* to_string(PlacementStrategy s) noexcept {
    switch (s) {
        case PlacementStrategy::first_fit: return "first_fit";
        case PlacementStrategy::best_fit: return "best_fit";
        case PlacementStrategy::worst_fit: return "worst_fit";
        case PlacementStrategy::random_fit: return "random_fit";
    }
    return "unknown";
}

std::vector<double> committed_cores(const Deployment& dep, const Infrastructure& infra) {
    std::vector<double> used(infra.servers().size(), 0.0);
    for (const VnfInstance& v : dep.vnfs)
        if (v.server >= 0 && static_cast<std::size_t>(v.server) < used.size())
            used[static_cast<std::size_t>(v.server)] += v.cpu_cores;
    return used;
}

bool place(Deployment& dep, const Infrastructure& infra, PlacementStrategy strategy,
           xnfv::ml::Rng& rng) {
    auto used = committed_cores(dep, infra);
    const auto& servers = infra.servers();
    bool all_placed = true;

    for (VnfInstance& v : dep.vnfs) {
        if (v.server >= 0) continue;  // already placed

        std::int32_t chosen = -1;
        switch (strategy) {
            case PlacementStrategy::first_fit: {
                for (std::size_t s = 0; s < servers.size(); ++s) {
                    if (used[s] + v.cpu_cores <= servers[s].cores) {
                        chosen = static_cast<std::int32_t>(s);
                        break;
                    }
                }
                break;
            }
            case PlacementStrategy::best_fit: {
                double best_resid = std::numeric_limits<double>::infinity();
                for (std::size_t s = 0; s < servers.size(); ++s) {
                    const double resid = servers[s].cores - used[s] - v.cpu_cores;
                    if (resid >= 0.0 && resid < best_resid) {
                        best_resid = resid;
                        chosen = static_cast<std::int32_t>(s);
                    }
                }
                break;
            }
            case PlacementStrategy::worst_fit: {
                double best_resid = -1.0;
                for (std::size_t s = 0; s < servers.size(); ++s) {
                    const double resid = servers[s].cores - used[s] - v.cpu_cores;
                    if (resid >= 0.0 && resid > best_resid) {
                        best_resid = resid;
                        chosen = static_cast<std::int32_t>(s);
                    }
                }
                break;
            }
            case PlacementStrategy::random_fit: {
                std::vector<std::int32_t> feasible;
                for (std::size_t s = 0; s < servers.size(); ++s)
                    if (used[s] + v.cpu_cores <= servers[s].cores)
                        feasible.push_back(static_cast<std::int32_t>(s));
                if (!feasible.empty())
                    chosen = feasible[rng.uniform_index(feasible.size())];
                break;
            }
        }

        if (chosen < 0) {
            all_placed = false;
            continue;
        }
        v.server = chosen;
        used[static_cast<std::size_t>(chosen)] += v.cpu_cores;
    }
    return all_placed;
}

}  // namespace xnfv::nfv
