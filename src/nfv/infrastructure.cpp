#include "nfv/infrastructure.hpp"

#include <stdexcept>

namespace xnfv::nfv {

Infrastructure Infrastructure::homogeneous_pop(std::size_t num_servers, Server prototype,
                                               double link_bps) {
    Infrastructure infra;
    for (std::size_t i = 0; i < num_servers; ++i) {
        Server s = prototype;
        s.id = static_cast<std::uint32_t>(i);
        infra.add_server(s);
    }
    // Gateway -> server links plus full mesh of server -> server logical
    // links (both through the ToR; capacity is the server NIC capacity).
    for (std::size_t i = 0; i < num_servers; ++i) {
        infra.add_link(Link{.from = -1, .to = static_cast<std::int32_t>(i),
                            .capacity_bps = link_bps, .propagation_s = 50e-6});
    }
    for (std::size_t i = 0; i < num_servers; ++i) {
        for (std::size_t j = 0; j < num_servers; ++j) {
            if (i == j) continue;
            infra.add_link(Link{.from = static_cast<std::int32_t>(i),
                                .to = static_cast<std::int32_t>(j),
                                .capacity_bps = link_bps, .propagation_s = 20e-6});
        }
    }
    return infra;
}

std::uint32_t Infrastructure::add_server(Server s) {
    s.id = static_cast<std::uint32_t>(servers_.size());
    servers_.push_back(s);
    return s.id;
}

std::uint32_t Infrastructure::add_link(Link l) {
    l.id = static_cast<std::uint32_t>(links_.size());
    links_.push_back(l);
    return l.id;
}

std::uint32_t Infrastructure::link_between(std::int32_t a, std::int32_t b) const {
    for (const Link& l : links_)
        if (l.from == a && l.to == b) return l.id;
    throw std::out_of_range("Infrastructure::link_between: no link " + std::to_string(a) +
                            " -> " + std::to_string(b));
}

}  // namespace xnfv::nfv
