// Remediation actions: the operator-side verbs a diagnosis leads to.
//
// The XAI layer produces *explanations*; an operator turns them into
// *actions*.  This module provides the primitive actions on a deployment —
// scale a VNF's CPU allocation, migrate a VNF, shrink a rule table — with
// capacity checking, so that the closed-loop experiment (bench T5) can apply
// an explanation-chosen action and re-simulate to verify the violation is
// actually cured.  This closes the loop a feature-space counterfactual
// cannot: the simulator, not the model, judges the fix.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "nfv/chain.hpp"
#include "nfv/infrastructure.hpp"

namespace xnfv::nfv {

enum class ActionKind {
    none,              ///< explicit no-op (demand-driven violations)
    scale_up_cpu,      ///< grow a VNF's CPU allocation by `magnitude` (x1+m)
    migrate_spread,    ///< move a VNF to the least-committed feasible server
    migrate_colocate,  ///< move a VNF next to its chain predecessor
    reduce_rules,      ///< shrink a matcher's rule table by `magnitude` (x1-m)
};

[[nodiscard]] const char* to_string(ActionKind kind) noexcept;

struct Action {
    ActionKind kind = ActionKind::none;
    std::uint32_t target_vnf = 0;
    double magnitude = 0.5;

    [[nodiscard]] std::string to_string(const Deployment& dep) const;
};

/// Applies the action to `dep` (in place), respecting server CPU capacity.
/// Returns false — leaving the deployment untouched — when the action is
/// infeasible (no capacity to grow, no feasible migration target, ...).
bool apply_action(Deployment& dep, const Infrastructure& infra, const Action& action);

/// The VNF id with the highest station utilization in `chain` according to
/// the epoch result — the default remediation target.
[[nodiscard]] std::uint32_t bottleneck_vnf(const Deployment& dep,
                                           const ServiceChain& chain,
                                           const struct EpochResult& epoch);

}  // namespace xnfv::nfv
