#include "nfv/telemetry.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace xnfv::nfv {

namespace {

const std::vector<std::string> kConfigFeatures{
    "offered_pps",      // packets per second offered to the chain
    "offered_mbps",     // megabits per second
    "avg_pkt_bytes",    // mean packet size
    "active_flows",     // concurrently active flows
    "burstiness_ca2",   // squared CV of inter-arrival times
    "chain_length",     // number of VNFs
    "min_cpu_cores",    // smallest CPU allocation along the chain
    "total_cpu_cores",  // total CPU allocated to the chain
    "total_rules",      // summed rule-table sizes (firewall/IDS)
    "byte_heavy_stages" // count of per-byte-dominated VNFs (ids/wan/crypto/transcode)
};

const std::vector<std::string> kRuntimeFeatures{
    "max_vnf_cpu_util",   // highest per-VNF station utilization in the chain
    "mean_vnf_cpu_util",  // mean station utilization
    "max_server_cpu",     // busiest hosting server CPU utilization
    "max_server_mem",     // busiest hosting server memory utilization
    "max_cache_pressure", // worst LLC demand/size ratio among hosting servers
    "max_link_util",      // busiest traversed link
    "colocated_vnfs",     // max co-located instances on any hosting server
    "hop_count",          // inter-server hops
};

bool is_byte_heavy(VnfType t) noexcept {
    const VnfProfile& p = vnf_profile(t);
    // "Byte dominated" at a typical 700 B packet: per-byte work exceeds
    // per-packet work.
    return p.cycles_per_byte * 700.0 > p.cycles_per_packet;
}

}  // namespace

std::vector<std::string> feature_names(FeatureSet set) {
    std::vector<std::string> names = kConfigFeatures;
    if (set == FeatureSet::full_telemetry)
        names.insert(names.end(), kRuntimeFeatures.begin(), kRuntimeFeatures.end());
    return names;
}

std::size_t feature_index(FeatureSet set, const std::string& name) {
    const auto names = feature_names(set);
    const auto it = std::find(names.begin(), names.end(), name);
    if (it == names.end())
        throw std::invalid_argument("feature_index: unknown feature '" + name + "'");
    return static_cast<std::size_t>(it - names.begin());
}

std::vector<double> extract_features(FeatureSet set, const Deployment& dep,
                                     const Infrastructure& infra,
                                     const std::vector<OfferedLoad>& loads,
                                     const EpochResult& epoch, std::uint32_t chain_id) {
    if (chain_id >= dep.chains.size())
        throw std::out_of_range("extract_features: unknown chain");
    const ServiceChain& chain = dep.chains[chain_id];
    const OfferedLoad& load = loads.at(chain_id);

    double min_cores = std::numeric_limits<double>::infinity();
    double total_cores = 0.0;
    double total_rules = 0.0;
    double byte_heavy = 0.0;
    for (std::uint32_t vid : chain.vnf_ids) {
        const VnfInstance& v = dep.vnf(vid);
        min_cores = std::min(min_cores, v.cpu_cores);
        total_cores += v.cpu_cores;
        total_rules += v.num_rules;
        byte_heavy += is_byte_heavy(v.type) ? 1.0 : 0.0;
    }

    std::vector<double> f{
        load.pps,
        load.bps() / 1e6,
        load.avg_pkt_bytes,
        load.active_flows,
        load.burstiness_ca2,
        static_cast<double>(chain.length()),
        min_cores,
        total_cores,
        total_rules,
        byte_heavy,
    };

    if (set == FeatureSet::full_telemetry) {
        double max_util = 0.0, sum_util = 0.0;
        double max_srv_cpu = 0.0, max_srv_mem = 0.0, max_cache = 0.0;
        double max_link = 0.0;
        double colocated = 0.0;
        std::int32_t prev_server = -1;
        double hops = 0.0;
        for (std::uint32_t vid : chain.vnf_ids) {
            const VnfInstance& v = dep.vnf(vid);
            const VnfEpochStats& vs = epoch.vnfs.at(vid);
            max_util = std::max(max_util, vs.utilization);
            sum_util += vs.utilization;
            const auto srv = static_cast<std::size_t>(v.server);
            const ServerEpochStats& ss = epoch.servers.at(srv);
            max_srv_cpu = std::max(max_srv_cpu, ss.cpu_utilization);
            max_srv_mem = std::max(max_srv_mem, ss.mem_utilization);
            max_cache = std::max(max_cache, ss.cache_pressure);
            colocated = std::max(colocated, static_cast<double>(ss.num_vnfs));
            if (Infrastructure::needs_hop(prev_server, v.server)) {
                const auto lid = infra.link_between(prev_server, v.server);
                max_link = std::max(max_link, epoch.links.at(lid).utilization);
                hops += 1.0;
            }
            prev_server = v.server;
        }
        f.insert(f.end(), {
            max_util,
            sum_util / static_cast<double>(chain.length()),
            max_srv_cpu,
            max_srv_mem,
            max_cache,
            max_link,
            colocated,
            hops,
        });
    }
    return f;
}

double extract_label(LabelKind kind, const EpochResult& epoch, std::uint32_t chain_id) {
    const ChainEpochResult& cr = epoch.chains.at(chain_id);
    switch (kind) {
        case LabelKind::latency_ms: return cr.latency_s * 1e3;
        case LabelKind::sla_violation: return cr.sla_violated ? 1.0 : 0.0;
    }
    throw std::invalid_argument("extract_label: unknown kind");
}

xnfv::ml::Task task_for(LabelKind kind) noexcept {
    return kind == LabelKind::sla_violation ? xnfv::ml::Task::binary_classification
                                            : xnfv::ml::Task::regression;
}

}  // namespace xnfv::nfv
