// Virtual network function types and their resource cost models.
//
// Each VNF type is characterized by a per-packet and per-byte CPU cost, a
// per-flow memory footprint, and a last-level-cache working set.  These
// coefficients are loosely calibrated to published middlebox measurements
// (e.g. per-packet costs for stateless forwarding in the hundreds of cycles,
// DPI and crypto dominated by per-byte work) — the absolute values matter
// less than the structure: which resource each VNF stresses determines what
// a correct explanation of its performance must point at.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>

namespace xnfv::nfv {

/// Catalog of VNF types modelled by the simulator.
enum class VnfType : std::uint8_t {
    firewall,        ///< rule matching: per-packet cost grows with rule count
    nat,             ///< flow-table lookup + header rewrite: per-packet, stateful
    ids,             ///< deep packet inspection: dominated by per-byte cost
    load_balancer,   ///< consistent hashing / connection tracking: light per-packet
    wan_optimizer,   ///< dedup + compression: per-byte, large cache working set
    transcoder,      ///< media transcode: very heavy per-byte, CPU bound
    crypto_gateway,  ///< IPsec/TLS termination: per-byte crypto
};

inline constexpr std::size_t kNumVnfTypes = 7;

/// All catalog types, in enum order (for iteration in tests and sweeps).
[[nodiscard]] std::span<const VnfType> all_vnf_types() noexcept;

[[nodiscard]] std::string_view to_string(VnfType t) noexcept;

/// Parses the string produced by to_string; throws std::invalid_argument.
[[nodiscard]] VnfType vnf_type_from_string(std::string_view s);

/// Static resource cost model of a VNF type.
struct VnfProfile {
    VnfType type{};
    double cycles_per_packet = 0.0;   ///< fixed CPU work per packet
    double cycles_per_byte = 0.0;     ///< CPU work proportional to payload
    double cycles_per_rule = 0.0;     ///< extra per-packet work per configured rule
    double mem_bytes_per_flow = 0.0;  ///< flow-state memory footprint
    double mem_bytes_base = 0.0;      ///< fixed memory footprint
    double cache_bytes_per_kflow = 0.0;  ///< LLC working set per 1000 active flows
    double cache_bytes_base = 0.0;       ///< fixed LLC working set
    /// Squared coefficient of variation of per-packet service time; feeds the
    /// Kingman queueing approximation (1 = exponential-like, <1 regular).
    double service_cv2 = 1.0;
};

/// Built-in profile for a type.  Values are fixed constants so experiments
/// are reproducible; see the header comment for calibration rationale.
[[nodiscard]] const VnfProfile& vnf_profile(VnfType t) noexcept;

/// A deployed VNF instance: a typed box with a CPU allocation and runtime
/// configuration, assigned to a server by the placement stage.
struct VnfInstance {
    std::uint32_t id = 0;
    VnfType type = VnfType::firewall;
    double cpu_cores = 1.0;      ///< cores allocated (may be fractional)
    std::uint32_t num_rules = 0; ///< rule/table size (firewall, ids)
    std::int32_t server = -1;    ///< index into Infrastructure::servers, -1 = unplaced

    /// CPU cycles needed to process the given traffic in one second,
    /// including rule-matching overhead, before any contention effects.
    [[nodiscard]] double demand_cycles(double pps, double bps, double active_flows) const;

    /// Memory demand in bytes for the given number of active flows.
    [[nodiscard]] double demand_memory(double active_flows) const;

    /// LLC working set in bytes for the given number of active flows.
    [[nodiscard]] double demand_cache(double active_flows) const;
};

}  // namespace xnfv::nfv
