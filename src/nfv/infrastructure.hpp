// Physical substrate: servers, links, and topology.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace xnfv::nfv {

/// A commodity server hosting VNF instances.
struct Server {
    std::uint32_t id = 0;
    double cores = 16.0;
    double cycles_per_core = 3.0e9;  ///< per second
    double memory_bytes = 64e9;
    double llc_bytes = 32e6;         ///< shared last-level cache
    /// Strength of the cache-interference penalty: effective per-packet cost
    /// is multiplied by (1 + alpha * max(0, demand/llc - 1)).
    double cache_penalty_alpha = 0.35;

    [[nodiscard]] double total_cycles() const noexcept { return cores * cycles_per_core; }
};

/// A directed link between two servers (or server and gateway).
struct Link {
    std::uint32_t id = 0;
    std::int32_t from = -1;  ///< server index; -1 = external gateway
    std::int32_t to = -1;
    double capacity_bps = 10e9;
    double propagation_s = 50e-6;
};

/// A rack-scale NFV point of presence: a set of servers all reachable from
/// an external gateway through a top-of-rack switch.  Links exist gateway ->
/// each server and server -> server (through the ToR, one logical hop).
class Infrastructure {
public:
    Infrastructure() = default;

    /// Builds a homogeneous PoP of `num_servers` identical servers connected
    /// via `link_bps` links.
    static Infrastructure homogeneous_pop(std::size_t num_servers, Server prototype,
                                          double link_bps = 10e9);

    [[nodiscard]] const std::vector<Server>& servers() const noexcept { return servers_; }
    [[nodiscard]] std::vector<Server>& servers() noexcept { return servers_; }
    [[nodiscard]] const std::vector<Link>& links() const noexcept { return links_; }

    std::uint32_t add_server(Server s);
    std::uint32_t add_link(Link l);

    /// The logical link traversed when traffic moves from server `a` to
    /// server `b` (or from the gateway when a == -1).  Returns the link id;
    /// throws std::out_of_range if no such link exists.
    [[nodiscard]] std::uint32_t link_between(std::int32_t a, std::int32_t b) const;

    /// True if the two consecutive chain positions require a network hop.
    [[nodiscard]] static bool needs_hop(std::int32_t a, std::int32_t b) noexcept {
        return a != b;
    }

private:
    std::vector<Server> servers_;
    std::vector<Link> links_;
};

}  // namespace xnfv::nfv
