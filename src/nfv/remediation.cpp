#include "nfv/remediation.hpp"

#include <algorithm>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "nfv/placement.hpp"
#include "nfv/simulator.hpp"

namespace xnfv::nfv {

const char* to_string(ActionKind kind) noexcept {
    switch (kind) {
        case ActionKind::none: return "none";
        case ActionKind::scale_up_cpu: return "scale_up_cpu";
        case ActionKind::migrate_spread: return "migrate_spread";
        case ActionKind::migrate_colocate: return "migrate_colocate";
        case ActionKind::reduce_rules: return "reduce_rules";
    }
    return "unknown";
}

std::string Action::to_string(const Deployment& dep) const {
    std::ostringstream os;
    os << nfv::to_string(kind);
    if (kind != ActionKind::none && target_vnf < dep.vnfs.size()) {
        os << " on vnf#" << target_vnf << " ("
           << nfv::to_string(dep.vnf(target_vnf).type) << ")";
        if (kind == ActionKind::scale_up_cpu || kind == ActionKind::reduce_rules)
            os << " x" << magnitude;
    }
    return os.str();
}

namespace {

/// Moves `vnf` to server `target` if it fits; returns success.
bool migrate_to(Deployment& dep, const Infrastructure& infra, VnfInstance& vnf,
                std::int32_t target) {
    if (target < 0 || static_cast<std::size_t>(target) >= infra.servers().size())
        return false;
    if (vnf.server == target) return false;
    const auto used = committed_cores(dep, infra);
    const auto t = static_cast<std::size_t>(target);
    if (used[t] + vnf.cpu_cores > infra.servers()[t].cores) return false;
    vnf.server = target;
    return true;
}

}  // namespace

bool apply_action(Deployment& dep, const Infrastructure& infra, const Action& action) {
    if (action.kind == ActionKind::none) return true;
    if (action.target_vnf >= dep.vnfs.size())
        throw std::out_of_range("apply_action: unknown VNF id");
    VnfInstance& vnf = dep.vnf(action.target_vnf);

    switch (action.kind) {
        case ActionKind::none:
            return true;

        case ActionKind::scale_up_cpu: {
            if (action.magnitude <= 0.0)
                throw std::invalid_argument("apply_action: magnitude must be > 0");
            const auto used = committed_cores(dep, infra);
            const auto srv = static_cast<std::size_t>(vnf.server);
            const double residual = infra.servers()[srv].cores - used[srv];
            const double want = vnf.cpu_cores * action.magnitude;
            const double grant = std::min(want, residual);
            if (grant <= 1e-9) return false;  // server full: scaling impossible
            vnf.cpu_cores += grant;
            return true;
        }

        case ActionKind::migrate_spread: {
            // Least-committed feasible server other than the current one.
            const auto used = committed_cores(dep, infra);
            std::int32_t best = -1;
            double best_used = std::numeric_limits<double>::infinity();
            for (std::size_t s = 0; s < infra.servers().size(); ++s) {
                if (static_cast<std::int32_t>(s) == vnf.server) continue;
                if (used[s] + vnf.cpu_cores > infra.servers()[s].cores) continue;
                if (used[s] < best_used) {
                    best_used = used[s];
                    best = static_cast<std::int32_t>(s);
                }
            }
            return migrate_to(dep, infra, vnf, best);
        }

        case ActionKind::migrate_colocate: {
            // Predecessor in the first chain containing this VNF.
            for (const ServiceChain& chain : dep.chains) {
                for (std::size_t k = 1; k < chain.vnf_ids.size(); ++k) {
                    if (chain.vnf_ids[k] != action.target_vnf) continue;
                    const std::int32_t target = dep.vnf(chain.vnf_ids[k - 1]).server;
                    return migrate_to(dep, infra, vnf, target);
                }
            }
            return false;  // chain head or not in any chain: nothing to co-locate with
        }

        case ActionKind::reduce_rules: {
            if (action.magnitude <= 0.0 || action.magnitude > 1.0)
                throw std::invalid_argument("apply_action: rule reduction in (0,1]");
            if (vnf.num_rules == 0) return false;
            vnf.num_rules = static_cast<std::uint32_t>(
                static_cast<double>(vnf.num_rules) * (1.0 - action.magnitude));
            return true;
        }
    }
    return false;
}

std::uint32_t bottleneck_vnf(const Deployment& dep, const ServiceChain& chain,
                             const EpochResult& epoch) {
    std::uint32_t best = chain.vnf_ids.at(0);
    double best_util = -1.0;
    for (const std::uint32_t vid : chain.vnf_ids) {
        const double util = epoch.vnfs.at(vid).utilization;
        if (util > best_util) {
            best_util = util;
            best = vid;
        }
    }
    (void)dep;
    return best;
}

}  // namespace xnfv::nfv
