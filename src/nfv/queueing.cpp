#include "nfv/queueing.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace xnfv::nfv {

StationResult evaluate_station(const StationParams& params) {
    if (params.service_pps <= 0.0)
        throw std::invalid_argument("evaluate_station: service_pps must be > 0");
    if (params.arrival_pps < 0.0)
        throw std::invalid_argument("evaluate_station: arrival_pps must be >= 0");

    StationResult r;
    r.service_s = 1.0 / params.service_pps;
    r.utilization = params.arrival_pps * r.service_s;

    if (params.arrival_pps == 0.0) return r;

    const double burst_factor = 0.5 * (std::max(params.ca2, 0.0) + std::max(params.cs2, 0.0));
    const double cap_wait = params.max_queue_pkts * r.service_s;

    if (r.utilization < 1.0) {
        const double rho = r.utilization;
        double wait = (rho / (1.0 - rho)) * burst_factor * r.service_s;
        if (wait > cap_wait) {
            // Queue saturated despite rho < 1 (extreme burstiness): cap the
            // delay and translate the excess into loss via the fraction of
            // work that cannot be buffered.
            r.loss_rate = std::min(1.0, (wait - cap_wait) / wait * rho);
            wait = cap_wait;
        }
        r.wait_s = wait;
        return r;
    }

    // Overload: the station serves at capacity; everything beyond it is
    // dropped once the buffer is full, and the survivors see a full queue.
    r.wait_s = cap_wait;
    r.loss_rate = 1.0 - 1.0 / r.utilization;  // carried = service capacity
    return r;
}

double mm1_sojourn_s(double arrival_pps, double service_pps) {
    if (service_pps <= 0.0)
        throw std::invalid_argument("mm1_sojourn_s: service_pps must be > 0");
    if (arrival_pps >= service_pps) return std::numeric_limits<double>::infinity();
    return 1.0 / (service_pps - arrival_pps);
}

StationResult evaluate_link(double offered_bps, double capacity_bps, double pkt_bytes,
                            double ca2) {
    if (capacity_bps <= 0.0)
        throw std::invalid_argument("evaluate_link: capacity_bps must be > 0");
    if (pkt_bytes <= 0.0)
        throw std::invalid_argument("evaluate_link: pkt_bytes must be > 0");
    const double pkt_bits = pkt_bytes * 8.0;
    return evaluate_station(StationParams{
        .arrival_pps = offered_bps / pkt_bits,
        .service_pps = capacity_bps / pkt_bits,
        .ca2 = ca2,
        .cs2 = 1.0,  // exponential-ish packet size mix on the wire
        .max_queue_pkts = 2048.0,
    });
}

}  // namespace xnfv::nfv
