#include "nfv/simulator.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace xnfv::nfv {

namespace {

/// Per-chain per-stage traffic matrices used by the fixed-point iteration.
/// pre_link[c][k] is the pps *offered to the hop preceding* stage k (i.e.
/// after upstream VNF losses but before this hop's own loss) — this is what
/// the link aggregation must see.  carried[c][k] is the pps entering stage
/// k's VNF (after the hop); one extra trailing entry holds the egress pps.
using CarriedMatrix = std::vector<std::vector<double>>;

CarriedMatrix initial_carried(const Deployment& dep, const std::vector<OfferedLoad>& loads) {
    CarriedMatrix carried(dep.chains.size());
    for (std::size_t c = 0; c < dep.chains.size(); ++c)
        carried[c].assign(dep.chains[c].length() + 1, loads[c].pps);
    return carried;
}

}  // namespace

EpochResult simulate_epoch(const Deployment& dep, const Infrastructure& infra,
                           const std::vector<OfferedLoad>& loads,
                           const SimulatorConfig& config) {
    if (loads.size() != dep.chains.size())
        throw std::invalid_argument("simulate_epoch: one OfferedLoad per chain required");
    for (const ServiceChain& chain : dep.chains)
        for (std::uint32_t vid : chain.vnf_ids)
            if (dep.vnf(vid).server < 0)
                throw std::invalid_argument("simulate_epoch: VNF " + std::to_string(vid) +
                                            " is unplaced");

    const auto& servers = infra.servers();
    EpochResult out;
    out.vnfs.assign(dep.vnfs.size(), VnfEpochStats{});
    out.servers.assign(servers.size(), ServerEpochStats{});
    out.links.assign(infra.links().size(), LinkEpochStats{});
    for (std::size_t v = 0; v < dep.vnfs.size(); ++v)
        out.vnfs[v].vnf_id = static_cast<std::uint32_t>(v);
    for (std::size_t s = 0; s < servers.size(); ++s)
        out.servers[s].server_id = static_cast<std::uint32_t>(s);
    for (std::size_t l = 0; l < out.links.size(); ++l)
        out.links[l].link_id = static_cast<std::uint32_t>(l);

    CarriedMatrix carried = initial_carried(dep, loads);
    CarriedMatrix pre_link = initial_carried(dep, loads);

    // Server-level aggregates recomputed each fixed-point iteration.
    std::vector<double> srv_cycles(servers.size());
    std::vector<double> srv_mem(servers.size());
    std::vector<double> srv_cache(servers.size());
    std::vector<std::uint32_t> srv_vnfs(servers.size());
    std::vector<double> link_bps(out.links.size());

    for (int iter = 0; iter < std::max(1, config.contention_iterations); ++iter) {
        std::fill(srv_cycles.begin(), srv_cycles.end(), 0.0);
        std::fill(srv_mem.begin(), srv_mem.end(), 0.0);
        std::fill(srv_cache.begin(), srv_cache.end(), 0.0);
        std::fill(srv_vnfs.begin(), srv_vnfs.end(), 0u);
        std::fill(link_bps.begin(), link_bps.end(), 0.0);

        // Pass 1: aggregate demands per server and per link from the current
        // carried-load estimate.
        for (std::size_t c = 0; c < dep.chains.size(); ++c) {
            const ServiceChain& chain = dep.chains[c];
            const OfferedLoad& load = loads[c];
            std::int32_t prev_server = -1;  // traffic enters from the gateway
            for (std::size_t k = 0; k < chain.length(); ++k) {
                const VnfInstance& vnf = dep.vnf(chain.vnf_ids[k]);
                const double pps = carried[c][k];
                const double bps = pps * load.avg_pkt_bytes * 8.0;
                const auto srv = static_cast<std::size_t>(vnf.server);
                srv_cycles[srv] += vnf.demand_cycles(pps, bps, load.active_flows);
                srv_mem[srv] += vnf.demand_memory(load.active_flows);
                srv_cache[srv] += vnf.demand_cache(load.active_flows);
                srv_vnfs[srv] += 1;
                if (Infrastructure::needs_hop(prev_server, vnf.server)) {
                    // Links see the traffic *offered* to the hop, before the
                    // hop's own loss — using the post-loss carried value here
                    // would make the fixed point forget the overload.
                    link_bps[infra.link_between(prev_server, vnf.server)] +=
                        pre_link[c][k] * load.avg_pkt_bytes * 8.0;
                }
                prev_server = vnf.server;
            }
        }

        // Pass 2: server-level contention factors.
        for (std::size_t s = 0; s < servers.size(); ++s) {
            const Server& server = servers[s];
            out.servers[s].cpu_utilization = srv_cycles[s] / server.total_cycles();
            out.servers[s].mem_utilization = srv_mem[s] / server.memory_bytes;
            out.servers[s].cache_pressure = srv_cache[s] / server.llc_bytes;
            out.servers[s].num_vnfs = srv_vnfs[s];
        }

        // Pass 3: evaluate links on aggregated traffic.
        for (std::size_t l = 0; l < out.links.size(); ++l) {
            const Link& link = infra.links()[l];
            if (link_bps[l] <= 0.0) {
                out.links[l] = LinkEpochStats{.link_id = static_cast<std::uint32_t>(l)};
                continue;
            }
            // Mean packet size across the epoch; per-chain sizes are close
            // enough that the aggregate mean is used.
            double total_pkt_bytes = 0.0, total_pps = 0.0;
            for (std::size_t c = 0; c < dep.chains.size(); ++c) {
                total_pkt_bytes += loads[c].avg_pkt_bytes * loads[c].pps;
                total_pps += loads[c].pps;
            }
            const double pkt_bytes = total_pps > 0.0 ? total_pkt_bytes / total_pps : 700.0;
            const StationResult lr = evaluate_link(link_bps[l], link.capacity_bps, pkt_bytes);
            out.links[l].utilization = lr.utilization;
            out.links[l].sojourn_s = lr.sojourn_s();
            out.links[l].loss_rate = lr.loss_rate;
        }

        // Pass 4: walk each chain, evaluating VNF stations with the current
        // contention factors and updating carried loads.
        for (std::size_t c = 0; c < dep.chains.size(); ++c) {
            const ServiceChain& chain = dep.chains[c];
            const OfferedLoad& load = loads[c];
            std::int32_t prev_server = -1;
            double pps = loads[c].pps;
            for (std::size_t k = 0; k < chain.length(); ++k) {
                const VnfInstance& vnf = dep.vnf(chain.vnf_ids[k]);
                const auto srv = static_cast<std::size_t>(vnf.server);
                const Server& server = servers[srv];

                // Link hop first (ingress to this stage).
                pre_link[c][k] = pps;
                if (Infrastructure::needs_hop(prev_server, vnf.server)) {
                    const auto lid = infra.link_between(prev_server, vnf.server);
                    pps *= 1.0 - out.links[lid].loss_rate;
                }
                carried[c][k] = pps;

                // Effective per-packet CPU cost including contention.
                const double cache_penalty =
                    1.0 + server.cache_penalty_alpha *
                              std::max(0.0, out.servers[srv].cache_pressure - 1.0);
                const double mem_penalty =
                    1.0 + config.mem_penalty_slope *
                              std::max(0.0, out.servers[srv].mem_utilization - 1.0);
                const double bps = pps * load.avg_pkt_bytes * 8.0;
                const double base_cpp =
                    pps > 0.0 ? vnf.demand_cycles(pps, bps, load.active_flows) / pps
                              : vnf_profile(vnf.type).cycles_per_packet;
                const double eff_cpp = base_cpp * cache_penalty * mem_penalty;
                const double service_pps =
                    vnf.cpu_cores * server.cycles_per_core / eff_cpp;

                const StationResult sr = evaluate_station(StationParams{
                    .arrival_pps = pps,
                    .service_pps = service_pps,
                    .ca2 = load.burstiness_ca2,
                    .cs2 = vnf_profile(vnf.type).service_cv2,
                });

                VnfEpochStats& vs = out.vnfs[vnf.id];
                vs.utilization = sr.utilization;
                vs.sojourn_s = sr.sojourn_s();
                vs.loss_rate = sr.loss_rate;
                vs.cache_penalty = cache_penalty;
                vs.mem_penalty = mem_penalty;

                pps *= 1.0 - sr.loss_rate;
                prev_server = vnf.server;
            }
            carried[c][chain.length()] = pps;
        }
    }

    // Final pass: assemble chain results from the converged stats.
    out.chains.reserve(dep.chains.size());
    for (std::size_t c = 0; c < dep.chains.size(); ++c) {
        const ServiceChain& chain = dep.chains[c];
        ChainEpochResult cr;
        cr.chain_id = chain.id;
        std::int32_t prev_server = -1;
        for (std::size_t k = 0; k < chain.length(); ++k) {
            const VnfInstance& vnf = dep.vnf(chain.vnf_ids[k]);
            if (Infrastructure::needs_hop(prev_server, vnf.server)) {
                const auto lid = infra.link_between(prev_server, vnf.server);
                cr.latency_s += out.links[lid].sojourn_s + infra.links()[lid].propagation_s;
                ++cr.hop_count;
            }
            const VnfEpochStats& vs = out.vnfs[vnf.id];
            cr.latency_s += vs.sojourn_s;
            if (vs.utilization > cr.bottleneck_utilization) {
                cr.bottleneck_utilization = vs.utilization;
                cr.bottleneck_vnf = vnf.id;
            }
            prev_server = vnf.server;
        }
        cr.goodput_frac = loads[c].pps > 0.0 ? carried[c][chain.length()] / loads[c].pps : 1.0;
        cr.sla_violated = cr.latency_s > chain.sla.max_latency_s ||
                          cr.goodput_frac < chain.sla.min_goodput_frac;
        out.chains.push_back(cr);
    }
    return out;
}

}  // namespace xnfv::nfv
