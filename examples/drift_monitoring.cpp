// Explanation-based drift monitoring.
//
// A violation model is deployed with a reference attribution profile taken
// at deployment time.  Weeks later the deployment regime shifts (links
// saturate after a peering change).  Accuracy-based monitoring would need violation labels —
// which arrive only after SLAs have already been breached.  Attribution
// monitoring needs none: the mean-|SHAP| profile over current traffic is
// compared against the reference, and the drift detector flags the regime
// change from the *reasons* behind predictions alone.
//
// Build & run:  ./build/examples/drift_monitoring
#include <cstdio>

#include "core/aggregate.hpp"
#include "core/drift.hpp"
#include "core/tree_shap.hpp"
#include "mlcore/forest.hpp"
#include "workload/dataset_builder.hpp"

namespace ml = xnfv::ml;
namespace wl = xnfv::wl;
namespace xai = xnfv::xai;

namespace {

/// Mean-|SHAP| profile of `model` over the first `n` rows of a dataset.
xai::GlobalAttribution profile_of(const ml::Model& model, const ml::Dataset& data,
                                  std::size_t n) {
    xai::TreeShap explainer;
    std::vector<std::size_t> rows;
    for (std::size_t i = 0; i < n && i < data.size(); ++i) rows.push_back(i);
    return xai::aggregate_explanations(explainer, model, data.x.take_rows(rows),
                                       data.feature_names);
}

}  // namespace

int main() {
    // Deployment time: train on the normal mixed workload and freeze the
    // reference attribution profile.
    ml::Rng rng(11);
    wl::BuildOptions opt;
    opt.num_samples = 4000;
    const auto normal = wl::build_mixed_dataset(wl::standard_scenarios(), opt, rng);
    ml::RandomForest model(ml::RandomForest::Config{.num_trees = 80});
    model.fit(normal.data, rng);

    const auto reference = profile_of(model, normal.data, 80);
    std::printf("== reference attribution profile (deployment time) ==\n%s\n",
                reference.to_string(5).c_str());

    // Week 1: same regime — the monitor must stay quiet.
    opt.num_samples = 1200;
    const auto week1 = wl::build_mixed_dataset(wl::standard_scenarios(), opt, rng);
    const auto drift1 =
        xai::attribution_drift(reference, profile_of(model, week1.data, 80));
    std::printf("== week 1 (same traffic mix) ==\n%s\n",
                drift1.to_string(normal.data.feature_names).c_str());

    // Week 2: a peering change saturates the inter-server links — the
    // violations are now link-driven, so the *reasons* behind the model's
    // predictions move to different counters even though the model itself is
    // unchanged.
    const auto week2 = wl::build_dataset(
        wl::fault_scenario(wl::FaultKind::link_saturation), opt, rng);
    const auto drift2 =
        xai::attribution_drift(reference, profile_of(model, week2.data, 80));
    std::printf("== week 2 (link-saturated regime) ==\n%s\n",
                drift2.to_string(normal.data.feature_names).c_str());

    if (!drift1.drifted && drift2.drifted) {
        std::printf("monitor verdict: regime change detected in week 2, no false\n"
                    "alarm in week 1 — review/retrain before accuracy degrades.\n");
        return 0;
    }
    std::printf("monitor verdict: unexpected (week1 drifted=%d, week2 drifted=%d)\n",
                drift1.drifted, drift2.drifted);
    return 1;
}
