// What-if remediation: counterfactual capacity planning.
//
// For chains the model predicts will breach their SLA, searches for the
// smallest *actionable* change that flips the prediction — more CPU, fewer
// co-located tenants, shorter paths — while traffic descriptors stay frozen
// (the operator cannot change demand).  Each remediation is then sanity-
// checked against the PDP of the touched feature.
//
// Build & run:  ./build/examples/whatif_remediation
#include <cstdio>

#include "core/counterfactual.hpp"
#include "core/pdp.hpp"
#include "mlcore/forest.hpp"
#include "nfv/telemetry.hpp"
#include "workload/dataset_builder.hpp"

namespace ml = xnfv::ml;
namespace nfv = xnfv::nfv;
namespace wl = xnfv::wl;
namespace xai = xnfv::xai;

int main() {
    ml::Rng rng(99);
    wl::BuildOptions options;
    options.num_samples = 5000;
    const auto built =
        wl::build_dataset(wl::fault_scenario(wl::FaultKind::cpu_starvation), options, rng);
    auto split = ml::train_test_split(built.data, 0.3, rng);
    ml::RandomForest model(ml::RandomForest::Config{.num_trees = 80});
    model.fit(split.train, rng);
    const xai::BackgroundData background(split.train.x, 128);

    // Actionable levers: capacity and placement knobs plus the utilization
    // counters those knobs directly move.  Never the offered traffic.
    const auto fidx = [&](const char* name) {
        return nfv::feature_index(nfv::FeatureSet::full_telemetry, name);
    };
    std::vector<bool> actionable(built.data.num_features(), false);
    for (const char* lever : {"min_cpu_cores", "total_cpu_cores", "total_rules",
                              "colocated_vnfs", "hop_count", "max_vnf_cpu_util",
                              "mean_vnf_cpu_util", "max_server_cpu"})
        actionable[fidx(lever)] = true;

    std::printf("== what-if remediation for predicted SLA violations ==\n");
    int shown = 0;
    for (std::size_t i = 0; i < split.test.size() && shown < 5; ++i) {
        const auto x = split.test.x.row(i);
        const double p = model.predict(x);
        if (p < 0.75) continue;

        xai::CounterfactualOptions opt;
        opt.actionable = actionable;
        const auto cf = xai::find_counterfactual(model, x, background, rng, opt);
        ++shown;
        std::printf("\nchain #%zu: violation probability %.2f\n", i, p);
        if (!cf) {
            std::printf("  no actionable remediation found within budget "
                        "(demand-driven violation)\n");
            continue;
        }
        std::printf("  remediation flips prediction to %.2f by changing %zu feature(s):\n",
                    cf->prediction, cf->changed.size());
        for (const std::size_t j : cf->changed) {
            std::printf("    %-20s %10.3f -> %10.3f\n",
                        built.data.feature_names[j].c_str(), x[j], cf->point[j]);
        }
        std::printf("  standardized L1 distance: %.3f\n", cf->l1_distance);
    }

    // Sanity panel: the PDP of the most common lever should slope the way
    // the remediations move it.
    std::printf("\n== sanity: PDP of min_cpu_cores (predicted violation prob) ==\n");
    const auto pdp = xai::partial_dependence(model, background, fidx("min_cpu_cores"),
                                             xai::PdpOptions{.grid_points = 8});
    for (std::size_t g = 0; g < pdp.grid.size(); ++g)
        std::printf("  cores=%6.2f  P(violation)=%.3f\n", pdp.grid[g], pdp.mean[g]);
    std::printf("(more CPU => lower violation probability: the remediations are "
                "consistent with the model's global shape)\n");
    return 0;
}
