// Quickstart: the whole xnfv pipeline in ~80 lines.
//
//   1. simulate an NFV point-of-presence under mixed workloads,
//   2. train a random forest to predict SLA violations from telemetry,
//   3. explain one prediction with TreeSHAP,
//   4. print the operator-facing attribution report.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "core/tree_shap.hpp"
#include "mlcore/forest.hpp"
#include "mlcore/metrics.hpp"
#include "workload/dataset_builder.hpp"

namespace ml = xnfv::ml;
namespace wl = xnfv::wl;
namespace xai = xnfv::xai;

int main() {
    // 1. Generate a labelled dataset by sweeping the standard scenario
    //    library through the flow-level NFV simulator.
    ml::Rng rng(2020);
    wl::BuildOptions options;
    options.num_samples = 4000;
    const auto built = wl::build_mixed_dataset(wl::standard_scenarios(), options, rng);
    std::printf("dataset: %zu chain-epochs, %zu features, violation rate %.1f%%\n",
                built.data.size(), built.data.num_features(),
                100.0 * built.data.positive_rate());

    // 2. Train the SLA-violation classifier.
    auto split = ml::train_test_split(built.data, 0.25, rng);
    ml::RandomForest forest(ml::RandomForest::Config{.num_trees = 80});
    forest.fit(split.train, rng);
    const double auc = ml::roc_auc(split.test.y, forest.predict_batch(split.test.x));
    std::printf("random forest AUC on held-out data: %.3f\n\n", auc);

    // 3. Pick the most confidently predicted violation in the test set.
    std::size_t worst = 0;
    double worst_prob = -1.0;
    for (std::size_t i = 0; i < split.test.size(); ++i) {
        const double p = forest.predict(split.test.x.row(i));
        if (p > worst_prob) {
            worst_prob = p;
            worst = i;
        }
    }
    std::printf("explaining test instance #%zu (predicted violation prob %.2f)\n",
                worst, worst_prob);

    // 4. Explain it: which telemetry counters push this chain into violation?
    xai::TreeShap explainer;
    auto explanation = explainer.explain(forest, split.test.x.row(worst));
    explanation.feature_names = built.data.feature_names;
    std::printf("%s", explanation.to_string(8).c_str());

    std::printf("\n(additivity check: base %.3f + sum(phi) = %.3f vs prediction %.3f)\n",
                explanation.base_value, explanation.additive_reconstruction(),
                explanation.prediction);
    return 0;
}
