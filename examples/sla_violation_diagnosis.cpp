// SLA-violation diagnosis: the NOC workflow the paper motivates.
//
// A monitoring pipeline flags chains predicted to breach their SLA.  For
// each flagged chain this example produces the three artifacts an operator
// needs, combining local attribution, population-level aggregation, and an
// interpretable policy summary:
//   1. a per-incident "why" (TreeSHAP attribution of the prediction),
//   2. a fleet-level ranking of violation drivers (mean |SHAP|),
//   3. a depth-3 surrogate decision tree of the model's violation policy.
//
// Build & run:  ./build/examples/sla_violation_diagnosis
#include <cstdio>

#include "core/aggregate.hpp"
#include "core/surrogate.hpp"
#include "core/tree_shap.hpp"
#include "mlcore/forest.hpp"
#include "mlcore/metrics.hpp"
#include "workload/dataset_builder.hpp"

namespace ml = xnfv::ml;
namespace wl = xnfv::wl;
namespace xai = xnfv::xai;

int main() {
    // Train the violation classifier on a densely co-located deployment
    // (the scenario with the richest contention structure).
    ml::Rng rng(7);
    wl::BuildOptions options;
    options.num_samples = 5000;
    const auto built =
        wl::build_dataset(wl::standard_scenarios()[4] /* dense_colocation */, options, rng);
    auto split = ml::train_test_split(built.data, 0.3, rng);
    ml::RandomForest model(ml::RandomForest::Config{.num_trees = 100});
    model.fit(split.train, rng);
    std::printf("dense_colocation scenario; model AUC %.3f\n\n",
                ml::roc_auc(split.test.y, model.predict_batch(split.test.x)));

    xai::TreeShap explainer;

    // --- 1. Per-incident diagnosis ----------------------------------------
    std::printf("== incident reports (top telemetry drivers per flagged chain) ==\n");
    int incidents = 0;
    std::vector<std::size_t> flagged;
    for (std::size_t i = 0; i < split.test.size() && incidents < 3; ++i) {
        const double p = model.predict(split.test.x.row(i));
        if (p < 0.8) continue;
        ++incidents;
        flagged.push_back(i);
        auto e = explainer.explain(model, split.test.x.row(i));
        e.feature_names = built.data.feature_names;
        std::printf("\nincident %d: predicted violation probability %.2f\n", incidents, p);
        std::printf("%s", e.to_string(5).c_str());
    }

    // --- 2. Fleet-level ranking --------------------------------------------
    std::printf("\n== fleet view: mean |SHAP| over all flagged chains ==\n");
    std::vector<std::size_t> all_flagged;
    for (std::size_t i = 0; i < split.test.size(); ++i)
        if (model.predict(split.test.x.row(i)) >= 0.5) all_flagged.push_back(i);
    if (all_flagged.size() > 100) all_flagged.resize(100);
    if (!all_flagged.empty()) {
        const auto g = xai::aggregate_explanations(
            explainer, model, split.test.x.take_rows(all_flagged),
            built.data.feature_names);
        std::printf("%s", g.to_string(6).c_str());
    }

    // --- 3. Policy summary --------------------------------------------------
    std::printf("\n== what the model believes (depth-3 surrogate policy) ==\n");
    const xai::BackgroundData background(split.train.x, 1024);
    const auto surrogate = xai::fit_surrogate(
        model, background, built.data.feature_names, rng,
        xai::SurrogateOptions{.max_depth = 3, .min_samples_leaf = 8});
    std::printf("(holdout fidelity R^2 = %.3f)\n%s", surrogate.fidelity_r2,
                surrogate.text.c_str());
    return 0;
}
