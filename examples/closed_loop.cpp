// Closed-loop walkthrough: explain -> act -> re-simulate.
//
// One violating service chain, end to end: the simulator produces the
// incident, TreeSHAP names the dominant telemetry driver, the driver is
// mapped to a remediation action, the action is applied to the deployment,
// and the same epoch is re-simulated to verify the SLA is met.  The
// simulator — not the model — has the final word.
//
// Build & run:  ./build/examples/closed_loop
#include <cstdio>

#include "core/tree_shap.hpp"
#include "mlcore/forest.hpp"
#include "nfv/placement.hpp"
#include "nfv/remediation.hpp"
#include "nfv/simulator.hpp"
#include "workload/dataset_builder.hpp"

namespace ml = xnfv::ml;
namespace nfv = xnfv::nfv;
namespace wl = xnfv::wl;
namespace xai = xnfv::xai;

int main() {
    // Train the violation model once, on the CPU-starvation family.
    ml::Rng rng(31);
    wl::BuildOptions opt;
    opt.num_samples = 4000;
    const auto built =
        wl::build_dataset(wl::fault_scenario(wl::FaultKind::cpu_starvation), opt, rng);
    ml::RandomForest model(ml::RandomForest::Config{.num_trees = 80});
    model.fit(built.data, rng);

    // Stage the incident: a secure-enterprise chain whose IDS is starved.
    nfv::Infrastructure infra = nfv::Infrastructure::homogeneous_pop(2, nfv::Server{});
    nfv::Deployment dep;
    nfv::SlaSpec sla{.max_latency_s = 1.5e-3};
    nfv::make_chain(dep, "secure_enterprise",
                    {nfv::VnfType::firewall, nfv::VnfType::ids, nfv::VnfType::nat}, 2.0,
                    sla, 2000);
    dep.vnf(1).cpu_cores = 0.3;  // the misconfiguration
    nfv::place(dep, infra, nfv::PlacementStrategy::first_fit, rng);

    const std::vector<nfv::OfferedLoad> loads{
        {.pps = 9e4, .avg_pkt_bytes = 700.0, .active_flows = 2e4, .burstiness_ca2 = 1.5}};

    const auto before = nfv::simulate_epoch(dep, infra, loads);
    std::printf("== incident ==\n");
    std::printf("latency %.2f ms against an SLA of %.2f ms -> violated=%s, "
                "bottleneck vnf#%u (%s, util %.2f)\n\n",
                before.chains[0].latency_s * 1e3, sla.max_latency_s * 1e3,
                before.chains[0].sla_violated ? "yes" : "no",
                before.chains[0].bottleneck_vnf,
                std::string(nfv::to_string(dep.vnf(before.chains[0].bottleneck_vnf).type))
                    .c_str(),
                before.chains[0].bottleneck_utilization);

    // Explain the model's view of this chain-epoch.
    const auto features = nfv::extract_features(nfv::FeatureSet::full_telemetry, dep,
                                                infra, loads, before, 0);
    xai::TreeShap explainer;
    auto e = explainer.explain(model, features);
    e.feature_names = built.data.feature_names;
    std::printf("== diagnosis (TreeSHAP) ==\npredicted violation prob %.2f\n%s\n",
                e.prediction, e.to_string(5).c_str());

    // Map the dominant driver to an action on the bottleneck.
    const auto top = e.feature_names[e.top_k(1)[0]];
    const std::uint32_t target = nfv::bottleneck_vnf(dep, dep.chains[0], before);
    nfv::Action action{.kind = nfv::ActionKind::scale_up_cpu, .target_vnf = target,
                       .magnitude = 3.0};
    if (top == "max_cache_pressure" || top == "colocated_vnfs" || top == "max_server_mem")
        action.kind = nfv::ActionKind::migrate_spread;
    else if (top == "max_link_util" || top == "hop_count")
        action.kind = nfv::ActionKind::migrate_colocate;
    else if (top == "total_rules")
        action = {.kind = nfv::ActionKind::reduce_rules, .target_vnf = target,
                  .magnitude = 0.5};
    std::printf("== action ==\n%s (driver: %s)\n\n", action.to_string(dep).c_str(),
                top.c_str());

    if (!nfv::apply_action(dep, infra, action)) {
        std::printf("action infeasible on this deployment\n");
        return 1;
    }

    const auto after = nfv::simulate_epoch(dep, infra, loads);
    std::printf("== verification (re-simulated, same traffic) ==\n");
    std::printf("latency %.2f ms -> violated=%s (was %.2f ms)\n",
                after.chains[0].latency_s * 1e3,
                after.chains[0].sla_violated ? "yes" : "no",
                before.chains[0].latency_s * 1e3);
    return after.chains[0].sla_violated ? 1 : 0;
}
