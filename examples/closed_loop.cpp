// Closed-loop walkthrough: simulate -> serve -> explain -> act -> re-drive.
//
// The full NOC loop through the scenario driver (src/scenario/), not a
// hand-staged incident: a fleet of enterprise-edge deployments is sampled
// and stepped live through three phases — baseline traffic, a 6x flash
// crowd, and the same flash traffic after the served explanation's
// remediation was applied back into the simulator.  Every simulated
// chain-epoch's telemetry is replayed as concurrent ND-JSON `explain`
// clients against a real 2-shard TCP server running in this process; the
// worst violating chain's served attributions pick the action; the
// simulator — not the model — then judges the fix in phase three.
//
// Build & run:  ./build/examples/closed_loop
#include <cstdio>
#include <memory>
#include <string>
#include <thread>

#include "mlcore/forest.hpp"
#include "net/sharded_server.hpp"
#include "scenario/driver.hpp"
#include "serve/service.hpp"
#include "workload/dataset_builder.hpp"

namespace ml = xnfv::ml;
namespace net = xnfv::net;
namespace scn = xnfv::scenario;
namespace serve = xnfv::serve;
namespace wl = xnfv::wl;
namespace xai = xnfv::xai;

int main() {
    // Train the violation model once, on the same workload family the
    // driver will replay.
    ml::Rng rng(31);
    wl::BuildOptions opt;
    opt.num_samples = 2000;
    const auto built = wl::build_dataset(wl::standard_scenarios()[1], opt, rng);
    auto model =
        std::make_shared<ml::RandomForest>(ml::RandomForest::Config{.num_trees = 40});
    model->fit(built.data, rng);

    // A production-shaped server: 2 SO_REUSEPORT shards, degradation ladder
    // and drift detection armed — the flash crowd will exercise both.
    serve::ServiceConfig cfg;
    cfg.method = "tree_shap";
    cfg.seed = 11;
    cfg.degradation.reduced_queue_depth = 32;
    cfg.degradation.baseline_queue_depth = 64;
    cfg.drift_window = 16;
    net::ShardedServerConfig shcfg;
    shcfg.shards = 2;
    net::ShardedServer server(model, xai::BackgroundData(built.data.x, 64), cfg,
                              shcfg);
    std::string error;
    if (!server.start(&error)) {
        std::fprintf(stderr, "server start failed: %s\n", error.c_str());
        return 1;
    }
    std::thread loop([&server] { server.run(); });

    scn::DriverConfig dcfg;
    dcfg.port = server.port();
    dcfg.scenario = "enterprise_edge";
    dcfg.seed = 2020;
    dcfg.deployments = 2;
    dcfg.epochs_per_phase = 4;
    dcfg.connections = 16;
    dcfg.interactions = 2;  // top-2 Friedman-H2 pairs ride each response
    dcfg.flash_mult = 6.0;
    const auto report = scn::run_scenario(dcfg);

    server.request_drain();
    loop.join();
    server.stop_services();

    if (!report.transport_ok) {
        std::fprintf(stderr, "transport failure: %s\n", report.error.c_str());
        return 1;
    }

    std::printf("== closed loop (%s, seed %llu) ==\n", report.scenario.c_str(),
                static_cast<unsigned long long>(report.seed));
    for (const auto& p : report.phases)
        std::printf(
            "%-12s  %3zu reqs  p50 %7.1f us  p99 %7.1f us  degraded %3llu  "
            "drift flushes %2llu  SLA violations %3llu\n",
            p.name.c_str(), p.requests, p.latency_p50_us, p.latency_p99_us,
            static_cast<unsigned long long>(p.degraded),
            static_cast<unsigned long long>(p.drift_flushes),
            static_cast<unsigned long long>(p.sla_violations));

    std::printf("\n== remediation (chosen by the served explanation) ==\n");
    if (report.action.empty()) {
        std::printf("no chain violated its SLA during the flash crowd\n");
    } else {
        std::printf("%s (driver: %s, applied: %s)\n", report.action.c_str(),
                    report.action_driver.c_str(),
                    report.action_applied ? "yes" : "no");
        const auto& flash = report.phases[1];
        const auto& fixed = report.phases[2];
        std::printf("flash_crowd had %llu SLA violations; remediated has %llu\n",
                    static_cast<unsigned long long>(flash.sla_violations),
                    static_cast<unsigned long long>(fixed.sla_violations));
    }
    std::printf("\nfull SLO report:\n%s\n", report.to_json().c_str());
    return 0;
}
