file(REMOVE_RECURSE
  "CMakeFiles/whatif_remediation.dir/whatif_remediation.cpp.o"
  "CMakeFiles/whatif_remediation.dir/whatif_remediation.cpp.o.d"
  "whatif_remediation"
  "whatif_remediation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/whatif_remediation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
