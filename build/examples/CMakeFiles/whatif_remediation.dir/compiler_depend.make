# Empty compiler generated dependencies file for whatif_remediation.
# This may be replaced when dependencies are built.
