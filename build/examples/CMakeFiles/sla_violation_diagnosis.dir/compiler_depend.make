# Empty compiler generated dependencies file for sla_violation_diagnosis.
# This may be replaced when dependencies are built.
