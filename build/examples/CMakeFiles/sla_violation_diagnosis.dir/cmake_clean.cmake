file(REMOVE_RECURSE
  "CMakeFiles/sla_violation_diagnosis.dir/sla_violation_diagnosis.cpp.o"
  "CMakeFiles/sla_violation_diagnosis.dir/sla_violation_diagnosis.cpp.o.d"
  "sla_violation_diagnosis"
  "sla_violation_diagnosis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sla_violation_diagnosis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
