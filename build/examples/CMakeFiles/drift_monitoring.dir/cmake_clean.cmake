file(REMOVE_RECURSE
  "CMakeFiles/drift_monitoring.dir/drift_monitoring.cpp.o"
  "CMakeFiles/drift_monitoring.dir/drift_monitoring.cpp.o.d"
  "drift_monitoring"
  "drift_monitoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drift_monitoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
