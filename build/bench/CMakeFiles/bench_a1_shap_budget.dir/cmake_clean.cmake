file(REMOVE_RECURSE
  "CMakeFiles/bench_a1_shap_budget.dir/bench_a1_shap_budget.cpp.o"
  "CMakeFiles/bench_a1_shap_budget.dir/bench_a1_shap_budget.cpp.o.d"
  "bench_a1_shap_budget"
  "bench_a1_shap_budget.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a1_shap_budget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
