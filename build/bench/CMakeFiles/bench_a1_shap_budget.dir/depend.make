# Empty dependencies file for bench_a1_shap_budget.
# This may be replaced when dependencies are built.
