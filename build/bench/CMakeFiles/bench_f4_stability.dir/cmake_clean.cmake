file(REMOVE_RECURSE
  "CMakeFiles/bench_f4_stability.dir/bench_f4_stability.cpp.o"
  "CMakeFiles/bench_f4_stability.dir/bench_f4_stability.cpp.o.d"
  "bench_f4_stability"
  "bench_f4_stability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f4_stability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
