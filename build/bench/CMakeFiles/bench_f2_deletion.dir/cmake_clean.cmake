file(REMOVE_RECURSE
  "CMakeFiles/bench_f2_deletion.dir/bench_f2_deletion.cpp.o"
  "CMakeFiles/bench_f2_deletion.dir/bench_f2_deletion.cpp.o.d"
  "bench_f2_deletion"
  "bench_f2_deletion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f2_deletion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
