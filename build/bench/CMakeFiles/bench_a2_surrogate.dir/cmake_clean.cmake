file(REMOVE_RECURSE
  "CMakeFiles/bench_a2_surrogate.dir/bench_a2_surrogate.cpp.o"
  "CMakeFiles/bench_a2_surrogate.dir/bench_a2_surrogate.cpp.o.d"
  "bench_a2_surrogate"
  "bench_a2_surrogate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a2_surrogate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
