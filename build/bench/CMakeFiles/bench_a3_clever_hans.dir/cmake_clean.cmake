file(REMOVE_RECURSE
  "CMakeFiles/bench_a3_clever_hans.dir/bench_a3_clever_hans.cpp.o"
  "CMakeFiles/bench_a3_clever_hans.dir/bench_a3_clever_hans.cpp.o.d"
  "bench_a3_clever_hans"
  "bench_a3_clever_hans.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a3_clever_hans.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
