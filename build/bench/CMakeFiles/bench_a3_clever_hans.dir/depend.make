# Empty dependencies file for bench_a3_clever_hans.
# This may be replaced when dependencies are built.
