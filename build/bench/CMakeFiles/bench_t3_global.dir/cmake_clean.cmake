file(REMOVE_RECURSE
  "CMakeFiles/bench_t3_global.dir/bench_t3_global.cpp.o"
  "CMakeFiles/bench_t3_global.dir/bench_t3_global.cpp.o.d"
  "bench_t3_global"
  "bench_t3_global.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t3_global.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
