file(REMOVE_RECURSE
  "CMakeFiles/bench_f1_fidelity.dir/bench_f1_fidelity.cpp.o"
  "CMakeFiles/bench_f1_fidelity.dir/bench_f1_fidelity.cpp.o.d"
  "bench_f1_fidelity"
  "bench_f1_fidelity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f1_fidelity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
