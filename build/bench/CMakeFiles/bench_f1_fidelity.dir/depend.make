# Empty dependencies file for bench_f1_fidelity.
# This may be replaced when dependencies are built.
