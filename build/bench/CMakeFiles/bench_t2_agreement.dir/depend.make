# Empty dependencies file for bench_t2_agreement.
# This may be replaced when dependencies are built.
