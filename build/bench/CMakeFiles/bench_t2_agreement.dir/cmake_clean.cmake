file(REMOVE_RECURSE
  "CMakeFiles/bench_t2_agreement.dir/bench_t2_agreement.cpp.o"
  "CMakeFiles/bench_t2_agreement.dir/bench_t2_agreement.cpp.o.d"
  "bench_t2_agreement"
  "bench_t2_agreement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t2_agreement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
