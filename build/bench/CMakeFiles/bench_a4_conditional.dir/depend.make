# Empty dependencies file for bench_a4_conditional.
# This may be replaced when dependencies are built.
