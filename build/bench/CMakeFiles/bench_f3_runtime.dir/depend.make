# Empty dependencies file for bench_f3_runtime.
# This may be replaced when dependencies are built.
