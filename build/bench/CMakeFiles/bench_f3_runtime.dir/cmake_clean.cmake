file(REMOVE_RECURSE
  "CMakeFiles/bench_f3_runtime.dir/bench_f3_runtime.cpp.o"
  "CMakeFiles/bench_f3_runtime.dir/bench_f3_runtime.cpp.o.d"
  "bench_f3_runtime"
  "bench_f3_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f3_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
