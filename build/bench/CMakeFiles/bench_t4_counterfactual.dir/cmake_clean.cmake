file(REMOVE_RECURSE
  "CMakeFiles/bench_t4_counterfactual.dir/bench_t4_counterfactual.cpp.o"
  "CMakeFiles/bench_t4_counterfactual.dir/bench_t4_counterfactual.cpp.o.d"
  "bench_t4_counterfactual"
  "bench_t4_counterfactual.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t4_counterfactual.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
