file(REMOVE_RECURSE
  "CMakeFiles/bench_t5_closed_loop.dir/bench_t5_closed_loop.cpp.o"
  "CMakeFiles/bench_t5_closed_loop.dir/bench_t5_closed_loop.cpp.o.d"
  "bench_t5_closed_loop"
  "bench_t5_closed_loop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t5_closed_loop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
