# Empty dependencies file for bench_t5_closed_loop.
# This may be replaced when dependencies are built.
