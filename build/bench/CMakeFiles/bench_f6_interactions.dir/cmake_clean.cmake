file(REMOVE_RECURSE
  "CMakeFiles/bench_f6_interactions.dir/bench_f6_interactions.cpp.o"
  "CMakeFiles/bench_f6_interactions.dir/bench_f6_interactions.cpp.o.d"
  "bench_f6_interactions"
  "bench_f6_interactions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f6_interactions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
