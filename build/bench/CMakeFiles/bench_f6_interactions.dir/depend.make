# Empty dependencies file for bench_f6_interactions.
# This may be replaced when dependencies are built.
