file(REMOVE_RECURSE
  "CMakeFiles/bench_f5_pdp.dir/bench_f5_pdp.cpp.o"
  "CMakeFiles/bench_f5_pdp.dir/bench_f5_pdp.cpp.o.d"
  "bench_f5_pdp"
  "bench_f5_pdp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f5_pdp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
