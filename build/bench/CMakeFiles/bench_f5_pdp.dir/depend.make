# Empty dependencies file for bench_f5_pdp.
# This may be replaced when dependencies are built.
