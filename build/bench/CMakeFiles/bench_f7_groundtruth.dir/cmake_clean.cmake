file(REMOVE_RECURSE
  "CMakeFiles/bench_f7_groundtruth.dir/bench_f7_groundtruth.cpp.o"
  "CMakeFiles/bench_f7_groundtruth.dir/bench_f7_groundtruth.cpp.o.d"
  "bench_f7_groundtruth"
  "bench_f7_groundtruth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f7_groundtruth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
