file(REMOVE_RECURSE
  "CMakeFiles/xnfv_cli.dir/xnfv_cli.cpp.o"
  "CMakeFiles/xnfv_cli.dir/xnfv_cli.cpp.o.d"
  "xnfv_cli"
  "xnfv_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xnfv_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
