# Empty dependencies file for xnfv_cli.
# This may be replaced when dependencies are built.
