# Empty compiler generated dependencies file for test_infra_placement.
# This may be replaced when dependencies are built.
