file(REMOVE_RECURSE
  "CMakeFiles/test_infra_placement.dir/test_infra_placement.cpp.o"
  "CMakeFiles/test_infra_placement.dir/test_infra_placement.cpp.o.d"
  "test_infra_placement"
  "test_infra_placement.pdb"
  "test_infra_placement[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_infra_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
