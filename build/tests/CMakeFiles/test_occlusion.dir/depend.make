# Empty dependencies file for test_occlusion.
# This may be replaced when dependencies are built.
