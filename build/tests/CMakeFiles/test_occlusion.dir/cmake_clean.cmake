file(REMOVE_RECURSE
  "CMakeFiles/test_occlusion.dir/test_occlusion.cpp.o"
  "CMakeFiles/test_occlusion.dir/test_occlusion.cpp.o.d"
  "test_occlusion"
  "test_occlusion.pdb"
  "test_occlusion[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_occlusion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
