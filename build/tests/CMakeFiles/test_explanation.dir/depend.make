# Empty dependencies file for test_explanation.
# This may be replaced when dependencies are built.
