file(REMOVE_RECURSE
  "CMakeFiles/test_explanation.dir/test_explanation.cpp.o"
  "CMakeFiles/test_explanation.dir/test_explanation.cpp.o.d"
  "test_explanation"
  "test_explanation.pdb"
  "test_explanation[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_explanation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
