file(REMOVE_RECURSE
  "CMakeFiles/test_remediation.dir/test_remediation.cpp.o"
  "CMakeFiles/test_remediation.dir/test_remediation.cpp.o.d"
  "test_remediation"
  "test_remediation.pdb"
  "test_remediation[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_remediation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
