# Empty dependencies file for test_lime.
# This may be replaced when dependencies are built.
