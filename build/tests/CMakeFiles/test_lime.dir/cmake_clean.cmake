file(REMOVE_RECURSE
  "CMakeFiles/test_lime.dir/test_lime.cpp.o"
  "CMakeFiles/test_lime.dir/test_lime.cpp.o.d"
  "test_lime"
  "test_lime.pdb"
  "test_lime[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
