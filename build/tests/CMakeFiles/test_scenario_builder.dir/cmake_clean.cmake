file(REMOVE_RECURSE
  "CMakeFiles/test_scenario_builder.dir/test_scenario_builder.cpp.o"
  "CMakeFiles/test_scenario_builder.dir/test_scenario_builder.cpp.o.d"
  "test_scenario_builder"
  "test_scenario_builder.pdb"
  "test_scenario_builder[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_scenario_builder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
