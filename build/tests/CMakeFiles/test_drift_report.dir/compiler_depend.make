# Empty compiler generated dependencies file for test_drift_report.
# This may be replaced when dependencies are built.
