file(REMOVE_RECURSE
  "CMakeFiles/test_drift_report.dir/test_drift_report.cpp.o"
  "CMakeFiles/test_drift_report.dir/test_drift_report.cpp.o.d"
  "test_drift_report"
  "test_drift_report.pdb"
  "test_drift_report[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_drift_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
