file(REMOVE_RECURSE
  "CMakeFiles/test_sampling_shapley.dir/test_sampling_shapley.cpp.o"
  "CMakeFiles/test_sampling_shapley.dir/test_sampling_shapley.cpp.o.d"
  "test_sampling_shapley"
  "test_sampling_shapley.pdb"
  "test_sampling_shapley[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sampling_shapley.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
