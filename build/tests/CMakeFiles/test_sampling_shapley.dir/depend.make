# Empty dependencies file for test_sampling_shapley.
# This may be replaced when dependencies are built.
