file(REMOVE_RECURSE
  "CMakeFiles/test_pdp.dir/test_pdp.cpp.o"
  "CMakeFiles/test_pdp.dir/test_pdp.cpp.o.d"
  "test_pdp"
  "test_pdp.pdb"
  "test_pdp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pdp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
