
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_parallel_determinism.cpp" "tests/CMakeFiles/test_parallel_determinism.dir/test_parallel_determinism.cpp.o" "gcc" "tests/CMakeFiles/test_parallel_determinism.dir/test_parallel_determinism.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/xnfv_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/xnfv_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/nfv/CMakeFiles/xnfv_nfv.dir/DependInfo.cmake"
  "/root/repo/build/src/mlcore/CMakeFiles/xnfv_mlcore.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
