file(REMOVE_RECURSE
  "CMakeFiles/test_tree_shap.dir/test_tree_shap.cpp.o"
  "CMakeFiles/test_tree_shap.dir/test_tree_shap.cpp.o.d"
  "test_tree_shap"
  "test_tree_shap.pdb"
  "test_tree_shap[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tree_shap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
