# Empty compiler generated dependencies file for test_tree_shap.
# This may be replaced when dependencies are built.
