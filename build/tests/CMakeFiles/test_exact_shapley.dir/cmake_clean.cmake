file(REMOVE_RECURSE
  "CMakeFiles/test_exact_shapley.dir/test_exact_shapley.cpp.o"
  "CMakeFiles/test_exact_shapley.dir/test_exact_shapley.cpp.o.d"
  "test_exact_shapley"
  "test_exact_shapley.pdb"
  "test_exact_shapley[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_exact_shapley.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
