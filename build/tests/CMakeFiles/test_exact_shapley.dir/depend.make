# Empty dependencies file for test_exact_shapley.
# This may be replaced when dependencies are built.
