# Empty compiler generated dependencies file for test_counterfactual.
# This may be replaced when dependencies are built.
