file(REMOVE_RECURSE
  "CMakeFiles/test_counterfactual.dir/test_counterfactual.cpp.o"
  "CMakeFiles/test_counterfactual.dir/test_counterfactual.cpp.o.d"
  "test_counterfactual"
  "test_counterfactual.pdb"
  "test_counterfactual[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_counterfactual.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
