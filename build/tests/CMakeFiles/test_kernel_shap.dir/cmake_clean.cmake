file(REMOVE_RECURSE
  "CMakeFiles/test_kernel_shap.dir/test_kernel_shap.cpp.o"
  "CMakeFiles/test_kernel_shap.dir/test_kernel_shap.cpp.o.d"
  "test_kernel_shap"
  "test_kernel_shap.pdb"
  "test_kernel_shap[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kernel_shap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
