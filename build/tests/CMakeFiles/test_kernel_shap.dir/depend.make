# Empty dependencies file for test_kernel_shap.
# This may be replaced when dependencies are built.
