file(REMOVE_RECURSE
  "CMakeFiles/xnfv_nfv.dir/chain.cpp.o"
  "CMakeFiles/xnfv_nfv.dir/chain.cpp.o.d"
  "CMakeFiles/xnfv_nfv.dir/infrastructure.cpp.o"
  "CMakeFiles/xnfv_nfv.dir/infrastructure.cpp.o.d"
  "CMakeFiles/xnfv_nfv.dir/placement.cpp.o"
  "CMakeFiles/xnfv_nfv.dir/placement.cpp.o.d"
  "CMakeFiles/xnfv_nfv.dir/queueing.cpp.o"
  "CMakeFiles/xnfv_nfv.dir/queueing.cpp.o.d"
  "CMakeFiles/xnfv_nfv.dir/remediation.cpp.o"
  "CMakeFiles/xnfv_nfv.dir/remediation.cpp.o.d"
  "CMakeFiles/xnfv_nfv.dir/simulator.cpp.o"
  "CMakeFiles/xnfv_nfv.dir/simulator.cpp.o.d"
  "CMakeFiles/xnfv_nfv.dir/telemetry.cpp.o"
  "CMakeFiles/xnfv_nfv.dir/telemetry.cpp.o.d"
  "CMakeFiles/xnfv_nfv.dir/vnf.cpp.o"
  "CMakeFiles/xnfv_nfv.dir/vnf.cpp.o.d"
  "libxnfv_nfv.a"
  "libxnfv_nfv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xnfv_nfv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
