file(REMOVE_RECURSE
  "libxnfv_nfv.a"
)
