
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nfv/chain.cpp" "src/nfv/CMakeFiles/xnfv_nfv.dir/chain.cpp.o" "gcc" "src/nfv/CMakeFiles/xnfv_nfv.dir/chain.cpp.o.d"
  "/root/repo/src/nfv/infrastructure.cpp" "src/nfv/CMakeFiles/xnfv_nfv.dir/infrastructure.cpp.o" "gcc" "src/nfv/CMakeFiles/xnfv_nfv.dir/infrastructure.cpp.o.d"
  "/root/repo/src/nfv/placement.cpp" "src/nfv/CMakeFiles/xnfv_nfv.dir/placement.cpp.o" "gcc" "src/nfv/CMakeFiles/xnfv_nfv.dir/placement.cpp.o.d"
  "/root/repo/src/nfv/queueing.cpp" "src/nfv/CMakeFiles/xnfv_nfv.dir/queueing.cpp.o" "gcc" "src/nfv/CMakeFiles/xnfv_nfv.dir/queueing.cpp.o.d"
  "/root/repo/src/nfv/remediation.cpp" "src/nfv/CMakeFiles/xnfv_nfv.dir/remediation.cpp.o" "gcc" "src/nfv/CMakeFiles/xnfv_nfv.dir/remediation.cpp.o.d"
  "/root/repo/src/nfv/simulator.cpp" "src/nfv/CMakeFiles/xnfv_nfv.dir/simulator.cpp.o" "gcc" "src/nfv/CMakeFiles/xnfv_nfv.dir/simulator.cpp.o.d"
  "/root/repo/src/nfv/telemetry.cpp" "src/nfv/CMakeFiles/xnfv_nfv.dir/telemetry.cpp.o" "gcc" "src/nfv/CMakeFiles/xnfv_nfv.dir/telemetry.cpp.o.d"
  "/root/repo/src/nfv/vnf.cpp" "src/nfv/CMakeFiles/xnfv_nfv.dir/vnf.cpp.o" "gcc" "src/nfv/CMakeFiles/xnfv_nfv.dir/vnf.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mlcore/CMakeFiles/xnfv_mlcore.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
