# Empty compiler generated dependencies file for xnfv_nfv.
# This may be replaced when dependencies are built.
