file(REMOVE_RECURSE
  "libxnfv_mlcore.a"
)
