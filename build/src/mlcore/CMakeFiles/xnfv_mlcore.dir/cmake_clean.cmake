file(REMOVE_RECURSE
  "CMakeFiles/xnfv_mlcore.dir/__/core/parallel.cpp.o"
  "CMakeFiles/xnfv_mlcore.dir/__/core/parallel.cpp.o.d"
  "CMakeFiles/xnfv_mlcore.dir/crossval.cpp.o"
  "CMakeFiles/xnfv_mlcore.dir/crossval.cpp.o.d"
  "CMakeFiles/xnfv_mlcore.dir/dataset.cpp.o"
  "CMakeFiles/xnfv_mlcore.dir/dataset.cpp.o.d"
  "CMakeFiles/xnfv_mlcore.dir/forest.cpp.o"
  "CMakeFiles/xnfv_mlcore.dir/forest.cpp.o.d"
  "CMakeFiles/xnfv_mlcore.dir/gbt.cpp.o"
  "CMakeFiles/xnfv_mlcore.dir/gbt.cpp.o.d"
  "CMakeFiles/xnfv_mlcore.dir/linear.cpp.o"
  "CMakeFiles/xnfv_mlcore.dir/linear.cpp.o.d"
  "CMakeFiles/xnfv_mlcore.dir/matrix.cpp.o"
  "CMakeFiles/xnfv_mlcore.dir/matrix.cpp.o.d"
  "CMakeFiles/xnfv_mlcore.dir/metrics.cpp.o"
  "CMakeFiles/xnfv_mlcore.dir/metrics.cpp.o.d"
  "CMakeFiles/xnfv_mlcore.dir/mlp.cpp.o"
  "CMakeFiles/xnfv_mlcore.dir/mlp.cpp.o.d"
  "CMakeFiles/xnfv_mlcore.dir/model.cpp.o"
  "CMakeFiles/xnfv_mlcore.dir/model.cpp.o.d"
  "CMakeFiles/xnfv_mlcore.dir/preprocess.cpp.o"
  "CMakeFiles/xnfv_mlcore.dir/preprocess.cpp.o.d"
  "CMakeFiles/xnfv_mlcore.dir/rng.cpp.o"
  "CMakeFiles/xnfv_mlcore.dir/rng.cpp.o.d"
  "CMakeFiles/xnfv_mlcore.dir/serialize.cpp.o"
  "CMakeFiles/xnfv_mlcore.dir/serialize.cpp.o.d"
  "CMakeFiles/xnfv_mlcore.dir/tree.cpp.o"
  "CMakeFiles/xnfv_mlcore.dir/tree.cpp.o.d"
  "libxnfv_mlcore.a"
  "libxnfv_mlcore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xnfv_mlcore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
