
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/parallel.cpp" "src/mlcore/CMakeFiles/xnfv_mlcore.dir/__/core/parallel.cpp.o" "gcc" "src/mlcore/CMakeFiles/xnfv_mlcore.dir/__/core/parallel.cpp.o.d"
  "/root/repo/src/mlcore/crossval.cpp" "src/mlcore/CMakeFiles/xnfv_mlcore.dir/crossval.cpp.o" "gcc" "src/mlcore/CMakeFiles/xnfv_mlcore.dir/crossval.cpp.o.d"
  "/root/repo/src/mlcore/dataset.cpp" "src/mlcore/CMakeFiles/xnfv_mlcore.dir/dataset.cpp.o" "gcc" "src/mlcore/CMakeFiles/xnfv_mlcore.dir/dataset.cpp.o.d"
  "/root/repo/src/mlcore/forest.cpp" "src/mlcore/CMakeFiles/xnfv_mlcore.dir/forest.cpp.o" "gcc" "src/mlcore/CMakeFiles/xnfv_mlcore.dir/forest.cpp.o.d"
  "/root/repo/src/mlcore/gbt.cpp" "src/mlcore/CMakeFiles/xnfv_mlcore.dir/gbt.cpp.o" "gcc" "src/mlcore/CMakeFiles/xnfv_mlcore.dir/gbt.cpp.o.d"
  "/root/repo/src/mlcore/linear.cpp" "src/mlcore/CMakeFiles/xnfv_mlcore.dir/linear.cpp.o" "gcc" "src/mlcore/CMakeFiles/xnfv_mlcore.dir/linear.cpp.o.d"
  "/root/repo/src/mlcore/matrix.cpp" "src/mlcore/CMakeFiles/xnfv_mlcore.dir/matrix.cpp.o" "gcc" "src/mlcore/CMakeFiles/xnfv_mlcore.dir/matrix.cpp.o.d"
  "/root/repo/src/mlcore/metrics.cpp" "src/mlcore/CMakeFiles/xnfv_mlcore.dir/metrics.cpp.o" "gcc" "src/mlcore/CMakeFiles/xnfv_mlcore.dir/metrics.cpp.o.d"
  "/root/repo/src/mlcore/mlp.cpp" "src/mlcore/CMakeFiles/xnfv_mlcore.dir/mlp.cpp.o" "gcc" "src/mlcore/CMakeFiles/xnfv_mlcore.dir/mlp.cpp.o.d"
  "/root/repo/src/mlcore/model.cpp" "src/mlcore/CMakeFiles/xnfv_mlcore.dir/model.cpp.o" "gcc" "src/mlcore/CMakeFiles/xnfv_mlcore.dir/model.cpp.o.d"
  "/root/repo/src/mlcore/preprocess.cpp" "src/mlcore/CMakeFiles/xnfv_mlcore.dir/preprocess.cpp.o" "gcc" "src/mlcore/CMakeFiles/xnfv_mlcore.dir/preprocess.cpp.o.d"
  "/root/repo/src/mlcore/rng.cpp" "src/mlcore/CMakeFiles/xnfv_mlcore.dir/rng.cpp.o" "gcc" "src/mlcore/CMakeFiles/xnfv_mlcore.dir/rng.cpp.o.d"
  "/root/repo/src/mlcore/serialize.cpp" "src/mlcore/CMakeFiles/xnfv_mlcore.dir/serialize.cpp.o" "gcc" "src/mlcore/CMakeFiles/xnfv_mlcore.dir/serialize.cpp.o.d"
  "/root/repo/src/mlcore/tree.cpp" "src/mlcore/CMakeFiles/xnfv_mlcore.dir/tree.cpp.o" "gcc" "src/mlcore/CMakeFiles/xnfv_mlcore.dir/tree.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
