# Empty compiler generated dependencies file for xnfv_mlcore.
# This may be replaced when dependencies are built.
