# Empty compiler generated dependencies file for xnfv_core.
# This may be replaced when dependencies are built.
