file(REMOVE_RECURSE
  "libxnfv_core.a"
)
