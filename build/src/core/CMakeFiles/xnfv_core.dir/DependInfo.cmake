
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/aggregate.cpp" "src/core/CMakeFiles/xnfv_core.dir/aggregate.cpp.o" "gcc" "src/core/CMakeFiles/xnfv_core.dir/aggregate.cpp.o.d"
  "/root/repo/src/core/counterfactual.cpp" "src/core/CMakeFiles/xnfv_core.dir/counterfactual.cpp.o" "gcc" "src/core/CMakeFiles/xnfv_core.dir/counterfactual.cpp.o.d"
  "/root/repo/src/core/drift.cpp" "src/core/CMakeFiles/xnfv_core.dir/drift.cpp.o" "gcc" "src/core/CMakeFiles/xnfv_core.dir/drift.cpp.o.d"
  "/root/repo/src/core/evaluate.cpp" "src/core/CMakeFiles/xnfv_core.dir/evaluate.cpp.o" "gcc" "src/core/CMakeFiles/xnfv_core.dir/evaluate.cpp.o.d"
  "/root/repo/src/core/exact_shapley.cpp" "src/core/CMakeFiles/xnfv_core.dir/exact_shapley.cpp.o" "gcc" "src/core/CMakeFiles/xnfv_core.dir/exact_shapley.cpp.o.d"
  "/root/repo/src/core/explanation.cpp" "src/core/CMakeFiles/xnfv_core.dir/explanation.cpp.o" "gcc" "src/core/CMakeFiles/xnfv_core.dir/explanation.cpp.o.d"
  "/root/repo/src/core/gradient.cpp" "src/core/CMakeFiles/xnfv_core.dir/gradient.cpp.o" "gcc" "src/core/CMakeFiles/xnfv_core.dir/gradient.cpp.o.d"
  "/root/repo/src/core/interaction.cpp" "src/core/CMakeFiles/xnfv_core.dir/interaction.cpp.o" "gcc" "src/core/CMakeFiles/xnfv_core.dir/interaction.cpp.o.d"
  "/root/repo/src/core/kernel_shap.cpp" "src/core/CMakeFiles/xnfv_core.dir/kernel_shap.cpp.o" "gcc" "src/core/CMakeFiles/xnfv_core.dir/kernel_shap.cpp.o.d"
  "/root/repo/src/core/lime.cpp" "src/core/CMakeFiles/xnfv_core.dir/lime.cpp.o" "gcc" "src/core/CMakeFiles/xnfv_core.dir/lime.cpp.o.d"
  "/root/repo/src/core/occlusion.cpp" "src/core/CMakeFiles/xnfv_core.dir/occlusion.cpp.o" "gcc" "src/core/CMakeFiles/xnfv_core.dir/occlusion.cpp.o.d"
  "/root/repo/src/core/pdp.cpp" "src/core/CMakeFiles/xnfv_core.dir/pdp.cpp.o" "gcc" "src/core/CMakeFiles/xnfv_core.dir/pdp.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/core/CMakeFiles/xnfv_core.dir/report.cpp.o" "gcc" "src/core/CMakeFiles/xnfv_core.dir/report.cpp.o.d"
  "/root/repo/src/core/sampling_shapley.cpp" "src/core/CMakeFiles/xnfv_core.dir/sampling_shapley.cpp.o" "gcc" "src/core/CMakeFiles/xnfv_core.dir/sampling_shapley.cpp.o.d"
  "/root/repo/src/core/surrogate.cpp" "src/core/CMakeFiles/xnfv_core.dir/surrogate.cpp.o" "gcc" "src/core/CMakeFiles/xnfv_core.dir/surrogate.cpp.o.d"
  "/root/repo/src/core/tree_shap.cpp" "src/core/CMakeFiles/xnfv_core.dir/tree_shap.cpp.o" "gcc" "src/core/CMakeFiles/xnfv_core.dir/tree_shap.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mlcore/CMakeFiles/xnfv_mlcore.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
