file(REMOVE_RECURSE
  "CMakeFiles/xnfv_workload.dir/dataset_builder.cpp.o"
  "CMakeFiles/xnfv_workload.dir/dataset_builder.cpp.o.d"
  "CMakeFiles/xnfv_workload.dir/scenario.cpp.o"
  "CMakeFiles/xnfv_workload.dir/scenario.cpp.o.d"
  "CMakeFiles/xnfv_workload.dir/traffic.cpp.o"
  "CMakeFiles/xnfv_workload.dir/traffic.cpp.o.d"
  "libxnfv_workload.a"
  "libxnfv_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xnfv_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
