
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/dataset_builder.cpp" "src/workload/CMakeFiles/xnfv_workload.dir/dataset_builder.cpp.o" "gcc" "src/workload/CMakeFiles/xnfv_workload.dir/dataset_builder.cpp.o.d"
  "/root/repo/src/workload/scenario.cpp" "src/workload/CMakeFiles/xnfv_workload.dir/scenario.cpp.o" "gcc" "src/workload/CMakeFiles/xnfv_workload.dir/scenario.cpp.o.d"
  "/root/repo/src/workload/traffic.cpp" "src/workload/CMakeFiles/xnfv_workload.dir/traffic.cpp.o" "gcc" "src/workload/CMakeFiles/xnfv_workload.dir/traffic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nfv/CMakeFiles/xnfv_nfv.dir/DependInfo.cmake"
  "/root/repo/build/src/mlcore/CMakeFiles/xnfv_mlcore.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
