file(REMOVE_RECURSE
  "libxnfv_workload.a"
)
