# Empty dependencies file for xnfv_workload.
# This may be replaced when dependencies are built.
