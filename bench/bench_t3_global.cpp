// T3 — Operator-facing global diagnosis by root cause.
//
// Builds one dataset per fault-injection family (CPU starvation, link
// saturation, traffic burst, cache contention, memory pressure), trains the
// SLA classifier, and prints the top telemetry features by mean |SHAP| over
// the *violating, fault-injected* instances.  Expected shape: each family's
// ranking is dominated by the counters causally tied to the injected fault —
// this is the experiment a real testbed cannot run, because only the
// simulator knows the true cause.
#include <cstdio>

#include "bench_util.hpp"
#include "core/aggregate.hpp"
#include "core/tree_shap.hpp"
#include "mlcore/metrics.hpp"

namespace ml = xnfv::ml;
namespace xai = xnfv::xai;
namespace wl = xnfv::wl;
using namespace xnfv::bench;

int main() {
    print_header("T3", "global |SHAP| ranking per injected root cause");

    const std::vector<wl::FaultKind> faults{
        wl::FaultKind::cpu_starvation, wl::FaultKind::link_saturation,
        wl::FaultKind::traffic_burst, wl::FaultKind::cache_contention,
        wl::FaultKind::memory_pressure};

    xai::TreeShap explainer;
    std::uint64_t seed = 500;
    for (const auto fault : faults) {
        ml::Rng rng(seed++);
        wl::BuildOptions opt;
        opt.num_samples = 3000;
        const auto built = wl::build_dataset(wl::fault_scenario(fault), opt, rng);

        auto split = ml::train_test_split(built.data, 0.25, rng);
        const auto forest = train_forest(split.train, seed);
        const double auc =
            ml::roc_auc(split.test.y, forest.predict_batch(split.test.x));

        // Violating + fault-injected rows only.
        std::vector<std::size_t> rows;
        for (std::size_t i = 0; i < built.data.size(); ++i)
            if (built.fault[i] == fault && built.data.y[i] == 1.0) rows.push_back(i);
        if (rows.size() > 80) rows.resize(80);

        std::printf("\nfault=%s  (model AUC %.3f, %zu explained instances)\n",
                    wl::to_string(fault), auc, rows.size());
        print_rule();
        if (rows.empty()) {
            std::printf("  no violating fault-injected instances generated\n");
            continue;
        }
        const auto g = xai::aggregate_explanations(
            explainer, forest, built.data.x.take_rows(rows), built.data.feature_names);
        const auto order = g.ranking();
        for (std::size_t k = 0; k < 5 && k < order.size(); ++k) {
            const std::size_t j = order[k];
            std::printf("  %zu. %-20s mean|phi|=%8.4f mean(phi)=%+8.4f\n", k + 1,
                        g.feature_names[j].c_str(), g.mean_abs[j], g.mean_signed[j]);
        }
    }
    std::printf(
        "\nexpected shape: cpu fault -> cpu counters; link fault -> max_link_util;\n"
        "burst fault -> burstiness_ca2; cache fault -> max_cache_pressure/flows;\n"
        "memory fault -> max_server_mem/flows.\n");
    return 0;
}
