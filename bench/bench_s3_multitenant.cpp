// S3 — multi-tenant fair serving: cold-tenant throughput/latency under a
// 10x hot-tenant flood, and atomic hot-swap publish latency.
//
// Fairness phase.  Two tenants share one explanation service: "prod" (the
// cold tenant, closed-loop serial traffic — one outstanding request, all
// distinct rows so every answer is a real computation) and "hot" (the
// flooding tenant, a 10-deep async window hammering a small repetitive row
// set — the steady-state NFV telemetry shape, quota-capped so it cannot
// occupy the whole admission queue).  The cold tenant's workload is run
// twice on fresh services — solo, then against the flood — and the
// fairness ratio is mixed/solo throughput.  The DWRR queue plus the hot
// quota is what keeps that ratio near 1: without them the hot window fills
// the FIFO and the cold tenant queues behind the entire backlog.
//
// Swap phase.  While light cold traffic flows, the default model is
// re-published N times (retrain -> publish hot swap, alternating two
// forests).  Each model_swap() call fingerprints the incoming model, probes
// the background for the base-value memo, and installs the snapshot with
// one pointer store — the reported p50/p95 is that whole publish path, the
// retrain-to-live latency an operator would see.  Traffic must lose nothing
// while the swaps land.
//
// Output: a fixed-format table and a JSON artifact (default
// BENCH_s3_multitenant.json, overridable via argv[1]).  Exit status gates:
//   * cold-tenant fairness ratio >= 0.8 (XNFV_MT_FAIRNESS_FLOOR overrides);
//   * swap publish p95 <= 500 ms (XNFV_MT_SWAP_P95_MS overrides);
//   * zero cold-tenant rejections and zero dropped requests, always.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "serve/registry.hpp"
#include "serve/service.hpp"

namespace bench = xnfv::bench;
namespace ml = xnfv::ml;
namespace serve = xnfv::serve;
namespace xai = xnfv::xai;

namespace {

double env_double(const char* name, double fallback) {
    const char* raw = std::getenv(name);
    if (!raw || !*raw) return fallback;
    const double value = std::atof(raw);
    return value > 0.0 ? value : fallback;
}

std::size_t env_size(const char* name, std::size_t fallback) {
    const char* raw = std::getenv(name);
    if (!raw || !*raw) return fallback;
    const long value = std::atol(raw);
    return value > 0 ? static_cast<std::size_t>(value) : fallback;
}

double percentile(std::vector<double> samples, double q) {
    if (samples.empty()) return 0.0;
    std::sort(samples.begin(), samples.end());
    const auto idx = static_cast<std::size_t>(
        q * static_cast<double>(samples.size() - 1) + 0.5);
    return samples[std::min(idx, samples.size() - 1)];
}

serve::ExplainRequest make_request(const ml::Dataset& data, std::uint64_t id,
                                   std::size_t row, const std::string& model,
                                   std::uint64_t seed) {
    serve::ExplainRequest er;
    er.id = id;
    const auto x = data.x.row(row % data.size());
    er.features.assign(x.begin(), x.end());
    er.method = "tree_shap";
    er.model = model;
    er.seed = seed;
    return er;
}

struct ColdRun {
    double req_per_sec = 0.0;
    double p50_us = 0.0;
    double p99_us = 0.0;
    std::size_t completed = 0;
    std::size_t rejected = 0;
};

/// Closed-loop serial cold-tenant workload: `n` requests over distinct rows
/// (fresh seeds, so every answer is a genuine computation, never a cache
/// hit), one outstanding at a time — a latency-sensitive caller.
ColdRun run_cold_tenant(serve::ExplanationService& service,
                        const ml::Dataset& data, std::size_t n) {
    ColdRun run;
    std::vector<double> latencies;
    latencies.reserve(n);
    bench::Stopwatch total;
    for (std::size_t i = 0; i < n; ++i) {
        bench::Stopwatch one;
        const auto r = service.explain_sync(
            make_request(data, i + 1, i, "", /*seed=*/1000 + i));
        if (!r.ok) {
            ++run.rejected;
            continue;
        }
        latencies.push_back(one.ms() * 1000.0);
        ++run.completed;
    }
    const double elapsed_ms = total.ms();
    run.req_per_sec = elapsed_ms > 0.0
                          ? 1000.0 * static_cast<double>(run.completed) / elapsed_ms
                          : 0.0;
    run.p50_us = percentile(latencies, 0.50);
    run.p99_us = percentile(latencies, 0.99);
    return run;
}

}  // namespace

int main(int argc, char** argv) {
    bench::print_header(
        "S3", "multi-tenant fairness under flood + hot-swap publish latency");

    const std::size_t cold_requests = env_size("XNFV_MT_COLD_REQUESTS", 300);
    const std::size_t hot_window = env_size("XNFV_MT_HOT_WINDOW", 10);
    const std::size_t swap_count = env_size("XNFV_MT_SWAPS", 40);
    const double fairness_floor = env_double("XNFV_MT_FAIRNESS_FLOOR", 0.8);
    const double swap_p95_cap_ms = env_double("XNFV_MT_SWAP_P95_MS", 500.0);
    const std::string json_path = argc > 1 ? argv[1] : "BENCH_s3_multitenant.json";

    auto task = bench::make_sla_task(800, 2020);
    const auto prod =
        std::make_shared<ml::RandomForest>(bench::train_forest(task.train, 7, 40));
    const auto prod_retrained =
        std::make_shared<ml::RandomForest>(bench::train_forest(task.train, 17, 40));
    const auto hot_model =
        std::make_shared<ml::RandomForest>(bench::train_forest(task.train, 23, 20));
    const xai::BackgroundData background(task.train.x, 128);

    const auto make_config = [&] {
        serve::ServiceConfig cfg;
        cfg.method = "tree_shap";
        cfg.queue_depth = 256;
        cfg.max_batch = 8;
        cfg.max_wait = std::chrono::microseconds(100);
        cfg.cache_capacity = 8192;
        // The hot tenant may hold at most 2 batches' worth of queue slots;
        // everything beyond rejects with quota_exceeded at admission.
        cfg.extra_models.push_back({"hot", hot_model, 1, /*quota=*/16});
        return cfg;
    };

    std::printf("\ncold=%zu serial requests (distinct rows)  hot=%zu-deep window "
                "(repetitive rows)\n\n",
                cold_requests, hot_window);
    std::printf("%-22s %12s %10s %10s %10s\n", "phase", "cold req/s", "p50us",
                "p99us", "rejects");
    bench::print_rule();

    // ---- solo baseline: the hot tenant is registered but silent. ----------
    ColdRun solo;
    {
        serve::ExplanationService service(prod, background, make_config());
        solo = run_cold_tenant(service, task.train, cold_requests);
        service.stop();
    }
    std::printf("%-22s %12.1f %10.1f %10.1f %10zu\n", "solo", solo.req_per_sec,
                solo.p50_us, solo.p99_us, solo.rejected);

    // ---- mixed: same cold workload against the 10x flood. -----------------
    ColdRun mixed;
    std::uint64_t hot_admitted = 0, hot_rejected_quota = 0;
    {
        serve::ExplanationService service(prod, background, make_config());
        std::atomic<bool> stop{false};
        std::thread flood([&] {
            // A windowed closed loop `hot_window` deep: as soon as a response
            // lands another request is submitted, an offered load ~10x the
            // cold tenant's single outstanding request.
            std::vector<std::future<serve::ExplainResponse>> inflight;
            std::uint64_t id = 1 << 20;
            while (!stop.load(std::memory_order_relaxed)) {
                while (inflight.size() < hot_window &&
                       !stop.load(std::memory_order_relaxed)) {
                    auto sub = service.submit(
                        make_request(task.train, id, id % 32, "hot", /*seed=*/0));
                    ++id;
                    if (sub.rejected == serve::ServeError::none)
                        inflight.push_back(std::move(sub.response));
                    else
                        std::this_thread::yield();  // quota bite: back off
                }
                if (!inflight.empty()) {
                    (void)inflight.front().get();
                    inflight.erase(inflight.begin());
                }
            }
            for (auto& f : inflight) (void)f.get();
        });
        mixed = run_cold_tenant(service, task.train, cold_requests);
        stop.store(true);
        flood.join();
        const auto stats = service.stats();
        for (const auto& m : stats.models) {
            if (m.name == "hot") {
                hot_admitted = m.admitted;
                hot_rejected_quota = m.rejected_quota;
            }
        }
        service.stop();
    }
    std::printf("%-22s %12.1f %10.1f %10.1f %10zu\n", "mixed (10x flood)",
                mixed.req_per_sec, mixed.p50_us, mixed.p99_us, mixed.rejected);
    std::printf("  hot tenant: %llu admitted, %llu quota rejections\n",
                static_cast<unsigned long long>(hot_admitted),
                static_cast<unsigned long long>(hot_rejected_quota));

    const double fairness = solo.req_per_sec > 0.0
                                ? mixed.req_per_sec / solo.req_per_sec
                                : 0.0;

    // ---- swap latency: retrain -> publish while traffic flows. ------------
    std::vector<double> swap_us;
    std::size_t swap_traffic_errors = 0;
    {
        serve::ExplanationService service(prod, background, make_config());
        std::atomic<bool> stop{false};
        std::thread traffic([&] {
            std::uint64_t id = 1;
            while (!stop.load(std::memory_order_relaxed)) {
                const auto r = service.explain_sync(
                    make_request(task.train, id, id % 64, "", /*seed=*/id));
                if (!r.ok) ++swap_traffic_errors;
                ++id;
            }
        });
        swap_us.reserve(swap_count);
        for (std::size_t i = 0; i < swap_count; ++i) {
            const auto& next = (i % 2 == 0)
                                   ? prod_retrained
                                   : prod;
            bench::Stopwatch watch;
            if (service.model_swap("", next) != serve::ServeError::none) {
                std::fprintf(stderr, "swap %zu failed\n", i);
                return 1;
            }
            swap_us.push_back(watch.ms() * 1000.0);
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        stop.store(true);
        traffic.join();
        service.stop();
    }
    const double swap_p50_us = percentile(swap_us, 0.50);
    const double swap_p95_us = percentile(swap_us, 0.95);
    std::printf("\nhot swap publish latency over %zu swaps under live traffic: "
                "p50 %.1f us  p95 %.1f us\n",
                swap_count, swap_p50_us, swap_p95_us);

    bench::JsonArtifact artifact("multitenant_fair_serving");
    char obj[512];
    std::snprintf(obj, sizeof(obj),
                  "{\"phase\": \"solo\", \"cold_req_per_sec\": %.1f, "
                  "\"cold_p50_us\": %.1f, \"cold_p99_us\": %.1f, "
                  "\"cold_rejected\": %zu}",
                  solo.req_per_sec, solo.p50_us, solo.p99_us, solo.rejected);
    artifact.add_object(obj);
    std::snprintf(obj, sizeof(obj),
                  "{\"phase\": \"mixed\", \"cold_req_per_sec\": %.1f, "
                  "\"cold_p50_us\": %.1f, \"cold_p99_us\": %.1f, "
                  "\"cold_rejected\": %zu, \"hot_admitted\": %llu, "
                  "\"hot_rejected_quota\": %llu, \"hot_window\": %zu}",
                  mixed.req_per_sec, mixed.p50_us, mixed.p99_us, mixed.rejected,
                  static_cast<unsigned long long>(hot_admitted),
                  static_cast<unsigned long long>(hot_rejected_quota), hot_window);
    artifact.add_object(obj);
    std::snprintf(obj, sizeof(obj),
                  "{\"phase\": \"swap\", \"swaps\": %zu, \"p50_us\": %.1f, "
                  "\"p95_us\": %.1f, \"traffic_errors\": %zu}",
                  swap_count, swap_p50_us, swap_p95_us, swap_traffic_errors);
    artifact.add_object(obj);
    std::snprintf(obj, sizeof(obj),
                  "{\"phase\": \"summary\", \"fairness_ratio\": %.4f, "
                  "\"fairness_floor\": %.2f}",
                  fairness, fairness_floor);
    artifact.add_object(obj);
    if (artifact.write(json_path))
        std::printf("\nwrote %s\n", json_path.c_str());
    else
        std::printf("\nFAILED to write %s\n", json_path.c_str());

    bool pass = true;
    std::printf("cold-tenant fairness ratio (mixed/solo): %.3f  [%s] "
                "(floor %.2f)\n",
                fairness, fairness >= fairness_floor ? "PASS" : "FAIL",
                fairness_floor);
    pass = pass && fairness >= fairness_floor;
    std::printf("swap publish p95: %.1f us  [%s] (cap %.0f ms)\n", swap_p95_us,
                swap_p95_us <= swap_p95_cap_ms * 1000.0 ? "PASS" : "FAIL",
                swap_p95_cap_ms);
    pass = pass && swap_p95_us <= swap_p95_cap_ms * 1000.0;
    const bool no_drops = solo.rejected == 0 && mixed.rejected == 0 &&
                          swap_traffic_errors == 0;
    std::printf("zero cold rejections / zero errors under swap: [%s]\n",
                no_drops ? "PASS" : "FAIL");
    pass = pass && no_drops;
    return pass ? 0 : 1;
}
