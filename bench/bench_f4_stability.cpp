// F4 — Explanation stability.
//
// Two stability notions on the NFV random forest:
//   (a) input stability: mean L2 drift of attributions (and top-3 Jaccard)
//       under epsilon-scaled Gaussian input perturbations;
//   (b) rerun variance: attribution variance across re-runs with different
//       sampling seeds on the *same* input (zero for deterministic methods).
// Expected shape: TreeSHAP most stable (deterministic, exact); KernelSHAP
// close with adequate budget; LIME drifts most and has the largest rerun
// variance at equal budget.
#include <cstdio>

#include "bench_util.hpp"
#include "core/evaluate.hpp"
#include "core/kernel_shap.hpp"
#include "core/lime.hpp"
#include "core/occlusion.hpp"
#include "core/tree_shap.hpp"

namespace ml = xnfv::ml;
namespace xai = xnfv::xai;
using namespace xnfv::bench;

int main() {
    const auto task = make_sla_task(6000, /*seed=*/123);
    const auto forest = train_forest(task.train, /*seed=*/12);
    const xai::BackgroundData background(task.train.x, 96);
    const std::size_t n_instances = 20;

    print_header("F4", "explanation stability on the RF SLA model");

    std::printf("\nseries A: input-perturbation stability, eps sweep "
                "(mean over %zu instances, 6 perturbations each)\n", n_instances);
    print_rule();
    std::printf("%-12s %8s %12s %14s\n", "explainer", "eps", "L2 drift", "top3 jaccard");
    print_rule();

    xai::TreeShap tree_shap;
    for (const double eps : {0.01, 0.05, 0.1}) {
        struct Row {
            const char* name;
            xai::ExplainFn fn;
        };
        xai::KernelShap kernel_shap(background, ml::Rng(41),
                                    xai::KernelShap::Config{.max_coalitions = 600});
        xai::Lime lime(background, ml::Rng(42), xai::Lime::Config{.num_samples = 600});
        xai::Occlusion occlusion(background);
        const std::vector<Row> rows{
            {"tree_shap",
             [&](std::span<const double> x) { return tree_shap.explain(forest, x); }},
            {"kernel_shap",
             [&](std::span<const double> x) { return kernel_shap.explain(forest, x); }},
            {"lime", [&](std::span<const double> x) { return lime.explain(forest, x); }},
            {"occlusion",
             [&](std::span<const double> x) { return occlusion.explain(forest, x); }},
        };
        for (const auto& row : rows) {
            ml::Rng pert_rng(43);
            double drift = 0.0, jac = 0.0;
            for (std::size_t i = 0; i < n_instances; ++i) {
                const auto r = xai::input_stability(row.fn, task.test.x.row(i),
                                                    background, pert_rng, eps, 6);
                drift += r.mean_l2_drift;
                jac += r.mean_topk_jaccard;
            }
            std::printf("%-12s %8.2f %12.4f %14.3f\n", row.name, eps,
                        drift / n_instances, jac / n_instances);
        }
        print_rule();
    }

    std::printf("\nseries B: rerun variance (same input, new sampling seed per run)\n");
    print_rule();
    std::printf("%-20s %16s\n", "explainer", "mean attr var");
    print_rule();
    {
        const auto x0 = task.test.x.row(0);
        ml::Rng seeder(44);
        const double v_tree = xai::rerun_variance(
            [&](std::span<const double> x) { return tree_shap.explain(forest, x); }, x0, 6);
        std::printf("%-20s %16.3e\n", "tree_shap", v_tree);
        for (const std::size_t budget : {150u, 600u, 2400u}) {
            const double v = xai::rerun_variance(
                [&](std::span<const double> x) {
                    xai::KernelShap ks(background, seeder.split(),
                                       xai::KernelShap::Config{.max_coalitions = budget});
                    return ks.explain(forest, x);
                },
                x0, 6);
            std::printf("kernel_shap/%-8zu %16.3e\n", budget, v);
        }
        for (const std::size_t budget : {150u, 600u, 2400u}) {
            const double v = xai::rerun_variance(
                [&](std::span<const double> x) {
                    xai::Lime lime(background, seeder.split(),
                                   xai::Lime::Config{.num_samples = budget});
                    return lime.explain(forest, x);
                },
                x0, 6);
            std::printf("lime/%-15zu %16.3e\n", budget, v);
        }
    }
    std::printf("\nexpected shape: tree_shap variance ~ 0; lime > kernel_shap at equal\n"
                "budget; variance shrinks with budget for both samplers.\n");
    return 0;
}
