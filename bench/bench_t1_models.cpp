// T1 — Predictive performance of ML models on NFV telemetry.
//
// Reproduces the paper's model-comparison table: SLA-violation
// classification (accuracy / F1 / AUC) and latency regression (MAE / RMSE /
// R^2) for a linear baseline, a single tree, random forest, gradient-boosted
// trees, and an MLP.  Expected shape: nonlinear models clearly beat linear;
// RF/GBT lead.
#include <cstdio>
#include <memory>

#include "bench_util.hpp"
#include "mlcore/metrics.hpp"
#include "mlcore/tree.hpp"

namespace ml = xnfv::ml;
namespace nfv = xnfv::nfv;
using namespace xnfv::bench;

namespace {

struct Trained {
    std::string name;
    std::unique_ptr<ml::Model> model;
    double train_ms = 0.0;
};

std::vector<Trained> train_all(const ml::Dataset& train, bool classification) {
    std::vector<Trained> out;
    ml::Rng rng(1234);

    {
        // Linear baselines need standardized inputs (telemetry features span
        // six orders of magnitude); wrap so prediction scales on the fly.
        struct ScaledLinear final : ml::Model {
            std::unique_ptr<ml::Model> inner;
            ml::Standardizer scaler;
            std::string label;
            [[nodiscard]] double predict(std::span<const double> x) const override {
                return inner->predict(scaler.transform_row(x));
            }
            [[nodiscard]] std::size_t num_features() const override {
                return inner->num_features();
            }
            [[nodiscard]] std::string name() const override { return label; }
        };
        Stopwatch sw;
        auto w = std::make_unique<ScaledLinear>();
        w->scaler.fit(train.x);
        const auto scaled = ml::standardize(train, w->scaler);
        if (classification) {
            auto m = std::make_unique<ml::LogisticRegression>(
                ml::LogisticRegression::Config{.learning_rate = 0.5, .epochs = 800});
            m->fit(scaled);
            w->inner = std::move(m);
            w->label = "logistic";
        } else {
            auto m = std::make_unique<ml::LinearRegression>();
            m->fit(scaled);
            w->inner = std::move(m);
            w->label = "linear";
        }
        const std::string label = w->label;
        out.push_back({label, std::move(w), sw.ms()});
    }
    {
        Stopwatch sw;
        auto m = std::make_unique<ml::DecisionTree>(
            ml::DecisionTree::Config{.max_depth = 8});
        m->fit(train);
        out.push_back({"decision_tree", std::move(m), sw.ms()});
    }
    {
        Stopwatch sw;
        auto m = std::make_unique<ml::RandomForest>(
            ml::RandomForest::Config{.num_trees = 80});
        m->fit(train, rng);
        out.push_back({"random_forest", std::move(m), sw.ms()});
    }
    {
        Stopwatch sw;
        auto m = std::make_unique<ml::GradientBoostedTrees>(
            ml::GradientBoostedTrees::Config{.num_rounds = 120});
        m->fit(train, rng);
        out.push_back({"gbt", std::move(m), sw.ms()});
    }
    {
        Stopwatch sw;
        auto m = std::make_unique<ml::Mlp>(
            ml::Mlp::Config{.hidden_layers = {32, 32}, .epochs = 60});
        // MLP needs standardized inputs.
        ml::Standardizer scaler;
        scaler.fit(train.x);
        m->fit(ml::standardize(train, scaler), rng);
        // Wrap so prediction standardizes on the fly.
        struct Wrapped final : ml::Model {
            std::unique_ptr<ml::Mlp> inner;
            ml::Standardizer scaler;
            [[nodiscard]] double predict(std::span<const double> x) const override {
                return inner->predict(scaler.transform_row(x));
            }
            [[nodiscard]] std::size_t num_features() const override {
                return inner->num_features();
            }
            [[nodiscard]] std::string name() const override { return "mlp"; }
        };
        auto w = std::make_unique<Wrapped>();
        w->inner = std::move(m);
        w->scaler = scaler;
        out.push_back({"mlp", std::move(w), sw.ms()});
    }
    return out;
}

}  // namespace

int main() {
    print_header("T1", "model accuracy on NFV telemetry (8k train / 2k test)");

    // --- Classification: SLA violation ------------------------------------
    {
        const auto task = make_sla_task(10000, /*seed=*/42);
        std::printf("task A: SLA-violation classification (positive rate %.2f)\n",
                    task.built.data.positive_rate());
        print_rule();
        std::printf("%-14s %9s %9s %9s %9s %12s\n", "model", "acc", "f1", "auc",
                    "logloss", "train_ms");
        print_rule();
        for (const auto& t : train_all(task.train, /*classification=*/true)) {
            const auto probs = t.model->predict_batch(task.test.x);
            const auto cm = ml::confusion_matrix(task.test.y, probs);
            std::printf("%-14s %9.4f %9.4f %9.4f %9.4f %12.1f\n", t.name.c_str(),
                        cm.accuracy(), cm.f1(), ml::roc_auc(task.test.y, probs),
                        ml::log_loss(task.test.y, probs), t.train_ms);
        }
    }

    // --- Regression: end-to-end latency ------------------------------------
    {
        const auto task = make_sla_task(10000, /*seed=*/43, nfv::LabelKind::latency_ms);
        std::printf("\ntask B: latency regression (ms)\n");
        print_rule();
        std::printf("%-14s %9s %9s %9s %12s\n", "model", "mae", "rmse", "r2",
                    "train_ms");
        print_rule();
        for (const auto& t : train_all(task.train, /*classification=*/false)) {
            const auto preds = t.model->predict_batch(task.test.x);
            std::printf("%-14s %9.4f %9.4f %9.4f %12.1f\n", t.name.c_str(),
                        ml::mae(task.test.y, preds), ml::rmse(task.test.y, preds),
                        ml::r2_score(task.test.y, preds), t.train_ms);
        }
    }
    std::printf("\nexpected shape: tree ensembles > mlp > single tree >> linear.\n");
    return 0;
}
