// A1 (ablation) — KernelSHAP coalition-budget and paired-sampling ablation.
//
// On a model small enough for exact enumeration (d = 12 synthetic with
// interactions, and the NFV forest restricted to instances), measures the
// max-abs error of KernelSHAP vs the exact Shapley values as a function of
// the coalition budget, for paired (antithetic) and independent sampling.
// Expected shape: error decreases with budget and paired sampling sits
// below unpaired at equal budget.
#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "core/exact_shapley.hpp"
#include "core/kernel_shap.hpp"
#include "core/sampling_shapley.hpp"

namespace ml = xnfv::ml;
namespace xai = xnfv::xai;
using namespace xnfv::bench;

namespace {

double max_abs_diff(std::span<const double> a, std::span<const double> b) {
    double m = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) m = std::max(m, std::abs(a[i] - b[i]));
    return m;
}

}  // namespace

int main() {
    const std::size_t d = 12;
    ml::Rng rng(61);
    xnfv::ml::Matrix bgm(32, d);
    for (std::size_t r = 0; r < 32; ++r)
        for (std::size_t c = 0; c < d; ++c) bgm(r, c) = rng.uniform(-1, 1);
    const xai::BackgroundData background(bgm);
    // Third-order interactions and saturating nonlinearities: a model whose
    // Shapley values are NOT pinned down by singleton/complement coalitions,
    // so small budgets must genuinely approximate.
    const ml::LambdaModel model(d, [](std::span<const double> x) {
        double v = std::sin(2.0 * (x[0] + x[5] + x[9]));
        for (std::size_t i = 0; i + 2 < x.size(); i += 3) v += 2.0 * x[i] * x[i + 1] * x[i + 2];
        for (std::size_t i = 0; i + 1 < x.size(); i += 2) v += std::tanh(x[i] + x[i + 1]);
        return v;
    });
    const std::vector<double> x(d, 0.45);

    xai::ExactShapley exact(background);
    const auto truth = exact.explain(model, x);

    print_header("A1", "Shapley-estimator budget ablation vs exact values (d = 12)");
    std::printf("(sampling-permutation column uses the same number of *model\n"
                " evaluations* as the kernel columns: perms = budget*|bg|/(2(d+1)))\n");
    print_rule();
    std::printf("%10s %16s %16s %16s\n", "budget", "err (paired)", "err (unpaired)",
                "err (sampling)");
    print_rule();
    for (const std::size_t budget : {30u, 60u, 120u, 250u, 500u, 1000u, 2000u, 4000u}) {
        auto mean_err = [&](bool paired) {
            double total = 0.0;
            const int reps = 5;
            for (int rep = 0; rep < reps; ++rep) {
                xai::KernelShap ks(background, ml::Rng(100 + rep),
                                   xai::KernelShap::Config{.max_coalitions = budget,
                                                           .paired_sampling = paired});
                total += max_abs_diff(truth.attributions,
                                      ks.explain(model, x).attributions);
            }
            return total / reps;
        };
        auto sampling_err = [&]() {
            const std::size_t evals = budget * 32;
            const std::size_t perms =
                std::max<std::size_t>(1, evals / (2 * (d + 1)));
            double total = 0.0;
            const int reps = 5;
            for (int rep = 0; rep < reps; ++rep) {
                xai::SamplingShapley s(
                    background, ml::Rng(200 + rep),
                    xai::SamplingShapley::Config{.num_permutations = perms});
                total += max_abs_diff(truth.attributions,
                                      s.explain(model, x).attributions);
            }
            return total / reps;
        };
        std::printf("%10zu %16.3e %16.3e %16.3e\n", budget, mean_err(true),
                    mean_err(false), sampling_err());
    }
    std::printf("\nexpected shape: error falls with budget for all three estimators;\n"
                "paired <= unpaired; the regression-based kernel estimators beat the\n"
                "permutation sampler at equal evaluation budget for moderate d.\n");
    return 0;
}
