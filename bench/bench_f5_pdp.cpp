// F5 — Partial dependence of predicted latency on key features.
//
// Series A uses the *config-only* feature set (the admission-control
// setting): with no runtime counters in the model, the PDP of offered load
// must show the convex queueing saturation curve, CPU allocation the
// inverse, and burstiness an upward slope.  Series B uses the full-telemetry
// model to expose the operational knee: predicted latency jumps an order of
// magnitude as max_vnf_cpu_util crosses 1.
//
// (Computing series A on the full-telemetry model would be misleading: PDP
// marginalizes correlated features independently, and holding utilization
// fixed while raising offered load answers a different — and confusing —
// question.  DESIGN.md lists this as a known PDP caveat.)
#include <cstdio>

#include "bench_util.hpp"
#include "core/pdp.hpp"
#include "mlcore/metrics.hpp"
#include "nfv/telemetry.hpp"

namespace ml = xnfv::ml;
namespace nfv = xnfv::nfv;
namespace xai = xnfv::xai;
namespace wl = xnfv::wl;
using namespace xnfv::bench;

namespace {

void print_pdp(const ml::Model& model, const xai::BackgroundData& background,
               nfv::FeatureSet set, const std::string& name) {
    const std::size_t j = nfv::feature_index(set, name);
    const auto pdp =
        xai::partial_dependence(model, background, j, xai::PdpOptions{.grid_points = 12});
    std::printf("\nPDP of %s\n", name.c_str());
    print_rule();
    std::printf("%16s %14s\n", "feature value", "mean latency");
    print_rule();
    for (std::size_t g = 0; g < pdp.grid.size(); ++g)
        std::printf("%16.4g %14.4f\n", pdp.grid[g], pdp.mean[g]);
}

}  // namespace

int main() {
    print_header("F5", "partial dependence of predicted latency (ms)");

    // --- Series A: pre-deployment (config-only) model ----------------------
    {
        // Mix in the burst-fault family so burstiness_ca2 spans a wide range.
        ml::Rng rng(321);
        wl::BuildOptions opt;
        opt.num_samples = 8000;
        opt.label = nfv::LabelKind::latency_ms;
        opt.feature_set = nfv::FeatureSet::config_only;
        auto scenarios = wl::standard_scenarios();
        scenarios.push_back(wl::fault_scenario(wl::FaultKind::traffic_burst));
        const auto built = wl::build_mixed_dataset(scenarios, opt, rng);
        auto split = ml::train_test_split(built.data, 0.25, rng);
        const auto forest = train_forest(split.train, /*seed=*/32);
        const xai::BackgroundData background(split.train.x, 256);

        std::printf("\nseries A: config-only model, R^2 = %.3f\n",
                    ml::r2_score(split.test.y, forest.predict_batch(split.test.x)));
        for (const char* name :
             {"offered_pps", "min_cpu_cores", "burstiness_ca2", "total_rules"})
            print_pdp(forest, background, nfv::FeatureSet::config_only, name);
    }

    // --- Series B: operational (full-telemetry) model -----------------------
    {
        const auto task = make_sla_task(8000, /*seed=*/322, nfv::LabelKind::latency_ms);
        const auto forest = train_forest(task.train, /*seed=*/33);
        const xai::BackgroundData background(task.train.x, 256);
        std::printf("\nseries B: full-telemetry model, R^2 = %.3f\n",
                    ml::r2_score(task.test.y, forest.predict_batch(task.test.x)));
        for (const char* name : {"max_vnf_cpu_util", "max_cache_pressure"})
            print_pdp(forest, background, nfv::FeatureSet::full_telemetry, name);
    }

    std::printf("\nexpected shape: series A rises convexly with offered_pps and\n"
                "burstiness_ca2, falls with min_cpu_cores, rises with total_rules;\n"
                "series B shows the order-of-magnitude knee at max_vnf_cpu_util = 1.\n");
    return 0;
}
