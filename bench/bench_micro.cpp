// Micro-benchmarks of the hot paths (google-benchmark).
//
// These complement the experiment harnesses: tree prediction and TreeSHAP
// dominate the aggregation experiments, the WLS solve dominates KernelSHAP
// and LIME, and simulate_epoch dominates dataset generation.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "core/tree_shap.hpp"
#include "mlcore/matrix.hpp"
#include "nfv/placement.hpp"
#include "nfv/simulator.hpp"

namespace ml = xnfv::ml;
namespace nfv = xnfv::nfv;
namespace xai = xnfv::xai;

namespace {

/// Shared state built once (static locals avoid rebuilding per benchmark).
const xnfv::bench::SlaTask& task() {
    static const auto t = xnfv::bench::make_sla_task(3000, 999);
    return t;
}

const ml::RandomForest& forest() {
    static const auto f = xnfv::bench::train_forest(task().train, 99, 50);
    return f;
}

void BM_TreePredict(benchmark::State& state) {
    const auto& f = forest();
    const auto x = task().test.x.row(0);
    for (auto _ : state) benchmark::DoNotOptimize(f.trees()[0].predict(x));
}
BENCHMARK(BM_TreePredict);

void BM_ForestPredict(benchmark::State& state) {
    const auto& f = forest();
    const auto x = task().test.x.row(0);
    for (auto _ : state) benchmark::DoNotOptimize(f.predict(x));
}
BENCHMARK(BM_ForestPredict);

void BM_TreeShapSingleTree(benchmark::State& state) {
    const auto& f = forest();
    const auto x = task().test.x.row(0);
    std::vector<double> phi(task().test.num_features());
    for (auto _ : state) {
        std::fill(phi.begin(), phi.end(), 0.0);
        benchmark::DoNotOptimize(xai::tree_shap_single(f.trees()[0], x, phi));
    }
}
BENCHMARK(BM_TreeShapSingleTree);

void BM_TreeShapForest(benchmark::State& state) {
    const auto& f = forest();
    const auto x = task().test.x.row(0);
    xai::TreeShap ts;
    for (auto _ : state) benchmark::DoNotOptimize(ts.explain(f, x));
}
BENCHMARK(BM_TreeShapForest);

void BM_WeightedLeastSquares(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    const std::size_t d = 18;
    ml::Rng rng(7);
    ml::Matrix x(n, d);
    std::vector<double> y(n), w(n);
    for (std::size_t r = 0; r < n; ++r) {
        for (std::size_t c = 0; c < d; ++c) x(r, c) = rng.uniform(-1, 1);
        y[r] = rng.uniform(-1, 1);
        w[r] = rng.uniform(0, 1);
    }
    for (auto _ : state)
        benchmark::DoNotOptimize(ml::weighted_least_squares(x, y, w, 1e-6));
}
BENCHMARK(BM_WeightedLeastSquares)->Arg(256)->Arg(1024)->Arg(4096);

void BM_SimulateEpoch(benchmark::State& state) {
    auto infra = nfv::Infrastructure::homogeneous_pop(4, nfv::Server{});
    nfv::Deployment dep;
    for (int c = 0; c < 4; ++c)
        nfv::make_chain(dep, "c" + std::to_string(c),
                        {nfv::VnfType::firewall, nfv::VnfType::ids, nfv::VnfType::nat},
                        2.0);
    ml::Rng rng(1);
    nfv::place(dep, infra, nfv::PlacementStrategy::best_fit, rng);
    const std::vector<nfv::OfferedLoad> loads(
        4, nfv::OfferedLoad{.pps = 8e4, .active_flows = 1e4});
    for (auto _ : state)
        benchmark::DoNotOptimize(nfv::simulate_epoch(dep, infra, loads));
}
BENCHMARK(BM_SimulateEpoch);

void BM_DatasetRow(benchmark::State& state) {
    // End-to-end cost of producing one labelled training row.
    ml::Rng rng(2);
    xnfv::wl::BuildOptions opt;
    opt.num_samples = 32;
    const auto spec = xnfv::wl::standard_scenarios()[0];
    for (auto _ : state) {
        ml::Rng local = rng.split();
        benchmark::DoNotOptimize(xnfv::wl::build_dataset(spec, opt, local));
    }
    state.SetItemsProcessed(state.iterations() * 32);
}
BENCHMARK(BM_DatasetRow);

}  // namespace

BENCHMARK_MAIN();
