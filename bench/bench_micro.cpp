// Micro-benchmarks of the hot paths (google-benchmark).
//
// These complement the experiment harnesses: tree prediction and TreeSHAP
// dominate the aggregation experiments, the WLS solve dominates KernelSHAP
// and LIME, and simulate_epoch dominates dataset generation.
//
// After the google-benchmark suite, main() runs the masked-probe inference
// section: rows/sec of a scalar predict() loop vs the blocked predict_batch
// kernels for each model family, written to BENCH_inference.json (override
// the path with XNFV_BENCH_JSON, the row count with XNFV_INFERENCE_ROWS).
#include <benchmark/benchmark.h>

#include <cstdlib>

#include "bench_util.hpp"
#include "core/parallel.hpp"
#include "core/tree_shap.hpp"
#include "mlcore/matrix.hpp"
#include "nfv/placement.hpp"
#include "nfv/simulator.hpp"

namespace ml = xnfv::ml;
namespace nfv = xnfv::nfv;
namespace xai = xnfv::xai;

namespace {

/// Shared state built once (static locals avoid rebuilding per benchmark).
const xnfv::bench::SlaTask& task() {
    static const auto t = xnfv::bench::make_sla_task(3000, 999);
    return t;
}

const ml::RandomForest& forest() {
    static const auto f = xnfv::bench::train_forest(task().train, 99, 50);
    return f;
}

void BM_TreePredict(benchmark::State& state) {
    const auto& f = forest();
    const auto x = task().test.x.row(0);
    for (auto _ : state) benchmark::DoNotOptimize(f.trees()[0].predict(x));
}
BENCHMARK(BM_TreePredict);

void BM_ForestPredict(benchmark::State& state) {
    const auto& f = forest();
    const auto x = task().test.x.row(0);
    for (auto _ : state) benchmark::DoNotOptimize(f.predict(x));
}
BENCHMARK(BM_ForestPredict);

void BM_TreeShapSingleTree(benchmark::State& state) {
    const auto& f = forest();
    const auto x = task().test.x.row(0);
    std::vector<double> phi(task().test.num_features());
    for (auto _ : state) {
        std::fill(phi.begin(), phi.end(), 0.0);
        benchmark::DoNotOptimize(xai::tree_shap_single(f.trees()[0], x, phi));
    }
}
BENCHMARK(BM_TreeShapSingleTree);

void BM_TreeShapForest(benchmark::State& state) {
    const auto& f = forest();
    const auto x = task().test.x.row(0);
    xai::TreeShap ts;
    for (auto _ : state) benchmark::DoNotOptimize(ts.explain(f, x));
}
BENCHMARK(BM_TreeShapForest);

void BM_WeightedLeastSquares(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    const std::size_t d = 18;
    ml::Rng rng(7);
    ml::Matrix x(n, d);
    std::vector<double> y(n), w(n);
    for (std::size_t r = 0; r < n; ++r) {
        for (std::size_t c = 0; c < d; ++c) x(r, c) = rng.uniform(-1, 1);
        y[r] = rng.uniform(-1, 1);
        w[r] = rng.uniform(0, 1);
    }
    for (auto _ : state)
        benchmark::DoNotOptimize(ml::weighted_least_squares(x, y, w, 1e-6));
}
BENCHMARK(BM_WeightedLeastSquares)->Arg(256)->Arg(1024)->Arg(4096);

void BM_SimulateEpoch(benchmark::State& state) {
    auto infra = nfv::Infrastructure::homogeneous_pop(4, nfv::Server{});
    nfv::Deployment dep;
    for (int c = 0; c < 4; ++c)
        nfv::make_chain(dep, "c" + std::to_string(c),
                        {nfv::VnfType::firewall, nfv::VnfType::ids, nfv::VnfType::nat},
                        2.0);
    ml::Rng rng(1);
    nfv::place(dep, infra, nfv::PlacementStrategy::best_fit, rng);
    const std::vector<nfv::OfferedLoad> loads(
        4, nfv::OfferedLoad{.pps = 8e4, .active_flows = 1e4});
    for (auto _ : state)
        benchmark::DoNotOptimize(nfv::simulate_epoch(dep, infra, loads));
}
BENCHMARK(BM_SimulateEpoch);

void BM_DatasetRow(benchmark::State& state) {
    // End-to-end cost of producing one labelled training row.
    ml::Rng rng(2);
    xnfv::wl::BuildOptions opt;
    opt.num_samples = 32;
    const auto spec = xnfv::wl::standard_scenarios()[0];
    for (auto _ : state) {
        ml::Rng local = rng.split();
        benchmark::DoNotOptimize(xnfv::wl::build_dataset(spec, opt, local));
    }
    state.SetItemsProcessed(state.iterations() * 32);
}
BENCHMARK(BM_DatasetRow);

// --- Masked-probe inference: scalar predict() loop vs blocked kernels -----

/// Best-of-`reps` wall time of fn(), in seconds.
template <typename Fn>
double best_seconds(Fn&& fn, int reps) {
    double best = 1e300;
    for (int i = 0; i < reps; ++i) {
        xnfv::bench::Stopwatch sw;
        fn();
        best = std::min(best, sw.ms() / 1000.0);
    }
    return best;
}

std::size_t env_size(const char* name, std::size_t fallback) {
    const char* v = std::getenv(name);
    if (v == nullptr || *v == '\0') return fallback;
    const long long parsed = std::atoll(v);
    return parsed > 0 ? static_cast<std::size_t>(parsed) : fallback;
}

void run_masked_probe_inference() {
    const std::size_t rows = env_size("XNFV_INFERENCE_ROWS", 16384);
    const std::size_t samples = env_size("XNFV_INFERENCE_SAMPLES", 6000);
    const std::size_t trees = env_size("XNFV_INFERENCE_TREES", 300);
    const std::size_t rounds = env_size("XNFV_INFERENCE_ROUNDS", 500);
    const char* json_env = std::getenv("XNFV_BENCH_JSON");
    const std::string json_path =
        json_env != nullptr && *json_env != '\0' ? json_env : "BENCH_inference.json";

    // Latency regression grows full-depth trees (the SLA-violation labels go
    // pure after a few splits), so the ensembles below reach the multi-MB
    // node footprint where the blocked layout matters.  The small single
    // tree stays in the table as the cache-resident reference point.
    const auto t = xnfv::bench::make_sla_task(samples, 999,
                                              xnfv::nfv::LabelKind::latency_ms);
    const std::size_t d = t.train.num_features();

    // Probe rows drawn from the training distribution's bounding box —
    // representative split traversal without rebuilding a workload dataset.
    ml::Rng rng(4321);
    ml::Matrix x(rows, d);
    const ml::Matrix& ref = t.train.x;
    for (std::size_t r = 0; r < rows; ++r) {
        const auto src = ref.row(rng.uniform_index(ref.rows()));
        for (std::size_t c = 0; c < d; ++c)
            x(r, c) = src[c] * rng.uniform(0.8, 1.2);
    }

    ml::Rng fit_rng(55);
    ml::DecisionTree tree(ml::DecisionTree::Config{.max_depth = 8});
    tree.fit(t.train);
    ml::Rng forest_rng(99);
    ml::RandomForest forest(ml::RandomForest::Config{
        .num_trees = trees,
        .tree = {.max_depth = 14, .min_samples_leaf = 1, .min_samples_split = 2}});
    forest.fit(t.train, forest_rng);
    ml::GradientBoostedTrees gbt(ml::GradientBoostedTrees::Config{
        .num_rounds = rounds,
        .tree = {.max_depth = 8, .min_samples_leaf = 1, .min_samples_split = 2}});
    gbt.fit(t.train, fit_rng);
    ml::LinearRegression linear;
    linear.fit(t.train);
    ml::Mlp mlp(ml::Mlp::Config{.hidden_layers = {32, 32}, .epochs = 10});
    mlp.fit(t.train, fit_rng);
    std::printf("\nforest: %zu trees; gbt: %zu rounds; train %zu rows x %zu features\n",
                forest.trees().size(), gbt.trees().size(), t.train.size(), d);
    const std::vector<std::pair<const char*, const ml::Model*>> models{
        {"tree", &tree},       {"forest", &forest}, {"gbt", &gbt},
        {"linear", &linear},   {"mlp", &mlp},
    };

    // threads=1 isolates the kernel layout effect: the ratio below is the
    // flattened/blocked speedup, not pool parallelism.
    xnfv::set_default_threads(1);
    xnfv::bench::print_header("inference", "masked-probe batch inference (threads=1)");
    std::printf("%-8s %12s %14s %14s %9s\n", "model", "rows", "scalar rows/s",
                "blocked rows/s", "speedup");
    xnfv::bench::print_rule();
    xnfv::bench::JsonArtifact artifact("masked_probe_inference");
    std::vector<double> out(rows);
    const int reps = 5;
    for (const auto& [name, model] : models) {
        const double scalar_s = best_seconds(
            [&] {
                for (std::size_t r = 0; r < rows; ++r) out[r] = model->predict(x.row(r));
            },
            reps);
        const double blocked_s = best_seconds([&] { model->predict_batch(x, out); }, reps);
        const double scalar_rps = static_cast<double>(rows) / scalar_s;
        const double blocked_rps = static_cast<double>(rows) / blocked_s;
        const double speedup = scalar_s / blocked_s;
        std::printf("%-8s %12zu %14.3e %14.3e %8.2fx\n", name, rows, scalar_rps,
                    blocked_rps, speedup);
        char obj[256];
        std::snprintf(obj, sizeof(obj),
                      "{\"model\": \"%s\", \"rows\": %zu, \"scalar_rows_per_sec\": %.6e, "
                      "\"blocked_rows_per_sec\": %.6e, \"speedup\": %.4f}",
                      name, rows, scalar_rps, blocked_rps, speedup);
        artifact.add_object(obj);
    }
    xnfv::set_default_threads(0);  // restore hardware default
    if (artifact.write(json_path))
        std::printf("wrote %s\n", json_path.c_str());
    else
        std::printf("FAILED to write %s\n", json_path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
    ::benchmark::Initialize(&argc, argv);
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
    ::benchmark::RunSpecifiedBenchmarks();
    ::benchmark::Shutdown();
    run_masked_probe_inference();
    return 0;
}
