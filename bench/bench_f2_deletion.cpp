// F2 — Deletion curves and AOPC per explainer.
//
// Deletes features most-relevant-first (mean imputation) and tracks the
// collapse of the RF's violation probability, averaged over confidently
// violating test instances.  Expected shape (Samek et al. protocol):
// Shapley-based rankings collapse the prediction fastest (highest AOPC),
// then LIME, then occlusion, with random deletion worst.
#include <cstdio>

#include "bench_util.hpp"
#include "core/evaluate.hpp"
#include "core/kernel_shap.hpp"
#include "core/lime.hpp"
#include "core/occlusion.hpp"
#include "core/tree_shap.hpp"

namespace ml = xnfv::ml;
namespace xai = xnfv::xai;
using namespace xnfv::bench;

int main() {
    const auto task = make_sla_task(6000, /*seed=*/99);
    const auto forest = train_forest(task.train, /*seed=*/9);
    const xai::BackgroundData background(task.train.x, 96);
    const std::size_t d = task.train.num_features();

    // Confidently violating instances make the curve informative.
    std::vector<std::size_t> chosen;
    for (std::size_t i = 0; i < task.test.size() && chosen.size() < 80; ++i)
        if (forest.predict(task.test.x.row(i)) > 0.7) chosen.push_back(i);

    xai::TreeShap tree_shap;
    xai::KernelShap kernel_shap(background, ml::Rng(31),
                                xai::KernelShap::Config{.max_coalitions = 600});
    xai::Lime lime(background, ml::Rng(32), xai::Lime::Config{.num_samples = 1200});
    xai::Occlusion occlusion(background);
    std::vector<xai::Explainer*> explainers{&tree_shap, &kernel_shap, &lime, &occlusion};

    print_header("F2", "deletion curves (mean prediction after deleting top-k features)");
    std::printf("instances: %zu confident violations; deletion = mean imputation\n\n",
                chosen.size());

    std::printf("%-12s", "k");
    for (std::size_t k = 0; k <= d; k += 3) std::printf("%8zu", k);
    std::printf("%10s\n", "AOPC");
    print_rule();

    for (auto* explainer : explainers) {
        std::vector<double> mean_curve(d + 1, 0.0);
        double aopc = 0.0;
        for (const std::size_t i : chosen) {
            const auto x = task.test.x.row(i);
            const auto e = explainer->explain(forest, x);
            const auto ranking = e.top_k(d);
            const auto curve = xai::deletion_curve(forest, x, ranking, background);
            for (std::size_t k = 0; k <= d; ++k) mean_curve[k] += curve.curve[k];
            aopc += curve.aopc;
        }
        for (double& v : mean_curve) v /= static_cast<double>(chosen.size());
        aopc /= static_cast<double>(chosen.size());
        std::printf("%-12s", explainer->name().c_str());
        for (std::size_t k = 0; k <= d; k += 3) std::printf("%8.3f", mean_curve[k]);
        std::printf("%10.4f\n", aopc);
    }

    // Random-ranking baseline.
    {
        ml::Rng rng(33);
        std::vector<double> mean_curve(d + 1, 0.0);
        double aopc = 0.0;
        for (const std::size_t i : chosen) {
            const auto curve = xai::random_deletion_curve(forest, task.test.x.row(i),
                                                          background, rng, 5);
            for (std::size_t k = 0; k <= d; ++k) mean_curve[k] += curve.curve[k];
            aopc += curve.aopc;
        }
        for (double& v : mean_curve) v /= static_cast<double>(chosen.size());
        aopc /= static_cast<double>(chosen.size());
        std::printf("%-12s", "random");
        for (std::size_t k = 0; k <= d; k += 3) std::printf("%8.3f", mean_curve[k]);
        std::printf("%10.4f\n", aopc);
    }
    std::printf("\nexpected shape: AOPC tree_shap >= kernel_shap > lime/occlusion >> random.\n");
    return 0;
}
