// A4 (ablation) — interventional vs path-dependent (tree-conditional)
// Shapley under correlated telemetry.
//
// The two standard SHAP value functions differ in how they handle absent
// features: interventional (ExactShapley / KernelSHAP) *breaks* feature
// correlations by splicing background values in, while path-dependent
// TreeSHAP follows the training distribution down the tree's cover
// statistics.  NFV telemetry is heavily correlated (offered_pps and
// offered_mbps, chain CPU counters, ...), so the choice matters in exactly
// this domain.
//
// Setup: x1 = x0 + eps-noise with a controllable correlation; the model is a
// forest trained on y = x0 + x1.  Sweep the noise level and report the mean
// |tree_shap - exact_interventional| gap and the share of attribution each
// method gives to x0.  Expected shape: near rho = 1 the methods diverge
// (interventional splits credit by the tree's arbitrary split choices on
// out-of-manifold points; path-dependent follows covers); the gap closes as
// the features decorrelate.
#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "core/exact_shapley.hpp"
#include "core/tree_shap.hpp"

namespace ml = xnfv::ml;
namespace xai = xnfv::xai;
using namespace xnfv::bench;

int main() {
    print_header("A4", "interventional vs path-dependent Shapley under correlation");
    print_rule();
    std::printf("%12s %10s %16s %18s %18s\n", "noise sigma", "corr", "rel |gap|",
                "x0 share (tree)", "x0 share (intv)");
    print_rule();

    for (const double sigma : {0.05, 0.2, 0.5, 1.0, 2.0}) {
        ml::Rng rng(1000 + static_cast<std::uint64_t>(sigma * 100));
        ml::Dataset data;
        data.task = ml::Task::regression;
        double sxy = 0.0, sx = 0.0, sy = 0.0, sxx = 0.0, syy = 0.0;
        const std::size_t n = 1500;
        for (std::size_t i = 0; i < n; ++i) {
            const double a = rng.uniform(-1, 1);
            const double b = a + rng.normal(0.0, sigma);
            data.add(std::vector<double>{a, b}, a + b);
            sx += a; sy += b; sxx += a * a; syy += b * b; sxy += a * b;
        }
        const double dn = static_cast<double>(n);
        const double corr = (sxy / dn - sx / dn * sy / dn) /
                            std::sqrt((sxx / dn - sx / dn * sx / dn) *
                                      (syy / dn - sy / dn * sy / dn));

        ml::RandomForest forest(ml::RandomForest::Config{.num_trees = 30});
        forest.fit(data, rng);

        const xai::BackgroundData background(data.x, 64);
        xai::TreeShap tree_shap;
        xai::ExactShapley interventional(background);

        double gap = 0.0, mass = 0.0, share_tree = 0.0, share_intv = 0.0;
        const int probes = 40;
        for (int rep = 0; rep < probes; ++rep) {
            const double a = rng.uniform(-0.8, 0.8);
            const std::vector<double> x{a, a + rng.normal(0.0, sigma)};
            const auto et = tree_shap.explain(forest, x);
            const auto ei = interventional.explain(forest, x);
            for (std::size_t j = 0; j < 2; ++j) {
                gap += std::abs(et.attributions[j] - ei.attributions[j]) / 2.0;
                mass += (std::abs(et.attributions[j]) + std::abs(ei.attributions[j])) / 4.0;
            }
            const auto share = [](const xai::Explanation& e) {
                const double a0 = std::abs(e.attributions[0]);
                const double a1 = std::abs(e.attributions[1]);
                return a0 + a1 > 0.0 ? a0 / (a0 + a1) : 0.5;
            };
            share_tree += share(et);
            share_intv += share(ei);
        }
        std::printf("%12.2f %10.3f %16.4f %18.3f %18.3f\n", sigma, corr,
                    mass > 0.0 ? gap / mass : 0.0, share_tree / probes,
                    share_intv / probes);
    }
    std::printf("\nexpected shape: the divergence peaks for strongly-but-imperfectly\n"
                "correlated features (the regime where interventional probes leave the\n"
                "data manifold most) and decays as the features decorrelate; at\n"
                "near-duplicate correlation both conventions approach an even split,\n"
                "shrinking the gap again.\n");
    return 0;
}
