// F6 — Feature-interaction structure of the latency model (Friedman's H).
//
// Attribution says which counters matter; the H statistic says which act
// *together*.  On the config-only latency regressor, the physically expected
// couplings are load x capacity (offered_pps x min_cpu_cores — load only
// hurts an under-provisioned chain) and load x per-packet cost
// (offered_pps x total_rules).  Printed: the strongest pairs and selected
// reference pairs.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "core/interaction.hpp"
#include "mlcore/metrics.hpp"

namespace ml = xnfv::ml;
namespace nfv = xnfv::nfv;
namespace xai = xnfv::xai;
using namespace xnfv::bench;

int main() {
    const auto task = make_sla_task(8000, /*seed=*/1111, nfv::LabelKind::latency_ms,
                                    nfv::FeatureSet::config_only);
    const auto forest = train_forest(task.train, /*seed=*/11);
    const xai::BackgroundData background(task.train.x, 256);

    print_header("F6", "pairwise interaction strength (Friedman H^2), config-only latency RF");
    std::printf("model R^2: %.3f; H over %d evaluation points\n\n",
                ml::r2_score(task.test.y, forest.predict_batch(task.test.x)), 48);

    const auto h = xai::interaction_matrix(forest, background,
                                           xai::InteractionOptions{.max_points = 48});

    struct Pair {
        double h2;
        std::size_t j, k;
    };
    std::vector<Pair> pairs;
    for (std::size_t j = 0; j < h.size(); ++j)
        for (std::size_t k = j + 1; k < h.size(); ++k)
            pairs.push_back({h[j][k], j, k});
    std::sort(pairs.begin(), pairs.end(),
              [](const Pair& a, const Pair& b) { return a.h2 > b.h2; });

    print_rule();
    std::printf("%-38s %10s\n", "pair", "H^2");
    print_rule();
    for (std::size_t p = 0; p < 8 && p < pairs.size(); ++p) {
        const std::string name = task.train.feature_names[pairs[p].j] + " x " +
                                 task.train.feature_names[pairs[p].k];
        std::printf("%-38s %10.4f\n", name.c_str(), pairs[p].h2);
    }

    std::printf("\nexpected shape: load x capacity couplings (offered traffic with\n"
                "min_cpu_cores / total_rules / byte_heavy_stages) dominate; pairs of\n"
                "pure demand descriptors interact weakly.\n");
    return 0;
}
