// Shared helpers for the experiment harnesses under bench/.
//
// Each bench binary regenerates one table or figure from the reconstructed
// evaluation (see DESIGN.md section 3) and prints it in a fixed text format
// that EXPERIMENTS.md quotes.  Everything is seeded; rerunning a binary
// reproduces its numbers bit-for-bit.
#pragma once

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "core/explanation.hpp"
#include "mlcore/dataset.hpp"
#include "mlcore/forest.hpp"
#include "mlcore/gbt.hpp"
#include "mlcore/linear.hpp"
#include "mlcore/mlp.hpp"
#include "mlcore/preprocess.hpp"
#include "mlcore/rng.hpp"
#include "workload/dataset_builder.hpp"

namespace xnfv::bench {

/// Wall-clock stopwatch in milliseconds.
class Stopwatch {
public:
    Stopwatch() : start_(clock::now()) {}
    [[nodiscard]] double ms() const {
        return std::chrono::duration<double, std::milli>(clock::now() - start_).count();
    }
    void reset() { start_ = clock::now(); }

private:
    using clock = std::chrono::steady_clock;
    clock::time_point start_;
};

/// Standard train/test split of the mixed-scenario SLA-violation task used
/// by several experiments.
struct SlaTask {
    xnfv::wl::BuiltDataset built;
    xnfv::ml::Dataset train, test;
};

inline SlaTask make_sla_task(std::size_t n, std::uint64_t seed,
                             xnfv::nfv::LabelKind label =
                                 xnfv::nfv::LabelKind::sla_violation,
                             xnfv::nfv::FeatureSet features =
                                 xnfv::nfv::FeatureSet::full_telemetry) {
    xnfv::ml::Rng rng(seed);
    xnfv::wl::BuildOptions opt;
    opt.num_samples = n;
    opt.label = label;
    opt.feature_set = features;
    SlaTask task;
    task.built = xnfv::wl::build_mixed_dataset(xnfv::wl::standard_scenarios(), opt, rng);
    auto split = xnfv::ml::train_test_split(task.built.data, 0.25, rng);
    task.train = std::move(split.train);
    task.test = std::move(split.test);
    return task;
}

/// Trains the standard random forest used as the explained model.
inline xnfv::ml::RandomForest train_forest(const xnfv::ml::Dataset& train,
                                           std::uint64_t seed,
                                           std::size_t num_trees = 80) {
    xnfv::ml::Rng rng(seed);
    xnfv::ml::RandomForest forest(
        xnfv::ml::RandomForest::Config{.num_trees = num_trees});
    forest.fit(train, rng);
    return forest;
}

/// Machine-readable benchmark artifact: a flat JSON document of the form
/// {"benchmark": <name>, "results": [<object>, ...]} where each object is a
/// pre-rendered fragment.  No JSON dependency; just enough structure for CI
/// to archive and diff benchmark numbers across runs.
class JsonArtifact {
public:
    explicit JsonArtifact(std::string name) : name_(std::move(name)) {}

    void add_object(std::string fragment) { objects_.push_back(std::move(fragment)); }

    [[nodiscard]] bool write(const std::string& path) const {
        std::FILE* f = std::fopen(path.c_str(), "w");
        if (!f) return false;
        std::fprintf(f, "{\n  \"benchmark\": \"%s\",\n  \"results\": [\n", name_.c_str());
        for (std::size_t i = 0; i < objects_.size(); ++i)
            std::fprintf(f, "    %s%s\n", objects_[i].c_str(),
                         i + 1 < objects_.size() ? "," : "");
        std::fprintf(f, "  ]\n}\n");
        return std::fclose(f) == 0;
    }

private:
    std::string name_;
    std::vector<std::string> objects_;
};

inline void print_header(const std::string& id, const std::string& title) {
    std::printf("\n=== %s: %s ===\n", id.c_str(), title.c_str());
}

inline void print_rule() {
    std::printf("--------------------------------------------------------------------------\n");
}

}  // namespace xnfv::bench
