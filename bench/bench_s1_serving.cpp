// S1 — online serving: throughput and tail latency of ExplanationService
// versus micro-batch size and cache hit ratio, plus the cold-vs-cache-hit
// speedup that justifies the LRU cache for repetitive NFV telemetry.
//
// Output (fixed format, seeded, reproducible):
//   table 1: req/s and p50/p95/p99 service time for batch in {1, 8, 32} and
//            target hit ratio in {0, 0.5, 0.9} (tree_shap, the production
//            default method);
//   table 2: per-request cold vs cache-hit latency for kernel_shap (the
//            expensive method the cache exists for) with the >= 10x check;
//   final:   the ServiceStats::to_string() report of the last sweep cell.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "serve/service.hpp"

namespace bench = xnfv::bench;
namespace ml = xnfv::ml;
namespace serve = xnfv::serve;
namespace xai = xnfv::xai;

namespace {

serve::ExplainRequest request_for_row(const ml::Dataset& data, std::uint64_t id,
                                      std::size_t row) {
    serve::ExplainRequest r;
    r.id = id;
    const auto x = data.x.row(row);
    r.features.assign(x.begin(), x.end());
    return r;
}

/// Deterministic request stream: a `hit_ratio` fraction of requests revisit
/// a small hot set of rows (the telemetry-repeat pattern); the rest walk
/// fresh rows.
std::vector<std::size_t> make_stream(std::size_t n, double hit_ratio,
                                     std::size_t hot_rows, std::size_t total_rows,
                                     std::uint64_t seed) {
    ml::Rng rng(seed);
    std::vector<std::size_t> rows;
    rows.reserve(n);
    std::size_t next_fresh = hot_rows;
    for (std::size_t i = 0; i < n; ++i) {
        if (rng.uniform() < hit_ratio) {
            rows.push_back(rng.uniform_index(hot_rows));
        } else {
            rows.push_back(next_fresh);
            next_fresh = hot_rows + (next_fresh + 1 - hot_rows) % (total_rows - hot_rows);
        }
    }
    return rows;
}

}  // namespace

int main() {
    bench::print_header("S1", "online serving: throughput, tail latency, cache");

    auto task = bench::make_sla_task(4000, 2020);
    const auto forest =
        std::make_shared<ml::RandomForest>(bench::train_forest(task.train, 7));
    const xai::BackgroundData background(task.train.x, 128);
    const std::size_t requests = 512;

    std::printf("\nmethod=tree_shap  requests=%zu  (req/s, service-time percentiles)\n",
                requests);
    std::printf("%-6s %-5s %10s %9s %9s %9s %9s\n", "batch", "hit%", "req/s",
                "p50us", "p95us", "p99us", "hitrate");
    bench::print_rule();

    std::string last_report;
    for (const std::size_t batch : {std::size_t{1}, std::size_t{8}, std::size_t{32}}) {
        for (const double hit_ratio : {0.0, 0.5, 0.9}) {
            serve::ServiceConfig cfg;
            cfg.method = "tree_shap";
            cfg.queue_depth = requests;
            cfg.max_batch = batch;
            cfg.max_wait = std::chrono::microseconds(100);
            cfg.cache_capacity = 8192;
            serve::ExplanationService service(forest, background, cfg);

            const auto stream =
                make_stream(requests, hit_ratio, 16, task.train.size(), 42);
            bench::Stopwatch watch;
            std::vector<std::future<serve::ExplainResponse>> futures;
            futures.reserve(requests);
            for (std::size_t i = 0; i < stream.size(); ++i) {
                auto sub = service.submit(request_for_row(task.train, i, stream[i]));
                if (sub.rejected != serve::ServeError::none) continue;
                futures.push_back(std::move(sub.response));
            }
            for (auto& f : futures) (void)f.get();
            const double elapsed_ms = watch.ms();

            const auto stats = service.stats();
            std::printf("%-6zu %-5.0f %10.0f %9.1f %9.1f %9.1f %9.3f\n", batch,
                        100.0 * hit_ratio,
                        1000.0 * static_cast<double>(futures.size()) / elapsed_ms,
                        stats.service_us_p50, stats.service_us_p95,
                        stats.service_us_p99, stats.cache_hit_rate());
            last_report = stats.to_string();
        }
    }

    // Cold vs cache-hit, per request, on the method the cache pays for most.
    std::printf("\ncold vs cache-hit (kernel_shap, per-request explain_sync)\n");
    bench::print_rule();
    serve::ServiceConfig cfg;
    cfg.method = "kernel_shap";
    cfg.max_batch = 1;
    cfg.max_wait = std::chrono::microseconds(0);
    serve::ExplanationService service(forest, background, cfg);

    const std::size_t probes = 24;
    bench::Stopwatch watch;
    for (std::size_t i = 0; i < probes; ++i)
        (void)service.explain_sync(request_for_row(task.train, i, i));  // all unique
    const double cold_us = 1000.0 * watch.ms() / static_cast<double>(probes);

    (void)service.explain_sync(request_for_row(task.train, 999, 3));  // prime
    watch.reset();
    for (std::size_t i = 0; i < probes; ++i)
        (void)service.explain_sync(request_for_row(task.train, 1000 + i, 3));
    const double hit_us = 1000.0 * watch.ms() / static_cast<double>(probes);

    const double speedup = hit_us > 0.0 ? cold_us / hit_us : 0.0;
    std::printf("  cold  %10.1f us/req\n", cold_us);
    std::printf("  hit   %10.1f us/req\n", hit_us);
    std::printf("  speedup %8.1fx  [%s] (target >= 10x)\n", speedup,
                speedup >= 10.0 ? "PASS" : "FAIL");

    // Degradation ladder: per-request cost of each rung for kernel_shap —
    // the latency headroom the service buys when it steps overloaded
    // requests down instead of rejecting them.
    std::printf("\ndegradation ladder (kernel_shap, per-request explain cost)\n");
    bench::print_rule();
    const auto x0 = task.train.x.row(5);
    const std::vector<double> probe(x0.begin(), x0.end());
    struct Rung {
        const char* name;
        const char* method;
        double scale;
    };
    for (const Rung rung : {Rung{"full", "kernel_shap", 1.0},
                            Rung{"reduced", "kernel_shap", 0.25},
                            Rung{"baseline", "occlusion", 1.0}}) {
        serve::ExplainerLimits limits;
        limits.budget_scale = rung.scale;
        watch.reset();
        for (std::size_t i = 0; i < probes; ++i)
            (void)serve::make_explainer(rung.method, background, 11, 0, limits)
                ->explain(*forest, probe);
        std::printf("  %-9s %10.1f us/req  (budget %llu)\n", rung.name,
                    1000.0 * watch.ms() / static_cast<double>(probes),
                    static_cast<unsigned long long>(serve::effective_budget(
                        rung.method, rung.scale, background)));
    }

    // Snapshot persistence: cost of writing and reloading a warm cache —
    // what a restart pays to avoid recomputing its hot set.
    std::printf("\ncache snapshot write/read (%zu records)\n", probes + 1);
    bench::print_rule();
    const std::string snap = "/tmp/xnfv_bench_snapshot.bin";
    watch.reset();
    service.stop();  // writes nothing: no snapshot_path configured
    serve::ServiceConfig snap_cfg = cfg;
    snap_cfg.snapshot_path = snap;
    {
        serve::ExplanationService warm(forest, background, snap_cfg);
        for (std::size_t i = 0; i < probes; ++i)
            (void)warm.explain_sync(request_for_row(task.train, i, i));
        watch.reset();
        warm.stop();
        std::printf("  write %10.1f us\n", 1000.0 * watch.ms());
    }
    watch.reset();
    serve::ExplanationService restored(forest, background, snap_cfg);
    const double load_us = 1000.0 * watch.ms();
    std::printf("  load  %10.1f us  (records %llu)\n", load_us,
                static_cast<unsigned long long>(
                    restored.stats().snapshot_records_loaded));
    std::remove(snap.c_str());

    std::printf("\nfinal sweep-cell stats report:\n%s", last_report.c_str());
    return speedup >= 10.0 ? 0 : 1;
}
