// S5 — exact fast-path explainers versus the sampling probes they replace.
//
// The serving router (DESIGN.md §16) sends tree ensembles to the flat-tree
// TreeSHAP kernel and MLPs to analytic Integrated Gradients.  This harness
// quantifies what that buys over the black-box probe methods a router-less
// service would have to run, on the standard SLA-violation task:
//
//   table 1 (tree ensemble): per-explanation model evaluations and wall
//           time, kernel_shap probe vs exact flat TreeSHAP (zero model
//           evaluations — the kernel walks the trees directly);
//   table 2 (MLP): sampling-Shapley probe vs Integrated Gradients, whose
//           analytic gradient costs one forward+backward pass per Riemann
//           step (counted conservatively as 2 forward-equivalents each,
//           plus the two endpoint predictions);
//   gates:  both eval reductions must be >= 10x (exit 1 otherwise), the
//           flat kernel must stay bitwise-identical to the recursive
//           walker, and IG completeness must hold within tolerance.
//
// JSON artifact (default BENCH_s5_fastpath.json, overridable via argv[1])
// for CI to archive and diff.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/flat_tree_shap.hpp"
#include "core/gradient.hpp"
#include "core/tree_shap.hpp"
#include "serve/service.hpp"

namespace bench = xnfv::bench;
namespace ml = xnfv::ml;
namespace serve = xnfv::serve;
namespace xai = xnfv::xai;

namespace {

std::size_t env_size(const char* name, std::size_t fallback) {
    const char* v = std::getenv(name);
    return v != nullptr && *v != '\0'
               ? static_cast<std::size_t>(std::strtoull(v, nullptr, 10))
               : fallback;
}

/// Counts rows pushed through predict/predict_batch (same proxy the serving
/// path uses for its probe_rows metric).
class CountingModel final : public ml::Model {
public:
    explicit CountingModel(const ml::Model& inner) : inner_(inner) {}
    [[nodiscard]] double predict(std::span<const double> x) const override {
        ++evals_;
        return inner_.predict(x);
    }
    void predict_batch(const ml::Matrix& x, std::span<double> out) const override {
        evals_ += x.rows();
        inner_.predict_batch(x, out);
    }
    using ml::Model::predict_batch;
    [[nodiscard]] std::size_t num_features() const override {
        return inner_.num_features();
    }
    [[nodiscard]] std::string name() const override { return inner_.name(); }
    [[nodiscard]] std::uint64_t evals() const noexcept { return evals_; }

private:
    const ml::Model& inner_;
    mutable std::uint64_t evals_ = 0;
};

struct Run {
    double evals_per_explain = 0.0;
    double ms_per_explain = 0.0;
};

Run run_probe(xai::Explainer& explainer, const ml::Model& model,
              const ml::Matrix& rows) {
    const CountingModel counting(model);
    bench::Stopwatch sw;
    for (std::size_t i = 0; i < rows.rows(); ++i)
        (void)explainer.explain(counting, rows.row(i));
    Run r;
    r.ms_per_explain = sw.ms() / static_cast<double>(rows.rows());
    r.evals_per_explain =
        static_cast<double>(counting.evals()) / static_cast<double>(rows.rows());
    return r;
}

}  // namespace

int main(int argc, char** argv) {
    bench::print_header("S5", "exact fast paths vs sampling probes");

    const std::size_t explains = env_size("XNFV_S5_EXPLAINS", 32);
    const double reduction_floor = 10.0;
    const std::string json_path = argc > 1 ? argv[1] : "BENCH_s5_fastpath.json";

    auto task = bench::make_sla_task(2500, 2020);
    const auto forest =
        std::make_shared<ml::RandomForest>(bench::train_forest(task.train, 7, 40));
    ml::Rng mlp_rng(13);
    ml::Mlp mlp(ml::Mlp::Config{.hidden_layers = {24, 24},
                                .activation = ml::Activation::tanh,
                                .epochs = 20});
    mlp.fit(task.train, mlp_rng);
    const xai::BackgroundData background(task.train.x, 128);
    std::vector<std::size_t> picks(explains);
    for (std::size_t i = 0; i < explains; ++i) picks[i] = i % task.test.size();
    const ml::Matrix rows = task.test.x.take_rows(picks);
    const std::size_t d = rows.cols();

    // --- tree ensemble: kernel_shap probe vs exact flat TreeSHAP -----------
    const auto kernel = serve::make_explainer("kernel_shap", background, 11);
    const Run kernel_run = run_probe(*kernel, *forest, rows);

    const auto flat = xai::FlatTreeShap::build(*forest);
    if (flat == nullptr) {
        std::fprintf(stderr, "FAIL: FlatTreeShap::build rejected the forest\n");
        return 1;
    }
    xai::FlatShapScratch scratch;
    xai::TreeShap recursive;
    bench::Stopwatch sw;
    for (std::size_t i = 0; i < rows.rows(); ++i)
        (void)flat->explain(rows.row(i), scratch);
    const double flat_ms = sw.ms() / static_cast<double>(rows.rows());
    // Exactness pin: the speedup must not come from a different answer.
    for (std::size_t i = 0; i < rows.rows(); ++i) {
        const auto a = flat->explain(rows.row(i), scratch);
        const auto b = recursive.explain(*forest, rows.row(i));
        for (std::size_t j = 0; j < d; ++j)
            if (a.attributions[j] != b.attributions[j]) {
                std::fprintf(stderr, "FAIL: flat != recursive at row %zu\n", i);
                return 1;
            }
    }
    // The flat kernel performs zero model evaluations; the reduction is
    // reported against a 1-eval floor so the ratio stays finite.
    const double tree_reduction = kernel_run.evals_per_explain / 1.0;

    std::printf("\ntree ensemble (%zu trees, d=%zu, %zu explanations)\n", 40ul, d,
                rows.rows());
    std::printf("%-24s %14s %12s\n", "explainer", "evals/explain", "ms/explain");
    bench::print_rule();
    std::printf("%-24s %14.1f %12.3f\n", "kernel_shap (probe)",
                kernel_run.evals_per_explain, kernel_run.ms_per_explain);
    std::printf("%-24s %14.1f %12.3f\n", "flat tree_shap (exact)", 0.0, flat_ms);
    std::printf("eval reduction >= %.1fx: %.1fx  speedup %.1fx\n", reduction_floor,
                tree_reduction, kernel_run.ms_per_explain / std::max(flat_ms, 1e-6));

    // --- MLP: sampling-Shapley probe vs analytic Integrated Gradients ------
    const auto sampling = serve::make_explainer("sampling", background, 11);
    const Run sampling_run = run_probe(*sampling, mlp, rows);

    const std::size_t ig_steps = xai::IntegratedGradients::Config{}.steps;
    xai::IntegratedGradients ig(background);
    sw.reset();
    double completeness_gap = 0.0;
    for (std::size_t i = 0; i < rows.rows(); ++i) {
        const auto e = ig.explain(mlp, rows.row(i));
        completeness_gap = std::max(
            completeness_gap, std::abs(e.additive_reconstruction() - e.prediction));
    }
    const double ig_ms = sw.ms() / static_cast<double>(rows.rows());
    // One analytic gradient = forward + backward, billed as 2 forward
    // passes; plus the two endpoint predictions.
    const double ig_equiv_evals = 2.0 * static_cast<double>(ig_steps) + 2.0;
    const double mlp_reduction = sampling_run.evals_per_explain / ig_equiv_evals;

    std::printf("\nmlp (24x24 tanh, d=%zu, %zu explanations)\n", d, rows.rows());
    std::printf("%-24s %14s %12s\n", "explainer", "evals/explain", "ms/explain");
    bench::print_rule();
    std::printf("%-24s %14.1f %12.3f\n", "sampling shapley (probe)",
                sampling_run.evals_per_explain, sampling_run.ms_per_explain);
    std::printf("%-24s %14.1f %12.3f\n", "integrated grads (exact)", ig_equiv_evals,
                ig_ms);
    std::printf("eval reduction >= %.1fx: %.1fx  speedup %.1fx  "
                "completeness gap %.2e\n",
                reduction_floor, mlp_reduction, sampling_run.ms_per_explain / ig_ms,
                completeness_gap);

    char buf[512];
    bench::JsonArtifact artifact("fastpath_vs_probes");
    std::snprintf(buf, sizeof(buf),
                  "{\"path\": \"tree\", \"probe_method\": \"kernel_shap\", "
                  "\"probe_evals_per_explain\": %.1f, \"fast_evals_per_explain\": 0, "
                  "\"eval_reduction\": %.1f, \"probe_ms_per_explain\": %.3f, "
                  "\"fast_ms_per_explain\": %.3f}",
                  kernel_run.evals_per_explain, tree_reduction,
                  kernel_run.ms_per_explain, flat_ms);
    artifact.add_object(buf);
    std::snprintf(buf, sizeof(buf),
                  "{\"path\": \"mlp\", \"probe_method\": \"sampling\", "
                  "\"probe_evals_per_explain\": %.1f, \"fast_evals_per_explain\": %.1f, "
                  "\"eval_reduction\": %.1f, \"probe_ms_per_explain\": %.3f, "
                  "\"fast_ms_per_explain\": %.3f, \"completeness_gap\": %.3e}",
                  sampling_run.evals_per_explain, ig_equiv_evals, mlp_reduction,
                  sampling_run.ms_per_explain, ig_ms, completeness_gap);
    artifact.add_object(buf);
    std::snprintf(buf, sizeof(buf),
                  "{\"gate\": \"eval_reduction\", \"floor\": %.1f, "
                  "\"tree\": %.1f, \"mlp\": %.1f}",
                  reduction_floor, tree_reduction, mlp_reduction);
    artifact.add_object(buf);
    if (!artifact.write(json_path)) {
        std::fprintf(stderr, "FAIL: cannot write %s\n", json_path.c_str());
        return 1;
    }
    std::printf("\nartifact: %s\n", json_path.c_str());

    if (tree_reduction < reduction_floor || mlp_reduction < reduction_floor) {
        std::fprintf(stderr, "FAIL: eval reduction below %.1fx\n", reduction_floor);
        return 1;
    }
    if (completeness_gap > 1e-2) {
        std::fprintf(stderr, "FAIL: IG completeness gap %.3e\n", completeness_gap);
        return 1;
    }
    std::printf("PASS\n");
    return 0;
}
