// S6 — closed-loop scenarios: end-to-end SLO measurement of the scenario
// driver (src/scenario/) against an in-process 2-shard TCP server.
//
// One cell per workload family: the driver samples a fleet, replays its
// simulated telemetry as concurrent explain clients through the three-phase
// loop (baseline / flash_crowd / remediated), applies the served
// explanation's remediation between phases, and reports exact per-phase
// round-trip percentiles plus the server's own degradation / drift / cache
// counters.  After the sweep, the first cell reruns with a fresh server and
// the (trace_hash, responses_hash) pair must reproduce bit-for-bit — the
// determinism contract CI pins on every commit.
//
// Sizes are overridable through XNFV_S6_DEPLOYMENTS, XNFV_S6_EPOCHS,
// XNFV_S6_CONNS, and XNFV_S6_SAMPLES (training rows).  Output: a fixed
// text table and a JSON artifact (default BENCH_s6_scenarios.json,
// overridable via argv[1]).  Exit status is nonzero when a phase loses
// responses, a transport error occurs, or the rerun diverges.
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "net/sharded_server.hpp"
#include "scenario/driver.hpp"
#include "serve/ndjson.hpp"
#include "serve/service.hpp"

namespace bench = xnfv::bench;
namespace ml = xnfv::ml;
namespace net = xnfv::net;
namespace scn = xnfv::scenario;
namespace serve = xnfv::serve;
namespace wl = xnfv::wl;
namespace xai = xnfv::xai;

namespace {

std::size_t env_size(const char* name, std::size_t fallback) {
    const char* raw = std::getenv(name);
    if (!raw || !*raw) return fallback;
    const long value = std::atol(raw);
    return value > 0 ? static_cast<std::size_t>(value) : fallback;
}

struct Cell {
    std::string scenario;
    scn::DriverReport report;
    double wall_ms = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
    const std::string json_path = argc > 1 ? argv[1] : "BENCH_s6_scenarios.json";
    const std::size_t samples = env_size("XNFV_S6_SAMPLES", 1200);
    const std::size_t deployments = env_size("XNFV_S6_DEPLOYMENTS", 2);
    const std::size_t epochs = env_size("XNFV_S6_EPOCHS", 4);
    const std::size_t conns = env_size("XNFV_S6_CONNS", 16);

    // One model for every cell: a forest on the mixed full-telemetry task,
    // the same family the driver's fleets are drawn from.
    ml::Rng rng(2020);
    wl::BuildOptions opt;
    opt.num_samples = samples;
    const auto built = wl::build_mixed_dataset(wl::standard_scenarios(), opt, rng);
    auto forest = std::make_shared<ml::RandomForest>(
        ml::RandomForest::Config{.num_trees = 16});
    forest->fit(built.data, rng);

    serve::ServiceConfig cfg;
    cfg.method = "tree_shap";
    cfg.seed = 11;
    cfg.queue_depth = 512;
    cfg.max_batch = 8;
    cfg.max_wait = std::chrono::microseconds(100);
    cfg.cache_capacity = 8192;
    cfg.degradation.reduced_queue_depth = 64;
    cfg.degradation.baseline_queue_depth = 128;
    cfg.drift_window = 32;

    const auto run_cell = [&](const std::string& scenario) {
        net::ShardedServerConfig shcfg;
        shcfg.shards = 2;
        shcfg.net.max_connections = conns + 16;
        net::ShardedServer server(forest, xai::BackgroundData(built.data.x, 64),
                                  cfg, shcfg);
        std::string error;
        if (!server.start(&error)) {
            std::fprintf(stderr, "server start failed: %s\n", error.c_str());
            std::exit(1);
        }
        std::thread loop([&server] { server.run(); });
        scn::DriverConfig dcfg;
        dcfg.port = server.port();
        dcfg.scenario = scenario;
        dcfg.seed = 2020;
        dcfg.deployments = deployments;
        dcfg.epochs_per_phase = epochs;
        dcfg.connections = conns;
        dcfg.window = 4;
        dcfg.method = "tree_shap";
        dcfg.interactions = 2;
        dcfg.flash_mult = 6.0;
        Cell cell;
        cell.scenario = scenario;
        bench::Stopwatch sw;
        cell.report = scn::run_scenario(dcfg);
        cell.wall_ms = sw.ms();
        server.request_drain();
        loop.join();
        server.stop_services();
        return cell;
    };

    const std::vector<std::string> families = {"enterprise_edge", "web_pop",
                                               "fault_burst"};
    bench::print_header("S6", "closed-loop scenarios (2-shard TCP, live replay)");
    std::printf("%-18s %-12s %8s %8s %10s %10s %8s %8s %8s\n", "scenario",
                "phase", "reqs", "errors", "p50_us", "p99_us", "degr",
                "drift", "slaviol");
    bench::print_rule();

    bench::JsonArtifact artifact("s6_scenarios");
    bool ok = true;
    std::vector<Cell> cells;
    for (const auto& family : families) {
        Cell cell = run_cell(family);
        ok = ok && cell.report.transport_ok;
        for (const auto& p : cell.report.phases) {
            ok = ok && p.requests == p.responses && p.errors == 0;
            std::printf("%-18s %-12s %8zu %8zu %10.1f %10.1f %8llu %8llu %8llu\n",
                        family.c_str(), p.name.c_str(), p.requests, p.errors,
                        p.latency_p50_us, p.latency_p99_us,
                        static_cast<unsigned long long>(p.degraded),
                        static_cast<unsigned long long>(p.drift_flushes),
                        static_cast<unsigned long long>(p.sla_violations));
            serve::JsonWriter w;
            w.field("scenario", family);
            w.field("phase", p.name);
            w.field("requests", static_cast<std::uint64_t>(p.requests));
            w.field("errors", static_cast<std::uint64_t>(p.errors));
            w.field("latency_p50_us", p.latency_p50_us);
            w.field("latency_p95_us", p.latency_p95_us);
            w.field("latency_p99_us", p.latency_p99_us);
            w.field("degraded", p.degraded);
            w.field("cache_hits", p.cache_hits);
            w.field("drift_flushes", p.drift_flushes);
            w.field("sla_violations", p.sla_violations);
            w.field("wall_ms", cell.wall_ms);
            artifact.add_object(w.finish());
        }
        std::printf("%-18s action: %s (driver: %s, applied: %s)\n",
                    family.c_str(),
                    cell.report.action.empty() ? "-" : cell.report.action.c_str(),
                    cell.report.action_driver.empty()
                        ? "-"
                        : cell.report.action_driver.c_str(),
                    cell.report.action_applied ? "yes" : "no");
        cells.push_back(std::move(cell));
    }

    // Determinism gate: the first family reruns against a fresh server and
    // both hashes must reproduce exactly.
    const Cell again = run_cell(families[0]);
    const bool deterministic =
        again.report.trace_hash == cells[0].report.trace_hash &&
        again.report.responses_hash == cells[0].report.responses_hash;
    std::printf("determinism: trace %s, responses %s\n",
                again.report.trace_hash == cells[0].report.trace_hash ? "ok"
                                                                      : "DIVERGED",
                again.report.responses_hash == cells[0].report.responses_hash
                    ? "ok"
                    : "DIVERGED");
    ok = ok && deterministic;

    {
        serve::JsonWriter w;
        w.field("check", "determinism");
        w.field("scenario", families[0]);
        char buf[20];
        std::snprintf(buf, sizeof(buf), "%016llx",
                      static_cast<unsigned long long>(cells[0].report.trace_hash));
        w.field("trace_hash", std::string(buf));
        std::snprintf(buf, sizeof(buf), "%016llx",
                      static_cast<unsigned long long>(
                          cells[0].report.responses_hash));
        w.field("responses_hash", std::string(buf));
        w.field("reproduced", deterministic);
        artifact.add_object(w.finish());
    }
    if (!artifact.write(json_path))
        std::fprintf(stderr, "warning: could not write %s\n", json_path.c_str());
    else
        std::printf("artifact: %s\n", json_path.c_str());
    return ok ? 0 : 1;
}
