// F3 — Explanation latency vs feature count and budget.
//
// Times one explanation as a function of (a) the number of features, for a
// synthetic model where d is controllable, and (b) the coalition/sample
// budget on the NFV random forest.  Expected shape: exact enumeration blows
// up exponentially and stops being feasible past ~14 features; KernelSHAP
// and LIME scale with budget x model-eval cost; TreeSHAP is orders of
// magnitude faster because it never evaluates the model, only walks trees.
#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "core/exact_shapley.hpp"
#include "core/kernel_shap.hpp"
#include "core/lime.hpp"
#include "core/occlusion.hpp"
#include "core/tree_shap.hpp"

namespace ml = xnfv::ml;
namespace xai = xnfv::xai;
using namespace xnfv::bench;

namespace {

/// Synthetic model with adjustable dimensionality.
ml::LambdaModel synthetic(std::size_t d) {
    return ml::LambdaModel(d, [](std::span<const double> x) {
        double v = 0.0;
        for (std::size_t i = 0; i + 1 < x.size(); i += 2) v += x[i] * x[i + 1];
        return v + (x.empty() ? 0.0 : std::sin(3.0 * x[0]));
    });
}

double time_explainer(xai::Explainer& e, const ml::Model& model,
                      std::span<const double> x, int repeats = 3) {
    Stopwatch sw;
    for (int r = 0; r < repeats; ++r) (void)e.explain(model, x);
    return sw.ms() / repeats;
}

}  // namespace

int main() {
    print_header("F3", "explanation latency (ms per explanation)");

    std::printf("\nseries A: dimensionality sweep on a synthetic model "
                "(kernel budget 1024, lime 1000 samples, bg 64)\n");
    print_rule();
    std::printf("%4s %14s %14s %14s %14s\n", "d", "exact", "kernel_shap", "lime",
                "occlusion");
    print_rule();
    for (const std::size_t d : {4u, 6u, 8u, 10u, 12u, 14u, 16u}) {
        ml::Rng rng(d);
        xnfv::ml::Matrix bgm(64, d);
        for (std::size_t r = 0; r < 64; ++r)
            for (std::size_t c = 0; c < d; ++c) bgm(r, c) = rng.uniform(-1, 1);
        const xai::BackgroundData background(bgm);
        const auto model = synthetic(d);
        std::vector<double> x(d, 0.4);

        xai::KernelShap ks(background, ml::Rng(1),
                           xai::KernelShap::Config{.max_coalitions = 1024});
        xai::Lime lime(background, ml::Rng(2), xai::Lime::Config{.num_samples = 1000});
        xai::Occlusion occ(background);

        double exact_ms = -1.0;
        if (d <= 14) {  // beyond this, exact enumeration is prohibitive
            xai::ExactShapley exact(background);
            exact_ms = time_explainer(exact, model, x, d <= 10 ? 3 : 1);
        }
        const double ks_ms = time_explainer(ks, model, x);
        const double lime_ms = time_explainer(lime, model, x);
        const double occ_ms = time_explainer(occ, model, x);
        if (exact_ms >= 0.0)
            std::printf("%4zu %14.2f %14.2f %14.2f %14.2f\n", d, exact_ms, ks_ms,
                        lime_ms, occ_ms);
        else
            std::printf("%4zu %14s %14.2f %14.2f %14.2f\n", d, "(skipped)", ks_ms,
                        lime_ms, occ_ms);
    }

    std::printf("\nseries B: NFV random forest (d = 18), per-explainer latency\n");
    print_rule();
    std::printf("%-14s %14s\n", "explainer", "ms/expl");
    print_rule();
    {
        const auto task = make_sla_task(4000, /*seed=*/111);
        const auto forest = train_forest(task.train, /*seed=*/11);
        const xai::BackgroundData background(task.train.x, 96);
        const auto x = task.test.x.row(0);

        xai::TreeShap ts;
        std::printf("%-14s %14.3f\n", "tree_shap", time_explainer(ts, forest, x, 10));
        for (const std::size_t budget : {256u, 1024u, 4096u}) {
            xai::KernelShap ks(background, ml::Rng(3),
                               xai::KernelShap::Config{.max_coalitions = budget});
            std::printf("kernel_shap/%-4zu %12.1f\n", budget,
                        time_explainer(ks, forest, x, 1));
        }
        for (const std::size_t budget : {300u, 1000u, 3000u}) {
            xai::Lime lime(background, ml::Rng(4),
                           xai::Lime::Config{.num_samples = budget});
            std::printf("lime/%-9zu %14.2f\n", budget,
                        time_explainer(lime, forest, x, 3));
        }
        xai::Occlusion occ(background);
        std::printf("%-14s %14.2f\n", "occlusion", time_explainer(occ, forest, x, 3));

        std::printf("\nseries C: Kernel-SHAP batch (16 rows, budget 1024) vs thread count\n");
        print_rule();
        std::printf("%8s %14s %10s\n", "threads", "ms/batch", "speedup");
        print_rule();
        std::vector<std::size_t> rows(16);
        for (std::size_t r = 0; r < rows.size(); ++r) rows[r] = r;
        const ml::Matrix batch_rows = task.test.x.take_rows(rows);
        double ms_at_1 = 0.0;
        for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
            xai::KernelShap ks(background, ml::Rng(5),
                               xai::KernelShap::Config{.max_coalitions = 1024,
                                                       .threads = threads});
            (void)ks.explain_batch(forest, batch_rows);  // warm the pool
            Stopwatch sw;
            (void)ks.explain_batch(forest, batch_rows);
            const double ms = sw.ms();
            if (threads == 1) ms_at_1 = ms;
            std::printf("%8zu %14.1f %9.2fx\n", threads, ms,
                        ms > 0.0 ? ms_at_1 / ms : 0.0);
        }
    }
    std::printf("\nexpected shape: exact explodes exponentially; tree_shap is the\n"
                "fastest by orders of magnitude; kernel_shap/lime scale with budget;\n"
                "series C speedup approaches the physical core count (flat on 1-CPU\n"
                "machines -- determinism guarantees identical attributions either way).\n");
    return 0;
}
