// T2 — Agreement between attribution methods.
//
// Series A (random forest): explains the same test instances with TreeSHAP,
// KernelSHAP, sampling Shapley, LIME, and occlusion, reporting pairwise
// top-k overlap (k = 1, 3, 5) and Spearman rank correlation of |phi|.
// Expected shape: the three Shapley estimators agree most (they estimate the
// same quantity); LIME agrees moderately; occlusion trails (no interactions).
//
// Series B (MLP): adds the gradient family — Integrated Gradients and
// SmoothGrad — which needs a differentiable model.  Expected shape: methods
// cluster by *family* (the "disagreement problem"): IG agrees with
// SmoothGrad, KernelSHAP with occlusion/LIME, and the two families agree
// with each other far less — on a saturated probability surface the local
// gradient and the coalition-marginalization view genuinely answer
// different questions.
#include <cstdio>
#include <memory>

#include "bench_util.hpp"
#include "core/gradient.hpp"
#include "core/kernel_shap.hpp"
#include "core/lime.hpp"
#include "core/occlusion.hpp"
#include "core/sampling_shapley.hpp"
#include "core/tree_shap.hpp"
#include "mlcore/metrics.hpp"
#include "mlcore/mlp.hpp"
#include "mlcore/preprocess.hpp"

namespace ml = xnfv::ml;
namespace xai = xnfv::xai;
using namespace xnfv::bench;

namespace {

void agreement_table(std::vector<xai::Explainer*> explainers, const ml::Model& model,
                     const ml::Matrix& instances, std::size_t n_instances) {
    std::vector<std::vector<std::vector<double>>> attribs(explainers.size());
    for (std::size_t i = 0; i < n_instances && i < instances.rows(); ++i) {
        const auto x = instances.row(i);
        for (std::size_t e = 0; e < explainers.size(); ++e)
            attribs[e].push_back(explainers[e]->explain(model, x).abs_attributions());
    }
    print_rule();
    std::printf("%-38s %8s %8s %8s %10s\n", "pair", "top1", "top3", "top5", "spearman");
    print_rule();
    for (std::size_t a = 0; a < explainers.size(); ++a) {
        for (std::size_t b = a + 1; b < explainers.size(); ++b) {
            double top1 = 0.0, top3 = 0.0, top5 = 0.0, rho = 0.0;
            const auto n = attribs[a].size();
            for (std::size_t i = 0; i < n; ++i) {
                top1 += ml::topk_overlap(attribs[a][i], attribs[b][i], 1);
                top3 += ml::topk_overlap(attribs[a][i], attribs[b][i], 3);
                top5 += ml::topk_overlap(attribs[a][i], attribs[b][i], 5);
                rho += ml::spearman(attribs[a][i], attribs[b][i]);
            }
            const std::string pair =
                explainers[a]->name() + " vs " + explainers[b]->name();
            std::printf("%-38s %8.3f %8.3f %8.3f %10.3f\n", pair.c_str(),
                        top1 / n, top3 / n, top5 / n, rho / n);
        }
    }
}

/// MLP wrapper that standardizes inputs on the fly (keeps the explainers in
/// raw feature units while the network trains on z-scores).  The gradient
/// path dispatches on ml::Mlp, so this wrapper exposes the inner model for
/// the chain rule: grad_raw = grad_std / sigma.
class ScaledMlp final : public ml::Model {
public:
    ScaledMlp(const ml::Dataset& train, ml::Rng rng) {
        scaler_.fit(train.x);
        inner_ = std::make_unique<ml::Mlp>(
            ml::Mlp::Config{.hidden_layers = {32, 32}, .epochs = 50});
        inner_->fit(ml::standardize(train, scaler_), rng);
    }
    [[nodiscard]] double predict(std::span<const double> x) const override {
        return inner_->predict(scaler_.transform_row(x));
    }
    [[nodiscard]] std::size_t num_features() const override {
        return inner_->num_features();
    }
    [[nodiscard]] std::string name() const override { return "scaled_mlp"; }

private:
    std::unique_ptr<ml::Mlp> inner_;
    ml::Standardizer scaler_;
};

}  // namespace

int main() {
    const std::size_t n_instances = 100;
    const auto task = make_sla_task(6000, /*seed=*/77);
    const xai::BackgroundData background(task.train.x, 96);

    print_header("T2", "attribution agreement across methods");

    {
        const auto forest = train_forest(task.train, /*seed=*/7);
        std::printf("\nseries A: random forest, %zu instances\n", n_instances);
        xai::TreeShap tree_shap;
        xai::KernelShap kernel_shap(background, ml::Rng(11),
                                    xai::KernelShap::Config{.max_coalitions = 600});
        xai::SamplingShapley sampling(background, ml::Rng(13),
                                      xai::SamplingShapley::Config{.num_permutations = 100});
        xai::Lime lime(background, ml::Rng(12), xai::Lime::Config{.num_samples = 1200});
        xai::Occlusion occlusion(background);
        agreement_table({&tree_shap, &kernel_shap, &sampling, &lime, &occlusion},
                        forest, task.test.x, n_instances);
    }

    {
        const ScaledMlp mlp(task.train, ml::Rng(21));
        std::printf("\nseries B: MLP (adds the gradient family), %zu instances\n",
                    n_instances / 2);
        xai::KernelShap kernel_shap(background, ml::Rng(22),
                                    xai::KernelShap::Config{.max_coalitions = 600});
        xai::Lime lime(background, ml::Rng(23), xai::Lime::Config{.num_samples = 1200});
        xai::IntegratedGradients ig(background,
                                    xai::IntegratedGradients::Config{.steps = 40});
        xai::SmoothGrad smoothgrad(background, ml::Rng(24));
        xai::Occlusion occlusion(background);
        agreement_table({&kernel_shap, &ig, &smoothgrad, &lime, &occlusion}, mlp,
                        task.test.x, n_instances / 2);
    }

    std::printf("\nexpected shape: Shapley estimators cluster tightest (series A).\n"
                "In series B the methods cluster by family: IG~SmoothGrad and\n"
                "KernelSHAP~occlusion~LIME agree internally, while cross-family\n"
                "agreement is much lower — the 'disagreement problem' reproduced\n"
                "on NFV telemetry.\n");
    return 0;
}
