// A2 (ablation) — global surrogate fidelity vs tree depth.
//
// Distills the RF SLA classifier into decision trees of growing depth and
// reports held-out fidelity R^2 together with surrogate size (leaves).
// Expected shape: fidelity grows with depth, saturating once the surrogate
// captures the teacher's dominant splits — the operator chooses the knee.
#include <cstdio>

#include "bench_util.hpp"
#include "core/surrogate.hpp"

namespace ml = xnfv::ml;
namespace xai = xnfv::xai;
using namespace xnfv::bench;

int main() {
    // Teacher: the latency regressor over *config-only* features.  The SLA
    // classifier is dominated by a single utilization threshold (a depth-1
    // surrogate already captures it); the pre-deployment latency surface is
    // genuinely multi-factor, so depth matters.
    const auto task =
        make_sla_task(6000, /*seed=*/777, xnfv::nfv::LabelKind::latency_ms,
                      xnfv::nfv::FeatureSet::config_only);
    const auto forest = train_forest(task.train, /*seed=*/78);
    const xai::BackgroundData background(task.train.x, 4096);

    print_header("A2", "surrogate-tree fidelity vs depth (teacher: latency RF, config features)");
    print_rule();
    std::printf("%6s %14s %14s %10s\n", "depth", "holdout R^2", "train R^2", "leaves");  // means over 5 splits
    print_rule();
    for (const int depth : {1, 2, 3, 4, 5, 6, 8}) {
        // Latency is heavy-tailed, so a single holdout split is noisy:
        // average fidelity over several distillation splits.
        double fid = 0.0, train_fid = 0.0, leaves = 0.0;
        const int reps = 5;
        for (int rep = 0; rep < reps; ++rep) {
            ml::Rng rng(80 + depth * 10 + rep);
            const auto s = xai::fit_surrogate(
                forest, background, task.train.feature_names, rng,
                xai::SurrogateOptions{.max_depth = depth, .min_samples_leaf = 16});
            fid += s.fidelity_r2;
            train_fid += s.train_fidelity_r2;
            leaves += static_cast<double>(s.tree.num_leaves());
        }
        std::printf("%6d %14.4f %14.4f %10.1f\n", depth, fid / reps,
                    train_fid / reps, leaves / reps);
    }

    // Show the operator-facing depth-3 surrogate as the paper's figure would.
    ml::Rng rng(90);
    const auto s = xai::fit_surrogate(
        forest, background, task.train.feature_names, rng,
        xai::SurrogateOptions{.max_depth = 3, .min_samples_leaf = 8});
    std::printf("\ndepth-3 surrogate policy (predicted latency in ms at leaves):\n%s",
                s.text.c_str());
    std::printf("\nexpected shape: monotone fidelity growth with diminishing returns.\n");
    return 0;
}
