// F1 — LIME local fidelity vs neighborhood width and sample budget.
//
// Sweeps the LIME kernel width (with locality-matched perturbation scale)
// and, in a second series, the perturbation budget, reporting the *held out*
// kernel-weighted R^2 of the local surrogate on the NFV latency models.
// Expected shapes: for the smooth MLP, fidelity falls as the neighborhood
// widens; for the piecewise-constant random forest it does the opposite —
// the operational lesson being that LIME's kernel width must be tuned to
// the model family.  Fidelity rises with sample budget, while the in-sample
// fit R^2 is optimistic at small budgets.
#include <algorithm>
#include <cstdio>

#include "bench_util.hpp"
#include <memory>

#include "core/lime.hpp"
#include "mlcore/mlp.hpp"

namespace ml = xnfv::ml;
namespace xai = xnfv::xai;
using namespace xnfv::bench;

int main() {
    // Latency regression target: a smooth continuous output keeps the
    // weighted R^2 well conditioned (the classifier's probability surface is
    // mostly saturated plateaus, which makes local R^2 degenerate).
    const auto task = make_sla_task(6000, /*seed=*/88, xnfv::nfv::LabelKind::latency_ms);
    const auto forest = train_forest(task.train, /*seed=*/8);
    const xai::BackgroundData background(task.train.x, 96);
    const std::size_t n_instances = 60;

    print_header("F1", "LIME local fidelity (holdout weighted R^2), latency models");

    // Series A sweeps the *locality*: perturbations are drawn at the kernel's
    // scale (scale = width) so each width measures how linear the model is
    // within that neighborhood.  Fidelity is the held-out weighted R^2.
    //
    // Two target models on purpose: the MLP is smooth, so the textbook
    // LIME story holds (tighter neighborhood => more linear => higher
    // fidelity).  The random forest is piecewise *constant*: in a tiny
    // neighborhood the surrogate sees either no variation or a bare split
    // jump, so fidelity is poor at small widths and rises as the kernel
    // covers enough splits for the ensemble's smooth trend to emerge.  The
    // paper's operational takeaway: kernel width must be tuned per model
    // family, not copied from image-domain defaults.
    std::unique_ptr<ml::Model> mlp;
    {
        struct Scaled final : ml::Model {
            std::unique_ptr<ml::Mlp> inner;
            ml::Standardizer scaler;
            [[nodiscard]] double predict(std::span<const double> x) const override {
                return inner->predict(scaler.transform_row(x));
            }
            [[nodiscard]] std::size_t num_features() const override {
                return inner->num_features();
            }
            [[nodiscard]] std::string name() const override { return "mlp"; }
        };
        ml::Rng rng(23);
        auto w = std::make_unique<Scaled>();
        w->scaler.fit(task.train.x);
        w->inner = std::make_unique<ml::Mlp>(
            ml::Mlp::Config{.hidden_layers = {32, 32}, .epochs = 60});
        w->inner->fit(ml::standardize(task.train, w->scaler), rng);
        mlp = std::move(w);
    }

    std::printf("\nseries A: neighborhood width sweep (1000 samples per explanation)\n");
    print_rule();
    std::printf("%10s %18s %18s\n", "width", "fidelity (mlp)", "fidelity (forest)");
    print_rule();
    for (const double width : {0.2, 0.5, 1.0, 2.0, 4.0, 8.0}) {
        xai::Lime lime(background, ml::Rng(21),
                       xai::Lime::Config{.num_samples = 1000, .kernel_width = width,
                                         .perturbation_scale = width});
        double fid_mlp = 0.0, fid_rf = 0.0;
        for (std::size_t i = 0; i < n_instances; ++i) {
            (void)lime.explain(*mlp, task.test.x.row(i));
            fid_mlp += std::max(-1.0, lime.last_fit().holdout_r2);
            (void)lime.explain(forest, task.test.x.row(i));
            fid_rf += std::max(-1.0, lime.last_fit().holdout_r2);
        }
        std::printf("%10.2f %18.4f %18.4f\n", width, fid_mlp / n_instances,
                    fid_rf / n_instances);
    }

    std::printf("\nseries B: sample budget sweep (width = 0.75*sqrt(d))\n");
    print_rule();
    std::printf("%10s %14s %18s %12s\n", "samples", "fit_r2", "holdout_fidelity",
                "ms/expl");
    print_rule();
    for (const std::size_t budget : {100u, 300u, 1000u, 3000u}) {
        xai::Lime lime(background, ml::Rng(22),
                       xai::Lime::Config{.num_samples = budget});
        double fit = 0.0, fid = 0.0;
        Stopwatch sw;
        for (std::size_t i = 0; i < n_instances; ++i) {
            (void)lime.explain(forest, task.test.x.row(i));
            fit += std::max(-1.0, lime.last_fit().weighted_r2);
            fid += std::max(-1.0, lime.last_fit().holdout_r2);
        }
        std::printf("%10zu %14.4f %18.4f %12.2f\n", budget, fit / n_instances,
                    fid / n_instances, sw.ms() / n_instances);
    }
    std::printf("\nexpected shape: MLP fidelity falls as the neighborhood widens\n"
                "(smooth model, locally linear); the forest shows the opposite\n"
                "(piecewise-constant model needs a wide kernel to expose its trend).\n"
                "Holdout fidelity rises with budget; in-sample R^2 is optimistic.\n"
                "(negative R^2 clamped at -1 when averaging)\n");
    return 0;
}
