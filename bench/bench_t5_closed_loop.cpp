// T5 — Closed-loop, simulator-validated remediation.
//
// The feature-space counterfactual (T4) asks the *model* whether a change
// would help; this experiment asks the *simulator* — the ground truth.  For
// freshly sampled deployments with mixed injected faults, each predicted
// violation is remediated by one of four policies and the same epoch is
// re-simulated:
//
//   explanation :  TreeSHAP's top telemetry driver selects the action kind
//                  (cpu counters -> scale, cache/memory/co-location ->
//                  spread, link counters -> co-locate, rules -> trim),
//                  applied to the chain's bottleneck VNF;
//   always_scale:  unconditionally grow the bottleneck's CPU (the obvious
//                  static playbook);
//   random      :  uniformly random action kind on the bottleneck;
//   none        :  do nothing (controls for transient violations).
//
// Reported: cure rate (violation gone after re-simulation) and mean latency
// reduction.  Expected shape: explanation-guided >= always_scale > random >>
// none, with the gap over always_scale coming from the non-CPU fault
// families where scaling the bottleneck is the wrong lever.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/tree_shap.hpp"
#include "mlcore/metrics.hpp"
#include "nfv/remediation.hpp"
#include "nfv/simulator.hpp"

namespace ml = xnfv::ml;
namespace nfv = xnfv::nfv;
namespace wl = xnfv::wl;
namespace xai = xnfv::xai;
using namespace xnfv::bench;

namespace {

std::vector<wl::ScenarioSpec> fault_mix() {
    return {wl::fault_scenario(wl::FaultKind::cpu_starvation),
            wl::fault_scenario(wl::FaultKind::cache_contention),
            wl::fault_scenario(wl::FaultKind::link_saturation)};
}

/// Maps the top-attributed telemetry feature to a remediation action.
nfv::Action action_for_feature(const std::string& feature, std::uint32_t bottleneck,
                               const nfv::Deployment& dep,
                               const nfv::ServiceChain& chain) {
    if (feature == "max_cache_pressure" || feature == "colocated_vnfs" ||
        feature == "max_server_mem" || feature == "active_flows")
        return {.kind = nfv::ActionKind::migrate_spread, .target_vnf = bottleneck};
    if (feature == "max_link_util" || feature == "hop_count")
        return {.kind = nfv::ActionKind::migrate_colocate, .target_vnf = bottleneck};
    if (feature == "total_rules") {
        // Trim the rule-heaviest matcher on the chain.
        std::uint32_t target = bottleneck;
        std::uint32_t best_rules = 0;
        for (const std::uint32_t vid : chain.vnf_ids) {
            if (dep.vnf(vid).num_rules > best_rules) {
                best_rules = dep.vnf(vid).num_rules;
                target = vid;
            }
        }
        return {.kind = nfv::ActionKind::reduce_rules, .target_vnf = target,
                .magnitude = 0.5};
    }
    // CPU counters, allocations, and all demand-side features: the only
    // capacity lever left is scaling the bottleneck.
    return {.kind = nfv::ActionKind::scale_up_cpu, .target_vnf = bottleneck,
            .magnitude = 1.0};
}

struct PolicyStats {
    std::string name;
    std::size_t attempted = 0;
    std::size_t cured = 0;
    double latency_drop_ms = 0.0;
};

}  // namespace

int main() {
    // Train the violation model on the same fault mix the evaluation draws
    // from (disjoint seeds), exactly like the T3 diagnosis setting.
    ml::Rng train_rng(4242);
    wl::BuildOptions opt;
    opt.num_samples = 6000;
    const auto built = wl::build_mixed_dataset(fault_mix(), opt, train_rng);
    auto split = ml::train_test_split(built.data, 0.25, train_rng);
    const auto model = train_forest(split.train, 424);
    const double auc = ml::roc_auc(split.test.y, model.predict_batch(split.test.x));

    xai::TreeShap explainer;
    std::vector<PolicyStats> policies{
        {.name = "explanation"}, {.name = "always_scale"}, {.name = "random"},
        {.name = "none"}};

    ml::Rng eval_rng(777);
    ml::Rng policy_rng(778);
    const auto scenarios = fault_mix();
    std::size_t violations_seen = 0;

    for (std::size_t trial = 0; trial < 150; ++trial) {
        // Sample a deployment + one epoch of traffic, reusing the dataset
        // builder in miniature (one deployment, one epoch).
        wl::BuildOptions one;
        one.num_samples = scenarios[trial % scenarios.size()].chains.size();
        one.epochs_per_deployment = 1;
        // Rebuild the raw deployment by hand so we can mutate and re-simulate.
        ml::Rng dep_rng = eval_rng.split();
        // (Deployment sampling lives inside build_dataset; here we rebuild a
        // comparable one directly.)
        const wl::ScenarioSpec& spec = scenarios[trial % scenarios.size()];
        nfv::Infrastructure infra =
            nfv::Infrastructure::homogeneous_pop(spec.num_servers, nfv::Server{},
                                                 spec.link_bps);
        nfv::Deployment dep;
        std::vector<wl::TrafficGenerator> traffic;
        const bool inject = dep_rng.bernoulli(spec.fault_prob);
        if (inject && spec.fault == wl::FaultKind::link_saturation) {
            nfv::Infrastructure squeezed;
            for (const auto& s : infra.servers()) squeezed.add_server(s);
            for (auto link : infra.links()) {
                link.capacity_bps *= dep_rng.uniform(0.04, 0.12);
                squeezed.add_link(link);
            }
            infra = std::move(squeezed);
        }
        const std::size_t starved =
            inject && spec.fault == wl::FaultKind::cpu_starvation
                ? dep_rng.uniform_index(spec.chains.size())
                : spec.chains.size();
        for (std::size_t c = 0; c < spec.chains.size(); ++c) {
            double cores = dep_rng.uniform(spec.cpu_cores_lo, spec.cpu_cores_hi);
            if (c == starved) cores *= dep_rng.uniform(0.10, 0.25);
            nfv::SlaSpec sla;
            sla.max_latency_s =
                dep_rng.uniform(spec.sla_latency_ms_lo, spec.sla_latency_ms_hi) * 1e-3;
            nfv::make_chain(dep, std::string(wl::to_string(spec.chains[c])),
                            wl::chain_types(spec.chains[c]), cores, sla,
                            static_cast<std::uint32_t>(
                                dep_rng.uniform_int(spec.rules_lo, spec.rules_hi)));
        }
        if (!nfv::place(dep, infra, spec.placement, dep_rng))
            for (auto& v : dep.vnfs)
                if (v.server < 0) v.server = 0;
        std::vector<nfv::OfferedLoad> loads;
        for (std::size_t c = 0; c < spec.chains.size(); ++c) {
            wl::TrafficSpec ts;
            ts.base_pps = dep_rng.uniform(spec.base_pps_lo, spec.base_pps_hi);
            ts.pkt_bytes_mean = dep_rng.uniform(spec.pkt_bytes_lo, spec.pkt_bytes_hi);
            ts.burst_ratio = dep_rng.uniform(spec.burst_ratio_lo, spec.burst_ratio_hi);
            if (inject && spec.fault == wl::FaultKind::cache_contention)
                ts.flows_per_kpps = dep_rng.uniform(1500.0, 4000.0);
            wl::TrafficGenerator gen(ts, dep_rng.split());
            loads.push_back(gen.next_epoch(trial));
        }

        const auto epoch = nfv::simulate_epoch(dep, infra, loads);
        for (std::size_t c = 0; c < dep.chains.size(); ++c) {
            if (!epoch.chains[c].sla_violated) continue;
            ++violations_seen;
            const auto cid = static_cast<std::uint32_t>(c);
            const auto features = nfv::extract_features(
                nfv::FeatureSet::full_telemetry, dep, infra, loads, epoch, cid);
            const std::uint32_t bottleneck =
                nfv::bottleneck_vnf(dep, dep.chains[c], epoch);

            for (PolicyStats& policy : policies) {
                nfv::Action action{.kind = nfv::ActionKind::none};
                if (policy.name == "explanation") {
                    auto e = explainer.explain(model, features);
                    e.feature_names = built.data.feature_names;
                    const auto top = e.top_k(1);
                    action = action_for_feature(e.feature_names[top[0]], bottleneck,
                                                dep, dep.chains[c]);
                } else if (policy.name == "always_scale") {
                    action = {.kind = nfv::ActionKind::scale_up_cpu,
                              .target_vnf = bottleneck, .magnitude = 1.0};
                } else if (policy.name == "random") {
                    const nfv::ActionKind kinds[] = {
                        nfv::ActionKind::scale_up_cpu, nfv::ActionKind::migrate_spread,
                        nfv::ActionKind::migrate_colocate, nfv::ActionKind::reduce_rules};
                    action = {.kind = kinds[policy_rng.uniform_index(4)],
                              .target_vnf = bottleneck, .magnitude = 0.5};
                }
                nfv::Deployment mutated = dep;
                (void)nfv::apply_action(mutated, infra, action);
                const auto after = nfv::simulate_epoch(mutated, infra, loads);
                ++policy.attempted;
                if (!after.chains[c].sla_violated) ++policy.cured;
                policy.latency_drop_ms +=
                    (epoch.chains[c].latency_s - after.chains[c].latency_s) * 1e3;
            }
        }
    }

    print_header("T5", "closed-loop remediation validated by re-simulation");
    std::printf("model AUC %.3f; %zu violating chain-epochs remediated per policy\n\n",
                auc, violations_seen);
    print_rule();
    std::printf("%-14s %12s %20s\n", "policy", "cure rate", "mean dLatency (ms)");
    print_rule();
    for (const PolicyStats& policy : policies) {
        std::printf("%-14s %11.1f%% %20.3f\n", policy.name.c_str(),
                    policy.attempted ? 100.0 * policy.cured / policy.attempted : 0.0,
                    policy.attempted ? policy.latency_drop_ms / policy.attempted : 0.0);
    }
    std::printf("\nexpected shape: explanation >= always_scale > random >> none; the\n"
                "edge over always_scale comes from cache/link faults where scaling\n"
                "the bottleneck is the wrong lever.\n");
    return 0;
}
