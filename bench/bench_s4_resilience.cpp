// S4 — resilience: serving behavior under injected socket faults
// (net/chaos.hpp), per fault class, against a no-chaos baseline.
//
// Each cell starts a fresh 2-shard ShardedServer on an ephemeral loopback
// port, arms exactly one fault class in the deterministic injector, and
// drives the same request workload:
//
//   * chunking classes (partial_write / torn_read / eintr_storm /
//     stalled_read) run the plain FIFO load generator — faults reshape I/O
//     timing but every stream must still complete cleanly, and the p99
//     round-trip is compared to the baseline under a generous delta gate
//     (chaos is allowed to cost latency, not correctness, and the gate only
//     catches order-of-magnitude regressions like a stuck retry loop);
//   * transport-killing classes (rst_close, shard_death) run the loadgen's
//     safe-retry mode — the gate is exactly-once completion, and for
//     shard_death additionally the supervisor's recovery time (fault fired
//     -> shard respawned, sampled at 1ms) under a bound of several
//     heartbeat intervals.
//
// Output: a fixed-format table and a JSON artifact (default
// BENCH_s4_resilience.json, overridable via argv[1]) for CI to archive.
// Sizes are overridable through XNFV_RESIL_REQUESTS (per connection,
// chunking classes) and XNFV_RESIL_WINDOW.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "net/chaos.hpp"
#include "net/loadgen.hpp"
#include "net/sharded_server.hpp"
#include "serve/ndjson.hpp"
#include "serve/service.hpp"

namespace bench = xnfv::bench;
namespace ml = xnfv::ml;
namespace net = xnfv::net;
namespace serve = xnfv::serve;
namespace xai = xnfv::xai;

namespace {

std::size_t env_size(const char* name, std::size_t fallback) {
    const char* raw = std::getenv(name);
    if (!raw || !*raw) return fallback;
    const long value = std::atol(raw);
    return value > 0 ? static_cast<std::size_t>(value) : fallback;
}

std::string request_line(std::uint64_t id, std::size_t row, std::uint64_t rid) {
    serve::JsonWriter w;
    w.field("op", "explain");
    w.field("id", id);
    if (rid != 0) w.field("rid", rid);
    w.field("row", static_cast<std::uint64_t>(row));
    return w.finish();
}

double percentile(const std::vector<double>& sorted, double q) {
    if (sorted.empty()) return 0.0;
    const auto idx = static_cast<std::size_t>(
        q * static_cast<double>(sorted.size() - 1) + 0.5);
    return sorted[std::min(idx, sorted.size() - 1)];
}

struct ClassSpec {
    const char* name;
    net::NetFaultPoint point;
    double rate;
    std::uint64_t max_fires;  ///< 0 = unlimited
    bool retry_mode;          ///< transport-killing classes need safe retries
};

struct ClassResult {
    double req_per_sec = 0.0;
    double p50_us = 0.0;
    double p99_us = 0.0;
    std::uint64_t answered = 0;
    std::uint64_t faults = 0;
    std::uint64_t retries = 0;
    std::uint64_t reconnects = 0;
    std::uint64_t respawns = 0;
    double recovery_ms = -1.0;  ///< shard_death only; -1 = not measured
    bool clean = false;         ///< every stream completed without error
};

}  // namespace

int main(int argc, char** argv) {
    bench::print_header(
        "S4", "resilience: p99 and recovery per injected socket-fault class");

    const std::size_t conns = 16;
    const std::size_t per_conn = env_size("XNFV_RESIL_REQUESTS", 200);
    const std::size_t retry_per_conn = std::max<std::size_t>(8, per_conn / 4);
    const std::size_t window = env_size("XNFV_RESIL_WINDOW", 8);
    const std::size_t hot_rows = 16;
    const std::string json_path = argc > 1 ? argv[1] : "BENCH_s4_resilience.json";

    auto task = bench::make_sla_task(1000, 2020);
    const auto forest =
        std::make_shared<ml::RandomForest>(bench::train_forest(task.train, 7));
    const xai::BackgroundData background(task.train.x, 128);

    const std::vector<ClassSpec> classes{
        {"none", net::NetFaultPoint::partial_write, 0.0, 0, false},
        {"partial_write", net::NetFaultPoint::partial_write, 0.30, 0, false},
        {"torn_read", net::NetFaultPoint::torn_read, 0.30, 0, false},
        {"eintr_storm", net::NetFaultPoint::eintr_storm, 0.30, 0, false},
        {"stalled_read", net::NetFaultPoint::stalled_read, 0.30, 0, false},
        {"rst_close", net::NetFaultPoint::rst_close, 1.0, 4, true},
        {"shard_death", net::NetFaultPoint::shard_death, 1.0, 1, true},
    };

    std::printf("\nmethod=tree_shap  shards=2  conns=%zu  window=%zu  "
                "(round-trip us)\n",
                conns, window);
    std::printf("%-14s %9s %9s %9s %8s %8s %8s %9s %6s\n", "fault", "req/s",
                "p50us", "p99us", "fired", "retries", "reconn", "recov_ms",
                "clean");
    bench::print_rule();

    bench::JsonArtifact artifact("tcp_serving_resilience");
    double baseline_p99 = 0.0;
    bool pass = true;

    for (const auto& spec : classes) {
        const std::size_t n = spec.retry_mode ? retry_per_conn : per_conn;
        std::vector<std::vector<std::string>> scripts(conns);
        for (std::size_t c = 0; c < conns; ++c) {
            auto& script = scripts[c];
            script.reserve(n + 1);
            for (std::size_t r = 0; r < n; ++r) {
                const std::uint64_t id = c * n + r + 1;
                script.push_back(
                    request_line(id, (c + r) % hot_rows, spec.retry_mode ? id : 0));
            }
            if (!spec.retry_mode) script.push_back("{\"op\":\"quit\"}");
        }

        serve::ServiceConfig cfg;
        cfg.method = "tree_shap";
        cfg.queue_depth = std::max<std::size_t>(1024, conns * window + 256);
        cfg.max_batch = 16;
        cfg.max_wait = std::chrono::microseconds(100);
        cfg.cache_capacity = 8192;

        net::ShardedServerConfig shcfg;
        shcfg.shards = 2;
        shcfg.net.max_connections = conns + 64;
        shcfg.heartbeat_interval = std::chrono::milliseconds(50);
        net::NetFaultInjector::Config nf;
        nf.seed = 0x5e4f;
        nf.rate[static_cast<std::size_t>(spec.point)] = spec.rate;
        nf.max_fires[static_cast<std::size_t>(spec.point)] = spec.max_fires;
        const auto chaos = std::make_shared<net::NetFaultInjector>(nf);
        shcfg.net.chaos = chaos;
        net::ShardedServer server(forest, background, cfg, shcfg);
        server.set_row_lookup(
            [&task](std::size_t row, std::vector<double>& features) {
                if (row >= task.train.size()) return false;
                const auto x = task.train.x.row(row);
                features.assign(x.begin(), x.end());
                return true;
            });
        std::string error;
        if (!server.start(&error)) {
            std::fprintf(stderr, "listen failed: %s\n", error.c_str());
            return 1;
        }
        std::thread loop([&server] { server.run(); });

        for (std::size_t s = 0; s < server.shards(); ++s)
            for (std::size_t row = 0; row < hot_rows; ++row) {
                serve::ExplainRequest er;
                er.id = row + 1;
                const auto x = task.train.x.row(row);
                er.features.assign(x.begin(), x.end());
                if (!server.service(s).explain_sync(std::move(er)).ok) {
                    std::fprintf(stderr, "prime failed on shard %zu\n", s);
                    return 1;
                }
            }

        // For shard_death, a 1ms sampler turns (fault fired -> respawn
        // observed) into a recovery-time measurement.
        std::atomic<bool> sampling{spec.point == net::NetFaultPoint::shard_death};
        std::atomic<double> recovery_ms{-1.0};
        std::thread sampler;
        if (sampling.load()) {
            sampler = std::thread([&] {
                using Clock = std::chrono::steady_clock;
                Clock::time_point died{};
                while (sampling.load(std::memory_order_relaxed)) {
                    if (died == Clock::time_point{} &&
                        chaos->fired(net::NetFaultPoint::shard_death) > 0)
                        died = Clock::now();
                    if (died != Clock::time_point{} && server.shard_respawns() > 0) {
                        recovery_ms.store(
                            std::chrono::duration<double, std::milli>(Clock::now() -
                                                                      died)
                                .count());
                        return;
                    }
                    std::this_thread::sleep_for(std::chrono::milliseconds(1));
                }
            });
        }

        net::LoadgenConfig lg;
        lg.port = server.port();
        lg.window = window;
        lg.record_latency = true;
        lg.timeout = std::chrono::milliseconds(120000);
        if (spec.retry_mode) {
            lg.max_retries = 16;
            lg.response_timeout = std::chrono::milliseconds(2000);
            lg.connect_timeout = std::chrono::milliseconds(2000);
            lg.backoff_base = std::chrono::milliseconds(5);
            lg.retry_seed = 9;
        }

        bench::Stopwatch watch;
        const auto report = net::run_load(lg, scripts);
        const double elapsed_ms = watch.ms();

        if (sampler.joinable()) {
            // Give the supervisor a beat to finish a respawn still in
            // flight, then stop sampling either way.
            for (int i = 0; i < 2000 && recovery_ms.load() < 0.0; ++i)
                std::this_thread::sleep_for(std::chrono::milliseconds(1));
            sampling.store(false);
            sampler.join();
        }

        ClassResult res;
        res.respawns = server.shard_respawns();
        server.request_drain();
        loop.join();
        server.stop_services();

        res.faults = chaos->total_fired();
        res.recovery_ms = recovery_ms.load();
        res.clean = !report.timed_out;
        std::vector<double> merged;
        for (const auto& conn : report.conns) {
            res.clean = res.clean && !conn.connect_failed && !conn.io_error;
            const std::size_t got = conn.lines.size() - conn.duplicates;
            res.clean = res.clean && got == n;
            res.answered += got;
            res.retries += conn.retries + conn.reconnects;
            res.reconnects += conn.reconnects;
            merged.insert(merged.end(), conn.latency_us.begin(),
                          conn.latency_us.end());
        }
        std::sort(merged.begin(), merged.end());
        res.req_per_sec =
            elapsed_ms > 0.0
                ? 1000.0 * static_cast<double>(res.answered) / elapsed_ms
                : 0.0;
        res.p50_us = percentile(merged, 0.50);
        res.p99_us = percentile(merged, 0.99);
        if (std::string(spec.name) == "none") baseline_p99 = res.p99_us;

        // Gates.  Chunking classes: clean completion and a generous p99
        // delta vs baseline (100x with a 50ms floor — catches lockups, not
        // honest fault-induced latency).  Retry classes: exactly-once
        // completion; shard_death additionally one respawn recovered within
        // 5s (100 heartbeat intervals — CI machines stall).
        bool class_ok = res.clean;
        if (!spec.retry_mode && baseline_p99 > 0.0)
            class_ok = class_ok &&
                       res.p99_us <= std::max(50000.0, 100.0 * baseline_p99);
        if (spec.point == net::NetFaultPoint::shard_death) {
            class_ok = class_ok && res.respawns == 1 && res.recovery_ms >= 0.0 &&
                       res.recovery_ms <= 5000.0;
        }
        pass = pass && class_ok;

        std::printf("%-14s %9.0f %9.1f %9.1f %8llu %8llu %8llu %9.1f %6s\n",
                    spec.name, res.req_per_sec, res.p50_us, res.p99_us,
                    static_cast<unsigned long long>(res.faults),
                    static_cast<unsigned long long>(res.retries),
                    static_cast<unsigned long long>(res.reconnects),
                    res.recovery_ms, class_ok ? "yes" : "NO");

        char obj[420];
        std::snprintf(
            obj, sizeof(obj),
            "{\"fault\": \"%s\", \"req_per_sec\": %.1f, \"p50_us\": %.1f, "
            "\"p99_us\": %.1f, \"answered\": %llu, \"faults_fired\": %llu, "
            "\"retries\": %llu, \"reconnects\": %llu, \"respawns\": %llu, "
            "\"recovery_ms\": %.1f, \"clean\": %s}",
            spec.name, res.req_per_sec, res.p50_us, res.p99_us,
            static_cast<unsigned long long>(res.answered),
            static_cast<unsigned long long>(res.faults),
            static_cast<unsigned long long>(res.retries),
            static_cast<unsigned long long>(res.reconnects),
            static_cast<unsigned long long>(res.respawns), res.recovery_ms,
            res.clean ? "true" : "false");
        artifact.add_object(obj);
    }

    if (artifact.write(json_path))
        std::printf("\nwrote %s\n", json_path.c_str());
    else
        std::printf("\nFAILED to write %s\n", json_path.c_str());

    std::printf("resilience gates: [%s]\n", pass ? "PASS" : "FAIL");
    return pass ? 0 : 1;
}
