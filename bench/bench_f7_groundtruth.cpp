// F7 — explanation faithfulness against *simulator ground truth*.
//
// The advantage of a simulated substrate no testbed can match: the true
// causal sensitivity of chain latency to each input is computable by
// re-simulating with that input perturbed.  This harness compares, per
// chain-epoch:
//
//   ground truth :  elasticity e_j = (dL/L) / (dx_j/x_j) from +/-5%
//                   re-simulation of the *simulator* itself,
//   explanation  :  |SHAP| of the trained config-only latency model, and
//                   LIME's local slopes.
//
// Reported: mean Spearman rank agreement between |SHAP| and the ground
// truth (both raw elasticity and elasticity x actual deviation), top-1
// driver match rate, and the sign agreement of LIME slopes with the true
// derivatives.  A random-attribution baseline calibrates the scale.
#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "core/lime.hpp"
#include "core/tree_shap.hpp"
#include "mlcore/metrics.hpp"
#include "nfv/placement.hpp"
#include "nfv/simulator.hpp"

namespace ml = xnfv::ml;
namespace nfv = xnfv::nfv;
namespace wl = xnfv::wl;
namespace xai = xnfv::xai;
using namespace xnfv::bench;

namespace {

/// One probe deployment: a single randomized chain plus its offered load.
struct Probe {
    nfv::Infrastructure infra;
    nfv::Deployment dep;
    nfv::OfferedLoad load;
};

Probe sample_probe(ml::Rng& rng) {
    Probe p;
    p.infra = nfv::Infrastructure::homogeneous_pop(2, nfv::Server{});
    const auto tmpl = static_cast<wl::ChainTemplate>(rng.uniform_index(5));
    nfv::make_chain(p.dep, "c", wl::chain_types(tmpl), rng.uniform(0.5, 2.0), {},
                    static_cast<std::uint32_t>(rng.uniform_int(100, 4000)));
    nfv::place(p.dep, p.infra, nfv::PlacementStrategy::first_fit, rng);
    p.load = nfv::OfferedLoad{.pps = rng.uniform(3e4, 2.2e5),
                              .avg_pkt_bytes = rng.uniform(200.0, 1200.0),
                              .active_flows = rng.uniform(2e3, 5e4),
                              .burstiness_ca2 = rng.uniform(1.0, 6.0)};
    return p;
}

double latency_of(const Probe& p) {
    return nfv::simulate_epoch(p.dep, p.infra, {p.load}).chains[0].latency_s;
}

/// Controllable simulator inputs and the config feature each maps onto.
struct Knob {
    const char* feature;
    /// Multiplies the knob by `factor` in a copy of the probe.
    void (*apply)(Probe&, double factor);
};

const Knob kKnobs[] = {
    {"offered_pps", [](Probe& p, double f) { p.load.pps *= f; }},
    {"avg_pkt_bytes", [](Probe& p, double f) { p.load.avg_pkt_bytes *= f; }},
    {"active_flows", [](Probe& p, double f) { p.load.active_flows *= f; }},
    {"burstiness_ca2", [](Probe& p, double f) { p.load.burstiness_ca2 *= f; }},
    {"min_cpu_cores",
     [](Probe& p, double f) {
         for (auto& v : p.dep.vnfs) v.cpu_cores *= f;
     }},
    {"total_rules",
     [](Probe& p, double f) {
         for (auto& v : p.dep.vnfs)
             v.num_rules = static_cast<std::uint32_t>(v.num_rules * f);
     }},
};

/// Signed elasticities of latency w.r.t. each knob (central differences).
std::vector<double> ground_truth_elasticities(const Probe& probe) {
    const double base = latency_of(probe);
    std::vector<double> out;
    for (const Knob& knob : kKnobs) {
        Probe up = probe, down = probe;
        knob.apply(up, 1.05);
        knob.apply(down, 0.95);
        out.push_back((latency_of(up) - latency_of(down)) / (0.10 * base));
    }
    return out;
}

}  // namespace

int main() {
    // The explained model: config-only latency RF (same setting as F5/A2).
    const auto task = make_sla_task(8000, /*seed=*/4321, nfv::LabelKind::latency_ms,
                                    nfv::FeatureSet::config_only);
    const auto forest = train_forest(task.train, /*seed=*/43);
    const xai::BackgroundData background(task.train.x, 128);
    const auto names = nfv::feature_names(nfv::FeatureSet::config_only);
    std::vector<std::size_t> knob_to_feature;
    for (const Knob& knob : kKnobs)
        knob_to_feature.push_back(
            nfv::feature_index(nfv::FeatureSet::config_only, knob.feature));

    xai::TreeShap tree_shap;
    xai::Lime lime(background, ml::Rng(44), xai::Lime::Config{.num_samples = 2000});

    ml::Rng rng(45);
    double rho_shap = 0.0, rho_sens = 0.0, rho_random = 0.0, top1 = 0.0, lime_signs = 0.0,
           lime_sign_total = 0.0;
    const int n_probes = 40;
    for (int rep = 0; rep < n_probes; ++rep) {
        const Probe probe = sample_probe(rng);

        // Ground truth from the simulator itself.
        const auto elasticity = ground_truth_elasticities(probe);
        std::vector<double> gt_abs(elasticity.size());
        for (std::size_t k = 0; k < elasticity.size(); ++k)
            gt_abs[k] = std::abs(elasticity[k]);

        // Model-side view of the same chain-epoch.
        const auto epoch = nfv::simulate_epoch(probe.dep, probe.infra, {probe.load});
        const auto features = nfv::extract_features(
            nfv::FeatureSet::config_only, probe.dep, probe.infra, {probe.load}, epoch, 0);

        const auto e_shap = tree_shap.explain(forest, features);
        (void)lime.explain(forest, features);
        const auto& lime_slopes = lime.last_fit().coefficients;

        // Restrict both rankings to the controllable knobs.  |SHAP| measures
        // the *effect* of x_j's deviation from typical, not raw sensitivity,
        // so the fair ground-truth counterpart is the first-order effect
        // |e_j * (x_j - mean_j) / x_j| * L — elasticity times the relative
        // deviation this instance actually exhibits.
        const auto& mu = background.means();
        std::vector<double> shap_abs, rand_abs, gt_effect;
        for (std::size_t k = 0; k < knob_to_feature.size(); ++k) {
            const std::size_t j = knob_to_feature[k];
            shap_abs.push_back(std::abs(e_shap.attributions[j]));
            rand_abs.push_back(rng.uniform());
            const double rel_dev =
                (features[j] - mu[j]) / std::max(std::abs(features[j]), 1e-9);
            gt_effect.push_back(gt_abs[k] * std::abs(rel_dev));
        }
        rho_shap += ml::spearman(gt_effect, shap_abs);
        rho_sens += ml::spearman(gt_abs, shap_abs);
        rho_random += ml::spearman(gt_effect, rand_abs);
        top1 += ml::topk_overlap(gt_effect, shap_abs, 1);

        // LIME slope sign vs true derivative sign, on meaningful knobs only.
        for (std::size_t k = 0; k < std::size(kKnobs); ++k) {
            if (gt_abs[k] < 0.05) continue;  // causally inert here
            lime_sign_total += 1.0;
            const double slope = lime_slopes[knob_to_feature[k]];
            if (slope * elasticity[k] > 0.0) lime_signs += 1.0;
        }
    }

    print_header("F7", "explanation faithfulness vs simulator ground truth");
    std::printf("%d probe deployments; ground truth = +/-5%% re-simulation\n\n",
                n_probes);
    print_rule();
    std::printf("mean Spearman(|SHAP|, gt effect):        %6.3f\n", rho_shap / n_probes);
    std::printf("mean Spearman(|SHAP|, |elasticity|):     %6.3f\n", rho_sens / n_probes);
    std::printf("mean Spearman(random, gt effect):        %6.3f\n",
                rho_random / n_probes);
    std::printf("top-1 gt-effect driver matched by SHAP:  %5.1f%%\n",
                100.0 * top1 / n_probes);
    std::printf("LIME slope sign agreement (|e|>=0.05):   %5.1f%%  (%d checks)\n",
                lime_sign_total > 0 ? 100.0 * lime_signs / lime_sign_total : 0.0,
                static_cast<int>(lime_sign_total));
    std::printf("\nexpected shape: SHAP rank agreement clearly positive against a\n"
                "~zero random baseline, with top-1 above the 1/6 chance level; the\n"
                "sharpest faithfulness signal is directional — LIME's local slopes\n"
                "match the true derivative signs for the causally active inputs.\n"
                "(|SHAP| blends sensitivity with deviation magnitude and the model\n"
                "was trained on a different deployment mix than the probes, so\n"
                "perfect rank agreement is not achievable by construction.)\n");
    return 0;
}
