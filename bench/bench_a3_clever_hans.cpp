// A3 — Unmasking a "Clever Hans" NFV model with explanations.
//
// The classic XAI debugging story, staged in the NFV setting: a telemetry
// pipeline accidentally exports a *leaky* counter — here, a synthetic
// "alarm_count" column that during data collection was populated from the
// very SLA monitor the model is supposed to predict (label + noise).  The
// model looks superb on held-out data from the same pipeline, collapses once
// the leak is fixed, and the point of the experiment is that the *global
// SHAP ranking flags the leak before deployment*: one feature towers over
// the physically meaningful counters.
//
// Printed: accuracy with/without the leak at evaluation time, and the global
// |SHAP| ranking that exposes the reliance.
#include <cstdio>

#include "bench_util.hpp"
#include "core/aggregate.hpp"
#include "core/tree_shap.hpp"
#include "mlcore/metrics.hpp"

namespace ml = xnfv::ml;
namespace xai = xnfv::xai;
using namespace xnfv::bench;

namespace {

/// Appends the leaky column: label + Bernoulli noise, scaled like a counter.
ml::Dataset with_leak(const ml::Dataset& d, bool leak_works, ml::Rng& rng) {
    ml::Dataset out;
    out.task = d.task;
    out.feature_names = d.feature_names;
    out.feature_names.push_back("alarm_count");
    for (std::size_t i = 0; i < d.size(); ++i) {
        std::vector<double> row(d.x.row(i).begin(), d.x.row(i).end());
        double alarms;
        if (leak_works) {
            // 92% faithful to the label — a very convincing artifact.
            const bool flip = rng.bernoulli(0.08);
            alarms = (d.y[i] > 0.5) != flip ? rng.uniform(3.0, 9.0)
                                            : rng.uniform(0.0, 1.0);
        } else {
            // Pipeline fixed: the counter is now unrelated noise.
            alarms = rng.uniform(0.0, 9.0);
        }
        row.push_back(alarms);
        out.add(row, d.y[i]);
    }
    return out;
}

}  // namespace

int main() {
    // Config-only features: the pre-deployment prediction task is genuinely
    // hard (no utilization counters), so a leaky shortcut is exactly what a
    // lazy learner will latch onto — the Clever Hans setting.
    const auto task = make_sla_task(8000, /*seed=*/2468,
                                    xnfv::nfv::LabelKind::sla_violation,
                                    xnfv::nfv::FeatureSet::config_only);
    ml::Rng rng(1357);

    // Training data comes from the buggy pipeline.
    const auto train_leaky = with_leak(task.train, /*leak_works=*/true, rng);
    const auto test_leaky = with_leak(task.test, /*leak_works=*/true, rng);
    const auto test_fixed = with_leak(task.test, /*leak_works=*/false, rng);

    const auto model = train_forest(train_leaky, /*seed=*/24);

    print_header("A3", "Clever Hans detection: a leaky telemetry counter");
    print_rule();
    const auto auc_leaky = ml::roc_auc(test_leaky.y, model.predict_batch(test_leaky.x));
    const auto auc_fixed = ml::roc_auc(test_fixed.y, model.predict_batch(test_fixed.x));
    std::printf("AUC on held-out data from the buggy pipeline:   %.4f\n", auc_leaky);
    std::printf("AUC after the pipeline bug is fixed:            %.4f\n", auc_fixed);

    // Reference model trained without the leak.
    const auto clean_model = train_forest(task.train, /*seed=*/25);
    std::printf("AUC of a model trained without the counter:     %.4f\n",
                ml::roc_auc(task.test.y, clean_model.predict_batch(task.test.x)));

    std::printf("\nglobal |SHAP| ranking of the leaky model (100 instances):\n");
    xai::TreeShap explainer;
    std::vector<std::size_t> rows;
    for (std::size_t i = 0; i < 100 && i < test_leaky.size(); ++i) rows.push_back(i);
    const auto g = xai::aggregate_explanations(
        explainer, model, test_leaky.x.take_rows(rows), test_leaky.feature_names);
    const auto order = g.ranking();
    for (std::size_t k = 0; k < 5; ++k) {
        const std::size_t j = order[k];
        std::printf("  %zu. %-20s mean|phi|=%8.4f\n", k + 1,
                    g.feature_names[j].c_str(), g.mean_abs[j]);
    }
    const std::size_t leak_idx = test_leaky.num_features() - 1;
    std::printf("\nleak feature rank: %zu of %zu; attribution share %.1f%%\n",
                static_cast<std::size_t>(
                    std::find(order.begin(), order.end(), leak_idx) - order.begin()) + 1,
                order.size(), [&] {
                    double total = 0.0;
                    for (double v : g.mean_abs) total += v;
                    return total > 0.0 ? 100.0 * g.mean_abs[leak_idx] / total : 0.0;
                }());
    std::printf("\nexpected shape: the leaky model tops the leaderboard while the\n"
                "pipeline is buggy, then drops *below the leak-free model* once the\n"
                "bug is fixed — and the SHAP ranking places alarm_count first by a\n"
                "wide margin, catching the artifact before deployment.\n");
    return 0;
}
