// T4 — Counterfactual actionability.
//
// Over confidently predicted SLA violations, searches for the smallest
// actionable change (capacity scaling, placement, rule trimming — never the
// offered traffic) that flips the RF's prediction.  Reports success rate,
// mean number of changed features, mean standardized L1 distance, and which
// features are changed most often.  Expected shape: most violations are
// fixable by changing 1-3 capacity-related features.
#include <cstdio>
#include <map>

#include "bench_util.hpp"
#include "core/counterfactual.hpp"
#include "nfv/telemetry.hpp"

namespace ml = xnfv::ml;
namespace nfv = xnfv::nfv;
namespace xai = xnfv::xai;
using namespace xnfv::bench;

int main() {
    const auto task = make_sla_task(8000, /*seed=*/555);
    const auto forest = train_forest(task.train, /*seed=*/55);
    const xai::BackgroundData background(task.train.x, 128);

    const auto fidx = [](const char* name) {
        return nfv::feature_index(nfv::FeatureSet::full_telemetry, name);
    };
    std::vector<bool> actionable(task.train.num_features(), false);
    for (const char* name : {"min_cpu_cores", "total_cpu_cores", "total_rules",
                             "colocated_vnfs", "hop_count", "max_vnf_cpu_util",
                             "mean_vnf_cpu_util", "max_server_cpu", "max_server_mem",
                             "max_cache_pressure", "max_link_util"})
        actionable[fidx(name)] = true;

    ml::Rng rng(56);
    std::size_t tried = 0, solved = 0;
    double total_changes = 0.0, total_l1 = 0.0;
    std::map<std::string, int> change_counts;

    for (std::size_t i = 0; i < task.test.size() && tried < 200; ++i) {
        const auto x = task.test.x.row(i);
        if (forest.predict(x) < 0.7) continue;
        ++tried;
        xai::CounterfactualOptions opt;
        opt.actionable = actionable;
        const auto cf = xai::find_counterfactual(forest, x, background, rng, opt);
        if (!cf) continue;
        ++solved;
        total_changes += static_cast<double>(cf->changed.size());
        total_l1 += cf->l1_distance;
        for (const std::size_t j : cf->changed)
            ++change_counts[task.train.feature_names[j]];
    }

    print_header("T4", "counterfactual actionability on predicted SLA violations");
    print_rule();
    std::printf("violations examined:        %zu\n", tried);
    std::printf("actionable flips found:     %zu (%.1f%%)\n", solved,
                tried ? 100.0 * solved / tried : 0.0);
    if (solved > 0) {
        std::printf("mean features changed:      %.2f\n", total_changes / solved);
        std::printf("mean standardized L1 dist:  %.3f\n", total_l1 / solved);
        std::printf("\nmost frequently changed features:\n");
        std::vector<std::pair<int, std::string>> sorted;
        for (const auto& [name, count] : change_counts) sorted.emplace_back(count, name);
        std::sort(sorted.rbegin(), sorted.rend());
        for (std::size_t k = 0; k < 5 && k < sorted.size(); ++k)
            std::printf("  %-20s %d\n", sorted[k].second.c_str(), sorted[k].first);
    }
    std::printf("\nexpected shape: >60%% success with 1-3 changed capacity features.\n");
    return 0;
}
