// S2 — TCP serving: throughput and tail latency of the thread-per-core
// sharded epoll front-end (src/net/) versus shard count and connection
// count.
//
// Each cell starts a fresh ShardedServer (N SO_REUSEPORT event-loop +
// service shards) on an ephemeral loopback port, primes every shard's cache
// with the hot row set (directly, so the kernel's connection hashing cannot
// leave a shard cold), then drives it with the multiplexed epoll load
// generator (net/loadgen.hpp) — one client thread holding every connection,
// which is what lets the sweep's big cell run ~10k concurrent connections.
// Requests revisit the hot rows, so the sweep measures the cached-hit
// serving path — the steady state for repetitive NFV telemetry — end to end
// through accept, frame decode, slot pipeline, and write-back.
//
// Equivalence is asserted inside the sweep: for every connection-count
// column, each multi-shard cell's per-connection response streams must be
// byte-identical to the 1-shard cell's (modulo the "cache_hit" flag, which
// is cross-connection-timing-dependent on ANY shard count).
//
// Output: a fixed-format table (req/s, p50/p95/p99 round-trip) and a JSON
// artifact (default BENCH_s2_tcp.json, overridable via argv[1]) for CI to
// archive.  Sizes are overridable through XNFV_TCP_REQUESTS (per connection
// at the 8-connection column; other columns scale to the same total),
// XNFV_TCP_WINDOW, and XNFV_TCP_STORM (target size of the big column,
// default 10000, clamped to what RLIMIT_NOFILE can hold in one process).
// Exit status checks two floors: >= 5000 req/s cached-hit at 1 shard x 8
// connections, and — on hosts with >= 4 cores — >= 3x the 1-shard
// throughput at 4 shards on the contended column.
#include <sys/resource.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <regex>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "net/loadgen.hpp"
#include "net/sharded_server.hpp"
#include "serve/ndjson.hpp"
#include "serve/service.hpp"

namespace bench = xnfv::bench;
namespace ml = xnfv::ml;
namespace net = xnfv::net;
namespace serve = xnfv::serve;
namespace xai = xnfv::xai;

namespace {

std::size_t env_size(const char* name, std::size_t fallback) {
    const char* raw = std::getenv(name);
    if (!raw || !*raw) return fallback;
    const long value = std::atol(raw);
    return value > 0 ? static_cast<std::size_t>(value) : fallback;
}

std::string request_line(std::uint64_t id, std::size_t row) {
    serve::JsonWriter w;
    w.field("op", "explain");
    w.field("id", id);
    w.field("row", static_cast<std::uint64_t>(row));
    return w.finish();
}

double percentile(const std::vector<double>& sorted, double q) {
    if (sorted.empty()) return 0.0;
    const auto idx = static_cast<std::size_t>(
        q * static_cast<double>(sorted.size() - 1) + 0.5);
    return sorted[std::min(idx, sorted.size() - 1)];
}

/// "cache_hit" depends on which connection's request computed the entry
/// first — cross-connection timing, not shard placement — so the byte
/// equivalence check blanks it on both sides.
std::string normalize_hit(const std::string& line) {
    static const std::regex hit("\"cache_hit\":(true|false)");
    return std::regex_replace(line, hit, "\"cache_hit\":_");
}

/// Largest connection count one process can hold: 2 fds per loopback
/// connection (client + accepted side) plus headroom for listeners, epoll,
/// eventfds, and whatever the harness already has open.
std::size_t fd_budget_conns(std::size_t target) {
    rlimit lim{};
    if (::getrlimit(RLIMIT_NOFILE, &lim) != 0) return std::min<std::size_t>(target, 256);
    if (lim.rlim_cur < lim.rlim_max) {
        lim.rlim_cur = lim.rlim_max;
        ::setrlimit(RLIMIT_NOFILE, &lim);
        ::getrlimit(RLIMIT_NOFILE, &lim);
    }
    const auto usable = static_cast<std::size_t>(lim.rlim_cur);
    if (usable <= 512) return std::min<std::size_t>(target, 64);
    return std::min(target, (usable - 512) / 2);
}

struct CellResult {
    double req_per_sec = 0.0;
    double p50_us = 0.0;
    double p95_us = 0.0;
    double p99_us = 0.0;
    double hit_rate = 0.0;
    /// Per-connection normalized response streams, for cross-shard
    /// equivalence (empty on the storm column to bound memory).
    std::vector<std::string> streams;
};

}  // namespace

int main(int argc, char** argv) {
    bench::print_header(
        "S2", "sharded TCP serving: throughput and tail latency over loopback");

    const std::size_t base_per_conn = env_size("XNFV_TCP_REQUESTS", 2000);
    const std::size_t window = env_size("XNFV_TCP_WINDOW", 32);
    const std::size_t storm_target = env_size("XNFV_TCP_STORM", 10000);
    const std::size_t storm_conns = fd_budget_conns(storm_target);
    const std::size_t hot_rows = 16;
    const std::string json_path = argc > 1 ? argv[1] : "BENCH_s2_tcp.json";

    auto task = bench::make_sla_task(1000, 2020);
    const auto forest =
        std::make_shared<ml::RandomForest>(bench::train_forest(task.train, 7));
    const xai::BackgroundData background(task.train.x, 128);

    const std::vector<std::size_t> shard_counts{1, 2, 4};
    const std::vector<std::size_t> conn_counts{8, 64, storm_conns};
    // Every column serves roughly the same total so cells are comparable.
    const std::size_t total_requests = 8 * base_per_conn;

    if (storm_conns < storm_target)
        std::printf("\nnote: RLIMIT_NOFILE clamps the storm column to %zu "
                    "connections (target %zu)\n",
                    storm_conns, storm_target);
    std::printf("\nmethod=tree_shap  total-requests/cell=%zu  window=%zu  "
                "(round-trip us)\n",
                total_requests, window);
    std::printf("%-7s %-7s %10s %9s %9s %9s %9s %6s\n", "shards", "conns",
                "req/s", "p50us", "p95us", "p99us", "hitrate", "bytes");
    bench::print_rule();

    bench::JsonArtifact artifact("tcp_serving_sharded");
    double floor_1shard_8conn = 0.0;
    double contended_by_shards[8] = {0};  // indexed by shard count
    bool bytes_ok = true;

    for (const std::size_t conns : conn_counts) {
        const std::size_t per_conn = std::max<std::size_t>(2, total_requests / conns);
        const bool keep_streams = conns <= 64;
        std::vector<std::string> reference;  // 1-shard streams, this column

        // One deterministic script set per column, replayed at every shard
        // count so the byte comparison is apples to apples.
        std::vector<std::vector<std::string>> scripts(conns);
        for (std::size_t c = 0; c < conns; ++c) {
            auto& script = scripts[c];
            script.reserve(per_conn + 1);
            for (std::size_t r = 0; r < per_conn; ++r)
                script.push_back(request_line(r + 1, (c + r) % hot_rows));
            script.push_back("{\"op\":\"quit\"}");
        }

        for (const std::size_t shards : shard_counts) {
            serve::ServiceConfig cfg;
            cfg.method = "tree_shap";
            // Admit the whole offered load (conns x window in flight): a
            // too-small queue turns timing jitter into queue_full rejection
            // lines, and the sweep is measuring serving, not shedding.
            cfg.queue_depth = std::max<std::size_t>(
                1024, conns * std::min(window, per_conn) + 256);
            cfg.max_batch = 16;
            cfg.max_wait = std::chrono::microseconds(100);
            cfg.cache_capacity = 8192;

            net::ShardedServerConfig shcfg;
            shcfg.net.max_connections = conns + 64;
            shcfg.shards = shards;
            net::ShardedServer server(forest, background, cfg, shcfg);
            server.set_row_lookup(
                [&task](std::size_t row, std::vector<double>& features) {
                    if (row >= task.train.size()) return false;
                    const auto x = task.train.x.row(row);
                    features.assign(x.begin(), x.end());
                    return true;
                });
            std::string error;
            if (!server.start(&error)) {
                std::fprintf(stderr, "listen failed: %s\n", error.c_str());
                return 1;
            }
            std::thread loop([&server] { server.run(); });

            // Prime every shard's cache slice directly — a TCP primer would
            // only warm the shard the kernel happened to hash it onto.
            for (std::size_t s = 0; s < server.shards(); ++s) {
                for (std::size_t row = 0; row < hot_rows; ++row) {
                    serve::ExplainRequest er;
                    er.id = row + 1;
                    const auto x = task.train.x.row(row);
                    er.features.assign(x.begin(), x.end());
                    const auto r = server.service(s).explain_sync(std::move(er));
                    if (!r.ok) {
                        std::fprintf(stderr, "prime failed on shard %zu\n", s);
                        return 1;
                    }
                }
            }

            net::LoadgenConfig lg;
            lg.port = server.port();
            lg.window = window;
            lg.record_latency = true;
            lg.timeout = std::chrono::milliseconds(120000);

            bench::Stopwatch watch;
            const auto report = net::run_load(lg, scripts);
            const double elapsed_ms = watch.ms();

            const auto stats = server.stats();
            server.request_drain();
            loop.join();
            server.stop_services();

            std::uint64_t answered = 0;
            std::vector<double> merged;
            merged.reserve(conns * per_conn);
            for (const auto& conn : report.conns) {
                if (conn.connect_failed || conn.io_error || !conn.partial.empty() ||
                    conn.lines.size() != per_conn) {
                    std::fprintf(stderr,
                                 "client stream broken in %zux%zu cell "
                                 "(connect_failed=%d io_error=%d lines=%zu/%zu)\n",
                                 shards, conns, static_cast<int>(conn.connect_failed),
                                 static_cast<int>(conn.io_error), conn.lines.size(),
                                 per_conn);
                    return 1;
                }
                answered += conn.lines.size();
                merged.insert(merged.end(), conn.latency_us.begin(),
                              conn.latency_us.end());
            }
            if (report.timed_out) {
                std::fprintf(stderr, "load timed out in %zux%zu cell\n", shards,
                             conns);
                return 1;
            }
            std::sort(merged.begin(), merged.end());

            // Cross-shard byte equivalence against this column's 1-shard run.
            bool cell_bytes_ok = true;
            if (keep_streams) {
                std::vector<std::string> streams(conns);
                for (std::size_t c = 0; c < conns; ++c) {
                    std::string joined;
                    for (const auto& line : report.conns[c].lines) {
                        joined += normalize_hit(line);
                        joined += '\n';
                    }
                    streams[c] = std::move(joined);
                }
                if (shards == 1)
                    reference = streams;
                else
                    cell_bytes_ok = streams == reference;
                bytes_ok = bytes_ok && cell_bytes_ok;
            }

            CellResult cell;
            cell.req_per_sec = elapsed_ms > 0.0
                                   ? 1000.0 * static_cast<double>(answered) / elapsed_ms
                                   : 0.0;
            cell.p50_us = percentile(merged, 0.50);
            cell.p95_us = percentile(merged, 0.95);
            cell.p99_us = percentile(merged, 0.99);
            cell.hit_rate = stats.cache_hit_rate();
            if (shards == 1 && conns == 8)
                floor_1shard_8conn = cell.req_per_sec;
            if (conns == 64 && shards < 8)
                contended_by_shards[shards] = cell.req_per_sec;

            std::printf("%-7zu %-7zu %10.0f %9.1f %9.1f %9.1f %9.3f %6s\n",
                        shards, conns, cell.req_per_sec, cell.p50_us, cell.p95_us,
                        cell.p99_us, cell.hit_rate,
                        keep_streams ? (cell_bytes_ok ? "same" : "DIFF") : "-");
            char obj[360];
            std::snprintf(
                obj, sizeof(obj),
                "{\"shards\": %zu, \"connections\": %zu, \"requests\": %llu, "
                "\"req_per_sec\": %.1f, \"p50_us\": %.1f, \"p95_us\": %.1f, "
                "\"p99_us\": %.1f, \"cache_hit_rate\": %.4f, \"bytes_ok\": %s}",
                shards, conns, static_cast<unsigned long long>(answered),
                cell.req_per_sec, cell.p50_us, cell.p95_us, cell.p99_us,
                cell.hit_rate,
                keep_streams ? (cell_bytes_ok ? "true" : "false") : "null");
            artifact.add_object(obj);
        }
    }

    if (artifact.write(json_path))
        std::printf("\nwrote %s\n", json_path.c_str());
    else
        std::printf("\nFAILED to write %s\n", json_path.c_str());

    bool pass = bytes_ok;
    std::printf("cross-shard response bytes: [%s]\n", bytes_ok ? "PASS" : "FAIL");
    std::printf("cached-hit throughput at 1 shard x 8 connections: %.0f req/s  "
                "[%s] (target >= 5000)\n",
                floor_1shard_8conn,
                floor_1shard_8conn >= 5000.0 ? "PASS" : "FAIL");
    pass = pass && floor_1shard_8conn >= 5000.0;

    // The scaling floor only binds where the hardware can actually run 4
    // loop threads in parallel.
    const auto cores = std::thread::hardware_concurrency();
    const double speedup = contended_by_shards[1] > 0.0
                               ? contended_by_shards[4] / contended_by_shards[1]
                               : 0.0;
    if (cores >= 4) {
        std::printf("4-shard speedup on the 64-connection column: %.2fx  [%s] "
                    "(target >= 3x)\n",
                    speedup, speedup >= 3.0 ? "PASS" : "FAIL");
        pass = pass && speedup >= 3.0;
    } else {
        std::printf("4-shard speedup on the 64-connection column: %.2fx  "
                    "[SKIP: %u core(s), scaling floor needs >= 4]\n",
                    speedup, cores);
    }
    return pass ? 0 : 1;
}
