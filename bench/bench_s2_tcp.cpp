// S2 — TCP serving: throughput and tail latency of the epoll front-end
// (src/net/) versus connection count and micro-batch size.
//
// Each cell starts a fresh ExplanationService + ExplanationServer on an
// ephemeral loopback port, primes the cache with the hot row set, then
// drives it with one blocking net::Client per connection, each pipelining a
// window of requests so the wire stays full.  Requests revisit the hot rows,
// so the sweep measures the cached-hit serving path — the steady state for
// repetitive NFV telemetry — end to end through accept, frame decode, slot
// pipeline, and write-back.
//
// Output: a fixed-format table (req/s, p50/p95/p99 round-trip) and a JSON
// artifact (default BENCH_s2_tcp.json, overridable via argv[1]) for CI to
// archive.  Sizes are overridable through XNFV_TCP_REQUESTS (per
// connection) and XNFV_TCP_WINDOW for a quick smoke run.  Exit status
// checks the acceptance floor: >= 5000 req/s cached-hit at 8 connections.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "serve/ndjson.hpp"
#include "serve/service.hpp"

namespace bench = xnfv::bench;
namespace ml = xnfv::ml;
namespace net = xnfv::net;
namespace serve = xnfv::serve;
namespace xai = xnfv::xai;

namespace {

std::size_t env_size(const char* name, std::size_t fallback) {
    const char* raw = std::getenv(name);
    if (!raw || !*raw) return fallback;
    const long value = std::atol(raw);
    return value > 0 ? static_cast<std::size_t>(value) : fallback;
}

std::string request_line(std::uint64_t id, std::size_t row) {
    serve::JsonWriter w;
    w.field("op", "explain");
    w.field("id", id);
    w.field("row", static_cast<std::uint64_t>(row));
    return w.finish();
}

double percentile(const std::vector<double>& sorted, double q) {
    if (sorted.empty()) return 0.0;
    const auto idx = static_cast<std::size_t>(
        q * static_cast<double>(sorted.size() - 1) + 0.5);
    return sorted[std::min(idx, sorted.size() - 1)];
}

struct CellResult {
    double req_per_sec = 0.0;
    double p50_us = 0.0;
    double p95_us = 0.0;
    double p99_us = 0.0;
    double hit_rate = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
    bench::print_header("S2", "TCP serving: throughput and tail latency over loopback");

    const std::size_t per_conn = env_size("XNFV_TCP_REQUESTS", 2000);
    const std::size_t window = env_size("XNFV_TCP_WINDOW", 32);
    const std::size_t hot_rows = 16;
    const std::string json_path = argc > 1 ? argv[1] : "BENCH_s2_tcp.json";

    auto task = bench::make_sla_task(1000, 2020);
    const auto forest =
        std::make_shared<ml::RandomForest>(bench::train_forest(task.train, 7));
    const xai::BackgroundData background(task.train.x, 128);

    std::printf("\nmethod=tree_shap  requests/conn=%zu  window=%zu  (round-trip us)\n",
                per_conn, window);
    std::printf("%-6s %-6s %10s %9s %9s %9s %9s\n", "conns", "batch", "req/s",
                "p50us", "p95us", "p99us", "hitrate");
    bench::print_rule();

    bench::JsonArtifact artifact("tcp_serving");
    double best_at_8 = 0.0;

    for (const std::size_t batch : {std::size_t{1}, std::size_t{16}}) {
        for (const std::size_t conns :
             {std::size_t{1}, std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
            serve::ServiceConfig cfg;
            cfg.method = "tree_shap";
            cfg.queue_depth = 1024;
            cfg.max_batch = batch;
            cfg.max_wait = std::chrono::microseconds(100);
            cfg.cache_capacity = 8192;
            serve::ExplanationService service(forest, background, cfg);

            net::ServerConfig server_cfg;
            server_cfg.max_connections = 64;
            net::ExplanationServer server(service, server_cfg);
            server.set_row_lookup(
                [&task](std::size_t row, std::vector<double>& features) {
                    if (row >= task.train.size()) return false;
                    const auto x = task.train.x.row(row);
                    features.assign(x.begin(), x.end());
                    return true;
                });
            std::string error;
            if (!server.start(&error)) {
                std::fprintf(stderr, "listen failed: %s\n", error.c_str());
                return 1;
            }
            std::thread loop([&server] { server.run(); });
            const std::uint16_t port = server.port();

            {
                // Prime the cache so the sweep measures the cached-hit path.
                net::Client primer;
                if (!primer.connect("127.0.0.1", port, &error)) {
                    std::fprintf(stderr, "connect failed: %s\n", error.c_str());
                    return 1;
                }
                std::string line;
                for (std::size_t row = 0; row < hot_rows; ++row) {
                    if (!primer.send_line(request_line(row + 1, row)) ||
                        !primer.recv_line(line, std::chrono::milliseconds(30000))) {
                        std::fprintf(stderr, "prime round-trip failed\n");
                        return 1;
                    }
                }
            }

            std::vector<std::vector<double>> latencies(conns);
            bool io_failed = false;
            bench::Stopwatch watch;
            std::vector<std::thread> clients;
            clients.reserve(conns);
            for (std::size_t c = 0; c < conns; ++c) {
                clients.emplace_back([&, c] {
                    net::Client client;
                    if (!client.connect("127.0.0.1", port)) {
                        io_failed = true;
                        return;
                    }
                    auto& lat = latencies[c];
                    lat.reserve(per_conn);
                    std::deque<std::chrono::steady_clock::time_point> sent_at;
                    std::string line;
                    std::size_t sent = 0;
                    std::size_t received = 0;
                    while (received < per_conn) {
                        while (sent < per_conn && sent - received < window) {
                            if (!client.send_line(request_line(
                                    sent + 1, (c + sent) % hot_rows))) {
                                io_failed = true;
                                return;
                            }
                            sent_at.push_back(std::chrono::steady_clock::now());
                            ++sent;
                        }
                        if (!client.recv_line(line,
                                              std::chrono::milliseconds(30000))) {
                            io_failed = true;
                            return;
                        }
                        const auto now = std::chrono::steady_clock::now();
                        lat.push_back(
                            std::chrono::duration<double, std::micro>(
                                now - sent_at.front())
                                .count());
                        sent_at.pop_front();
                        ++received;
                    }
                });
            }
            for (auto& t : clients) t.join();
            const double elapsed_ms = watch.ms();

            const auto stats = server.stats();
            server.request_drain();
            loop.join();
            service.stop();

            if (io_failed) {
                std::fprintf(stderr, "client I/O failed in %zu-conn cell\n", conns);
                return 1;
            }

            std::vector<double> merged;
            merged.reserve(conns * per_conn);
            for (const auto& lat : latencies)
                merged.insert(merged.end(), lat.begin(), lat.end());
            std::sort(merged.begin(), merged.end());

            CellResult cell;
            const auto total = static_cast<double>(conns) *
                               static_cast<double>(per_conn);
            cell.req_per_sec = elapsed_ms > 0.0 ? 1000.0 * total / elapsed_ms : 0.0;
            cell.p50_us = percentile(merged, 0.50);
            cell.p95_us = percentile(merged, 0.95);
            cell.p99_us = percentile(merged, 0.99);
            cell.hit_rate = stats.cache_hit_rate();
            if (conns == 8) best_at_8 = std::max(best_at_8, cell.req_per_sec);

            std::printf("%-6zu %-6zu %10.0f %9.1f %9.1f %9.1f %9.3f\n", conns,
                        batch, cell.req_per_sec, cell.p50_us, cell.p95_us,
                        cell.p99_us, cell.hit_rate);
            char obj[320];
            std::snprintf(
                obj, sizeof(obj),
                "{\"connections\": %zu, \"max_batch\": %zu, \"requests\": %zu, "
                "\"req_per_sec\": %.1f, \"p50_us\": %.1f, \"p95_us\": %.1f, "
                "\"p99_us\": %.1f, \"cache_hit_rate\": %.4f}",
                conns, batch, conns * per_conn, cell.req_per_sec, cell.p50_us,
                cell.p95_us, cell.p99_us, cell.hit_rate);
            artifact.add_object(obj);
        }
    }

    if (artifact.write(json_path))
        std::printf("\nwrote %s\n", json_path.c_str());
    else
        std::printf("\nFAILED to write %s\n", json_path.c_str());

    std::printf("cached-hit throughput at 8 connections: %.0f req/s  [%s] "
                "(target >= 5000)\n",
                best_at_8, best_at_8 >= 5000.0 ? "PASS" : "FAIL");
    return best_at_8 >= 5000.0 ? 0 : 1;
}
